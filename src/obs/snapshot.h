// snapshot.h — point-in-time capture of every obs sink, plus exporters.
//
// capture() merges the per-shard metric cells and copies the span/event
// rings under their locks; the result is a plain value safe to serialize or
// diff. Two export formats:
//
//   * to_prometheus_text() — the Prometheus text exposition format
//     (counters, gauges + _high_water, histograms as cumulative _bucket
//     series), ready for a scrape endpoint or a textfile collector.
//   * write_json()/to_json() — the JSON telemetry block carried by analysis
//     reports (core/report_io) and the BENCH_*.json files.
#pragma once

#include <string>

#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/prof/cost_ledger.h"
#include "obs/prof/export.h"
#include "obs/prof/profiler.h"
#include "obs/provenance/recorder.h"
#include "obs/span.h"
#include "util/json.h"

namespace liberate::obs {

struct Snapshot {
  MetricsSnapshot metrics;
  std::vector<SpanRecord> spans;
  std::uint64_t spans_dropped = 0;
  EventLogSnapshot events;
  prov::ProvSnapshot provenance;
  prof::ProfileSnapshot profile;
  CostLedgerSnapshot cost;
};

inline Snapshot capture() {
  Snapshot snap;
  snap.metrics = MetricsRegistry::instance().snapshot();
  snap.spans = SpanLog::instance().snapshot();
  snap.spans_dropped = SpanLog::instance().dropped();
  snap.events = EventLog::instance().snapshot();
  snap.provenance = prov::ProvenanceRecorder::instance().snapshot();
  snap.profile = prof::Profiler::instance().snapshot();
  snap.cost = CostLedger::instance().snapshot();
  return snap;
}

/// Zero every sink (tests and per-run isolation in long-lived processes).
inline void reset_all() {
  MetricsRegistry::instance().reset();
  SpanLog::instance().reset();
  EventLog::instance().reset();
  prov::ProvenanceRecorder::instance().reset();
  prof::Profiler::instance().reset();
  CostLedger::instance().reset();
}

/// Prometheus-style metric names: dots become underscores.
inline std::string prometheus_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

inline std::string to_prometheus_text(const MetricsSnapshot& m) {
  std::string out;
  char buf[64];
  for (const auto& [name, total] : m.counters) {
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " counter\n";
    out += p + " " + std::to_string(total) + "\n";
  }
  for (const auto& [name, g] : m.gauges) {
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " gauge\n";
    out += p + " " + std::to_string(g.value) + "\n";
    out += p + "_high_water " + std::to_string(g.high_water) + "\n";
  }
  for (const auto& [name, h] : m.histograms) {
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      cumulative += h.counts[b];
      if (b < h.bounds.size()) {
        std::snprintf(buf, sizeof(buf), "%g", h.bounds[b]);
        out += p + "_bucket{le=\"" + buf + "\"} " +
               std::to_string(cumulative) + "\n";
      } else {
        out += p + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + "\n";
      }
    }
    std::snprintf(buf, sizeof(buf), "%.6f", h.sum);
    out += p + "_sum " + std::string(buf) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
  }
  // HDR histograms export as Prometheus summaries: exact mergeable counts
  // collapse to the standard quantile series (values are the deterministic
  // bucket midpoints, so scrapes of identical runs are identical).
  for (const auto& [name, h] : m.hdr_histograms) {
    std::string p = prometheus_name(name);
    out += "# TYPE " + p + " summary\n";
    for (double q : {0.5, 0.9, 0.99, 0.999}) {
      std::snprintf(buf, sizeof(buf), "%g", q);
      out += p + "{quantile=\"" + buf + "\"} " +
             std::to_string(h.value_at_quantile(q)) + "\n";
    }
    out += p + "_sum " + std::to_string(h.sum) + "\n";
    out += p + "_count " + std::to_string(h.count) + "\n";
    out += p + "_max " + std::to_string(h.max) + "\n";
  }
  return out;
}

/// Writes the snapshot as one JSON object (caller brackets it with key()
/// or uses to_json() for a standalone document). `max_spans`/`max_events`
/// cap the ring dumps so report files stay small; totals are never capped.
inline void write_json(JsonWriter& w, const Snapshot& snap,
                       std::size_t max_spans = 256,
                       std::size_t max_events = 256) {
  w.begin_object();

  w.key("counters").begin_object();
  for (const auto& [name, total] : snap.metrics.counters) {
    w.key(name).value(total);
  }
  w.end_object();

  w.key("gauges").begin_object();
  for (const auto& [name, g] : snap.metrics.gauges) {
    w.key(name).begin_object();
    w.key("value").value(g.value);
    w.key("high_water").value(g.high_water);
    w.end_object();
  }
  w.end_object();

  w.key("histograms").begin_object();
  for (const auto& [name, h] : snap.metrics.histograms) {
    w.key(name).begin_object();
    w.key("bounds").begin_array();
    for (double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts").begin_array();
    for (std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.end_object();
  }
  w.end_object();

  // HDR histograms: quantile summary plus the sparse nonzero buckets
  // ([bucket index, count] pairs) — full fidelity for offline merging
  // without dumping ~1000 mostly-zero cells per metric.
  w.key("hdr_histograms").begin_object();
  for (const auto& [name, h] : snap.metrics.hdr_histograms) {
    w.key(name).begin_object();
    w.key("count").value(h.count);
    w.key("sum").value(h.sum);
    w.key("max").value(h.max);
    w.key("p50").value(h.value_at_quantile(0.5));
    w.key("p90").value(h.value_at_quantile(0.9));
    w.key("p99").value(h.value_at_quantile(0.99));
    w.key("p999").value(h.value_at_quantile(0.999));
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (h.counts[b] == 0) continue;
      w.begin_array();
      w.value(static_cast<std::uint64_t>(b));
      w.value(h.counts[b]);
      w.end_array();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();

  w.key("spans").begin_array();
  {
    std::size_t start =
        snap.spans.size() > max_spans ? snap.spans.size() - max_spans : 0;
    for (std::size_t i = start; i < snap.spans.size(); ++i) {
      const SpanRecord& s = snap.spans[i];
      w.begin_object();
      w.key("id").value(s.id);
      w.key("parent").value(s.parent_id);
      w.key("name").value(s.name);
      w.key("start_us").value(s.start_us);
      w.key("end_us").value(s.end_us);
      w.key("worker").value(s.worker);
      w.end_object();
    }
  }
  w.end_array();
  w.key("spans_dropped").value(snap.spans_dropped);

  w.key("events").begin_object();
  w.key("totals").begin_object();
  for (const auto& [kind, n] : snap.events.totals) w.key(kind).value(n);
  w.end_object();
  w.key("recent").begin_array();
  {
    std::size_t start = snap.events.recent.size() > max_events
                            ? snap.events.recent.size() - max_events
                            : 0;
    for (std::size_t i = start; i < snap.events.recent.size(); ++i) {
      const Event& e = snap.events.recent[i];
      w.begin_object();
      w.key("ts_us").value(e.ts_us);
      w.key("layer").value(e.layer);
      w.key("kind").value(e.kind);
      w.key("worker").value(e.worker);
      w.key("fields").begin_object();
      for (const EventField& f : e.fields) w.key(f.key).value(f.value);
      w.end_object();
      w.end_object();
    }
  }
  w.end_array();
  w.key("dropped").value(snap.events.dropped);
  w.end_object();

  // Provenance stays a summary here — the full graph is exported on demand
  // by explain_verdict / the Chrome trace / pcapng comments, not dumped
  // into every telemetry block.
  w.key("provenance").begin_object();
  w.key("nodes").value(static_cast<std::uint64_t>(snap.provenance.nodes.size()));
  w.key("edges").value(static_cast<std::uint64_t>(snap.provenance.edges.size()));
  w.key("flows").value(
      static_cast<std::uint64_t>(snap.provenance.ledgers.size()));
  w.key("records").value(snap.provenance.total_records);
  w.key("nodes_evicted").value(snap.provenance.nodes_evicted);
  w.key("ledgers_evicted").value(snap.provenance.ledgers_evicted);
  w.end_object();

  w.key("profile");
  prof::write_profile_json(w, snap.profile);

  w.key("cost_ledger");
  prof::write_cost_ledger_json(w, snap.cost);

  w.end_object();
}

inline std::string to_json(const Snapshot& snap, std::size_t max_spans = 256,
                           std::size_t max_events = 256) {
  JsonWriter w;
  write_json(w, snap, max_spans, max_events);
  return w.take();
}

}  // namespace liberate::obs
