// span.h — sim-clock span tracing.
//
// A ScopedSpan brackets a region of work with timestamps read from a
// caller-supplied clock — by convention the *simulation* clock of the world
// doing the work (netsim::EventLoop::now()), never the wall clock, so spans
// of a deterministic replay are themselves deterministic and replayable.
// Parent/child nesting is tracked per thread: a span opened while another
// span is open on the same thread becomes its child, which gives each
// analysis round a natural round -> replay -> ... tree on whichever worker
// ran it. Completed spans land in a bounded global ring (oldest dropped).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/thread_pool.h"

namespace liberate::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::uint64_t start_us = 0;  // sim-clock microseconds
  std::uint64_t end_us = 0;
  int worker = -1;  // pool worker index, -1 = off-pool thread
};

class SpanLog {
 public:
  static SpanLog& instance() {
    static SpanLog log;
    return log;
  }

  std::uint64_t next_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) return;
    if (ring_.size() >= capacity_) {
      ring_.pop_front();
      dropped_ += 1;
    }
    ring_.push_back(std::move(span));
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<SpanRecord>(ring_.begin(), ring_.end());
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }
  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    dropped_ = 0;
  }

 private:
  SpanLog() = default;

  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
  std::size_t capacity_ = 4096;
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> id_counter_{0};
};

using SimClockFn = std::function<std::uint64_t()>;

class ScopedSpan {
 public:
  ScopedSpan(std::string name, SimClockFn clock)
      : clock_(std::move(clock)), parent_(current()) {
    record_.id = SpanLog::instance().next_id();
    record_.parent_id = parent_ != nullptr ? parent_->record_.id : 0;
    record_.name = std::move(name);
    record_.start_us = clock_ ? clock_() : 0;
    record_.worker = ThreadPool::current_worker_index();
    current() = this;
  }

  ~ScopedSpan() {
    record_.end_us = clock_ ? clock_() : record_.start_us;
    current() = parent_;
    SpanLog::instance().record(std::move(record_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return record_.id; }

 private:
  // The innermost open span on this thread (parent for new spans).
  static ScopedSpan*& current() {
    thread_local ScopedSpan* t_current = nullptr;
    return t_current;
  }

  SimClockFn clock_;
  ScopedSpan* parent_;
  SpanRecord record_;
};

}  // namespace liberate::obs
