// span.h — sim-clock span tracing.
//
// A ScopedSpan brackets a region of work with timestamps read from a
// caller-supplied clock — by convention the *simulation* clock of the world
// doing the work (netsim::EventLoop::now()), never the wall clock, so spans
// of a deterministic replay are themselves deterministic and replayable.
// Parent/child nesting follows the *ambient span id* (obs/prof/context.h):
// a span opened while another span is open on the same thread becomes its
// child, and pool submissions wrapped in LIBERATE_OBS_PROPAGATE carry the
// submitting thread's ambient span across to the worker — so a wave chunk
// executed by a stealing worker nests under the phase that submitted it,
// never under an unrelated span that happens to be open on that worker.
// Completed spans land in a bounded global ring (oldest dropped), and every
// enter/exit additionally feeds the hierarchical profiler
// (obs/prof/profiler.h) with the span's sim-clock and wall-clock deltas.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/prof/context.h"
#include "obs/prof/profiler.h"
#include "util/thread_pool.h"

namespace liberate::obs {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;  // 0 = root
  std::string name;
  std::uint64_t start_us = 0;  // sim-clock microseconds
  std::uint64_t end_us = 0;
  int worker = -1;  // pool worker index, -1 = off-pool thread
};

class SpanLog {
 public:
  static SpanLog& instance() {
    static SpanLog log;
    return log;
  }

  std::uint64_t next_id() {
    return id_counter_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  void record(SpanRecord span) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (capacity_ == 0) return;
    if (ring_.size() >= capacity_) {
      ring_.pop_front();
      dropped_ += 1;
    }
    ring_.push_back(std::move(span));
  }

  std::vector<SpanRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::vector<SpanRecord>(ring_.begin(), ring_.end());
  }
  std::uint64_t dropped() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return dropped_;
  }
  void set_capacity(std::size_t capacity) {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity;
    while (ring_.size() > capacity_) ring_.pop_front();
  }
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_.clear();
    dropped_ = 0;
  }

 private:
  SpanLog() = default;

  mutable std::mutex mutex_;
  std::deque<SpanRecord> ring_;
  std::size_t capacity_ = 4096;
  std::uint64_t dropped_ = 0;
  std::atomic<std::uint64_t> id_counter_{0};
};

using SimClockFn = std::function<std::uint64_t()>;

class ScopedSpan {
 public:
  ScopedSpan(std::string name, SimClockFn clock)
      : clock_(std::move(clock)), saved_span_id_(current_span_id()) {
    record_.id = SpanLog::instance().next_id();
    record_.parent_id = saved_span_id_;
    record_.name = std::move(name);
    record_.start_us = clock_ ? clock_() : 0;
    record_.worker = ThreadPool::current_worker_index();
    wall_start_ = std::chrono::steady_clock::now();
    prof_ = prof::Profiler::instance().enter(record_.name);
    current_span_id() = record_.id;
  }

  ~ScopedSpan() {
    record_.end_us = clock_ ? clock_() : record_.start_us;
    const std::uint64_t sim_us = record_.end_us > record_.start_us
                                     ? record_.end_us - record_.start_us
                                     : 0;
    const auto wall = std::chrono::steady_clock::now() - wall_start_;
    prof::Profiler::instance().exit(
        prof_, sim_us,
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(wall)
                .count()));
    current_span_id() = saved_span_id_;
    SpanLog::instance().record(std::move(record_));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  std::uint64_t id() const { return record_.id; }

 private:
  SimClockFn clock_;
  std::uint64_t saved_span_id_;
  std::chrono::steady_clock::time_point wall_start_;
  prof::Profiler::Token prof_;
  SpanRecord record_;
};

}  // namespace liberate::obs
