#include "obs/timeseries.h"

#include <cmath>

#include "obs/metrics.h"
#include "util/json.h"

namespace liberate::obs {

double series_ewma(const std::vector<SeriesPoint>& points, double alpha) {
  if (points.empty()) return 0;
  double ewma = points.front().value;
  for (std::size_t i = 1; i < points.size(); ++i) {
    ewma = alpha * points[i].value + (1.0 - alpha) * ewma;
  }
  return ewma;
}

std::vector<SeriesPoint> series_rate(const std::vector<SeriesPoint>& points) {
  std::vector<SeriesPoint> out;
  if (points.size() < 2) return out;
  out.reserve(points.size() - 1);
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double dt_s =
        points[i].t_us > points[i - 1].t_us
            ? static_cast<double>(points[i].t_us - points[i - 1].t_us) / 1e6
            : 0;
    const double dv = points[i].value - points[i - 1].value;
    out.push_back({points[i].t_us, dt_s > 0 ? dv / dt_s : 0});
  }
  return out;
}

TimeSeriesStore& TimeSeriesStore::instance() {
  static TimeSeriesStore store;
  return store;
}

void TimeSeriesStore::push_locked(const SeriesKey& key, std::uint64_t t_us,
                                  double value) {
  Series& s = series_[key];
  s.total += 1;
  if (s.ring.size() < capacity_) {
    s.ring.push_back({t_us, value});
    return;
  }
  if (capacity_ == 0) {
    s.dropped += 1;
    return;
  }
  // Ring is full: overwrite the oldest slot.
  s.ring[s.head] = {t_us, value};
  s.head = (s.head + 1) % s.ring.size();
  s.wrapped = true;
  s.dropped += 1;
}

void TimeSeriesStore::sample(std::string_view name, int shard,
                             std::uint64_t t_us, double value) {
  SeriesKey key{std::string(name), shard};
  std::lock_guard<std::mutex> lock(mutex_);
  push_locked(key, t_us, value);
}

void TimeSeriesStore::tick(std::uint64_t t_us,
                           const std::vector<std::string>& prefixes) {
  MetricsSnapshot metrics = MetricsRegistry::instance().snapshot();
  auto matches = [&prefixes](const std::string& name) {
    for (const std::string& p : prefixes) {
      if (name.compare(0, p.size(), p) == 0) return true;
    }
    return false;
  };
  std::lock_guard<std::mutex> lock(mutex_);
  const bool first = !ticked_;
  ticked_ = true;
  for (const auto& [name, total] : metrics.counters) {
    if (!matches(name)) continue;
    auto [it, inserted] = tick_base_.try_emplace(name, total);
    if (inserted && first) continue;  // cold start: establish the base only
    const std::uint64_t base = inserted ? 0 : it->second;
    it->second = total;
    // Counters are monotonic per metric; a reset between ticks would show
    // as total < base — clamp to 0 rather than emit a negative burst.
    const double delta =
        total >= base ? static_cast<double>(total - base) : 0.0;
    push_locked(SeriesKey{name + ".delta", -1}, t_us, delta);
  }
  for (const auto& [name, g] : metrics.gauges) {
    if (!matches(name)) continue;
    push_locked(SeriesKey{name, -1}, t_us, static_cast<double>(g.value));
  }
}

TimeSeriesSnapshot TimeSeriesStore::snapshot(std::string_view prefix) const {
  TimeSeriesSnapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, s] : series_) {
    if (!prefix.empty() &&
        key.name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    SeriesSnapshot out;
    out.key = key;
    out.dropped = s.dropped;
    out.total = s.total;
    out.points.reserve(s.ring.size());
    if (s.wrapped) {
      // head is the oldest live point once the ring has wrapped.
      for (std::size_t i = 0; i < s.ring.size(); ++i) {
        out.points.push_back(s.ring[(s.head + i) % s.ring.size()]);
      }
    } else {
      out.points = s.ring;
    }
    snap.series.push_back(std::move(out));
  }
  return snap;
}

void TimeSeriesStore::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mutex_);
  capacity_ = capacity;
  for (auto& [key, s] : series_) {
    // Linearize to chronological order (push_locked relies on un-wrapped
    // rings being appendable), then drop the oldest overflow if shrinking.
    std::vector<SeriesPoint> ordered;
    ordered.reserve(s.ring.size());
    if (s.wrapped) {
      for (std::size_t i = 0; i < s.ring.size(); ++i) {
        ordered.push_back(s.ring[(s.head + i) % s.ring.size()]);
      }
    } else {
      ordered = std::move(s.ring);
    }
    if (ordered.size() > capacity) {
      const std::size_t drop = ordered.size() - capacity;
      s.dropped += drop;
      ordered.erase(ordered.begin(),
                    ordered.begin() + static_cast<std::ptrdiff_t>(drop));
    }
    s.ring = std::move(ordered);
    s.head = 0;
    s.wrapped = false;
  }
}

void TimeSeriesStore::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  series_.clear();
  tick_base_.clear();
  ticked_ = false;
}

std::string timeseries_to_json(const TimeSeriesSnapshot& snap,
                               double ewma_alpha) {
  // Degenerate producers (zero-flow shards, empty waves) must surface as 0,
  // not NaN/null: consumers difference and plot these series blindly.
  auto finite = [](double v) { return std::isfinite(v) ? v : 0.0; };
  JsonWriter w;
  w.begin_object();
  w.key("series").begin_array();
  for (const SeriesSnapshot& s : snap.series) {
    w.begin_object();
    w.key("name").value(s.key.name);
    w.key("shard").value(s.key.shard);
    w.key("points").begin_array();
    for (const SeriesPoint& p : s.points) {
      w.begin_array();
      w.value(p.t_us);
      w.value(finite(p.value));
      w.end_array();
    }
    w.end_array();
    w.key("dropped").value(s.dropped);
    w.key("total").value(s.total);
    w.key("ewma").value(finite(series_ewma(s.points, ewma_alpha)));
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.take();
}

}  // namespace liberate::obs
