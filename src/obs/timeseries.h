// timeseries.h — the telemetry hub's bounded time-series store.
//
// Point-in-time snapshots (snapshot.h) answer "what are the totals now";
// they cannot answer "when did treatment start degrading and on which
// shard". The TimeSeriesStore keeps a bounded ring of (sim-clock time,
// value) points per series, keyed by metric name × shard (shard -1 =
// fleet/process-wide), fed two ways:
//
//  * sample(name, shard, t, v) — an explicit observation pushed by the
//    control plane at a wave boundary (per-shard latency, verdict mix,
//    fault/eviction deltas);
//  * tick(t, prefixes) — a registry sweep that turns counter totals into
//    per-tick *delta* series ("<counter>.delta") and gauges into value
//    series, for every metric matching one of the name prefixes.
//
// Rings are fixed-capacity per series (oldest point dropped, drops counted
// exactly), so a million-wave soak holds memory flat. All timestamps are
// sim-clock microseconds — never the wall clock — so the stored series of
// a deterministic run is itself deterministic: snapshots iterate a sorted
// map and reproduce byte-identically across worker counts and match
// backends. Level gating lives in the obs.h macros (LIBERATE_TS_*); the
// classes here are level-independent, like MetricsRegistry.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace liberate::obs {

struct SeriesPoint {
  std::uint64_t t_us = 0;  // sim-clock microseconds
  double value = 0;
};

/// Identity of one series: metric name plus the shard that produced it
/// (-1 = fleet/process-wide). Ordered so snapshots are deterministic.
struct SeriesKey {
  std::string name;
  int shard = -1;

  bool operator<(const SeriesKey& o) const {
    if (name != o.name) return name < o.name;
    return shard < o.shard;
  }
};

struct SeriesSnapshot {
  SeriesKey key;
  std::vector<SeriesPoint> points;  // oldest -> newest
  std::uint64_t dropped = 0;        // points evicted from the ring
  std::uint64_t total = 0;          // points ever pushed
};

/// Exponentially-weighted moving average over the points (oldest first);
/// alpha is the weight of the newest observation. Empty series -> 0.
double series_ewma(const std::vector<SeriesPoint>& points, double alpha);

/// Per-interval rate series: value delta / time delta (in seconds) between
/// consecutive points. One point shorter than the input; empty/singleton
/// input -> empty. Zero or backwards time deltas yield a 0-rate point.
std::vector<SeriesPoint> series_rate(const std::vector<SeriesPoint>& points);

struct TimeSeriesSnapshot {
  std::vector<SeriesSnapshot> series;  // sorted by key
};

class TimeSeriesStore {
 public:
  static constexpr std::size_t kDefaultCapacity = 512;

  static TimeSeriesStore& instance();

  /// Append one point to (name, shard). Creates the series on first use;
  /// rings hold the store's current per-series capacity.
  void sample(std::string_view name, int shard, std::uint64_t t_us,
              double value);

  /// Registry sweep: for every counter whose name starts with one of
  /// `prefixes`, push the delta since the previous tick as
  /// "<name>.delta" (shard -1); for every matching gauge, push its value.
  /// The first tick establishes the delta base without emitting points for
  /// counters (a cold start is not a burst).
  void tick(std::uint64_t t_us, const std::vector<std::string>& prefixes);

  /// Sorted copy of every series whose name starts with `prefix` ("" =
  /// everything).
  TimeSeriesSnapshot snapshot(std::string_view prefix = {}) const;

  /// Per-series ring capacity for series created after the call; existing
  /// rings are trimmed (oldest dropped) if now over.
  void set_capacity(std::size_t capacity);

  void reset();

 private:
  TimeSeriesStore() = default;

  struct Series {
    std::vector<SeriesPoint> ring;  // circular once full
    std::size_t head = 0;           // next write slot once wrapped
    bool wrapped = false;
    std::uint64_t dropped = 0;
    std::uint64_t total = 0;
  };

  void push_locked(const SeriesKey& key, std::uint64_t t_us, double value);

  mutable std::mutex mutex_;
  std::size_t capacity_ = kDefaultCapacity;
  std::map<SeriesKey, Series> series_;
  std::map<std::string, std::uint64_t> tick_base_;  // counter totals at last tick
  bool ticked_ = false;
};

/// JSON rendering of a snapshot: {"series":[{"name","shard","points":
/// [[t_us, value],...],"dropped","total","ewma"},...]} — deterministic for
/// deterministic input (sorted keys, fixed float formatting).
std::string timeseries_to_json(const TimeSeriesSnapshot& snap,
                               double ewma_alpha = 0.3);

}  // namespace liberate::obs
