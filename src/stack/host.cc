#include "stack/host.h"

namespace liberate::stack {

using netsim::Anomaly;
using netsim::anomaly_bit;
using netsim::AnomalySet;
using netsim::FiveTuple;
using netsim::PacketView;
using netsim::TcpFlags;

Host::Host(netsim::NetworkPort& port, std::uint32_t address, OsProfile os)
    : port_(port), address_(address), os_(std::move(os)) {}

TcpConnection& Host::tcp_connect(std::uint32_t dst_ip, std::uint16_t dst_port,
                                 std::uint16_t src_port) {
  if (src_port == 0) src_port = next_ephemeral_port_++;
  FiveTuple tuple;
  tuple.src_ip = address_;
  tuple.dst_ip = dst_ip;
  tuple.src_port = src_port;
  tuple.dst_port = dst_port;
  tuple.protocol = static_cast<std::uint8_t>(netsim::IpProto::kTcp);
  auto conn = std::make_unique<TcpConnection>(*this, tuple, next_iss_,
                                              /*passive=*/false);
  next_iss_ += 64000;
  TcpConnection& ref = *conn;
  connections_[tuple] = std::move(conn);
  ref.start_connect();
  return ref;
}

void Host::tcp_listen(std::uint16_t port, AcceptCallback cb) {
  listeners_[port] = std::move(cb);
}

void Host::tcp_unlisten(std::uint16_t port) { listeners_.erase(port); }

UdpSocket& Host::udp_bind(std::uint16_t port) {
  auto& slot = udp_sockets_[port];
  if (!slot) slot = std::make_unique<UdpSocket>(*this, port);
  return *slot;
}

TcpConnection* Host::find_connection(const FiveTuple& local_to_remote) {
  auto it = connections_.find(local_to_remote);
  return it == connections_.end() ? nullptr : it->second.get();
}

void Host::receive(Bytes datagram) {
  // Raw tap before anything else: "reached the server" means reached the
  // wire at the server's NIC, regardless of kernel validation.
  raw_received_.push_back(raw_arena_.copy(BytesView(datagram)));

  auto parsed = netsim::parse_packet(datagram);
  if (!parsed.ok()) {
    ++dropped_by_os_;
    return;
  }

  // Fragment? Reassemble first; validation applies to the whole datagram.
  if (parsed.value().ip.is_fragment()) {
    auto whole = reassembler_.push(datagram, loop().now());
    reassembler_.expire(loop().now());
    if (!whole) return;
    auto reparsed = netsim::parse_packet(*whole);
    if (!reparsed.ok()) {
      ++dropped_by_os_;
      return;
    }
    handle_validated(reparsed.value(), *whole);
    return;
  }

  handle_validated(parsed.value(), datagram);
}

void Host::handle_validated(const PacketView& pkt, BytesView datagram) {
  (void)datagram;
  AnomalySet anomalies = netsim::anomalies_of(pkt);
  OsAction action = os_.decide(anomalies);
  switch (action) {
    case OsAction::kDrop:
      ++dropped_by_os_;
      return;
    case OsAction::kRespondRst:
      ++dropped_by_os_;
      respond_rst(pkt);
      return;
    case OsAction::kDeliverTruncated:
      handle_udp(pkt, /*truncated=*/true);
      return;
    case OsAction::kDeliver:
      break;
  }

  if (pkt.is_tcp()) {
    handle_tcp(pkt);
  } else if (pkt.is_udp()) {
    handle_udp(pkt, /*truncated=*/false);
  } else if (pkt.icmp) {
    if (on_icmp_) on_icmp_(pkt, *pkt.icmp);
  }
}

void Host::handle_tcp(const PacketView& pkt) {
  // Demux key: our (local, remote) view is the reverse of the packet's
  // (src, dst).
  FiveTuple key = pkt.five_tuple().reversed();
  auto it = connections_.find(key);
  if (it != connections_.end()) {
    it->second->handle_segment(pkt);
    return;
  }

  // New connection? Only a SYN (without ACK) to a listening port.
  const netsim::TcpView& seg = *pkt.tcp;
  if (seg.syn() && !seg.ack_flag()) {
    auto lit = listeners_.find(seg.dst_port);
    if (lit != listeners_.end()) {
      auto conn = std::make_unique<TcpConnection>(*this, key, next_iss_,
                                                  /*passive=*/true);
      next_iss_ += 64000;
      TcpConnection& ref = *conn;
      connections_[key] = std::move(conn);
      // Let the application attach callbacks before any data arrives.
      lit->second(ref);
      ref.handle_segment(pkt);
      return;
    }
  }

  // No socket: answer RST (unless the incoming segment was itself a RST).
  if (!seg.rst()) respond_rst(pkt);
}

void Host::handle_udp(const PacketView& pkt, bool truncated) {
  if (!pkt.udp) return;
  auto it = udp_sockets_.find(pkt.udp->dst_port);
  if (it == udp_sockets_.end()) return;  // silently ignore (no ICMP needed)
  it->second->deliver(pkt, truncated);
}

void Host::respond_rst(const PacketView& pkt) {
  if (!pkt.tcp) return;
  if (pkt.tcp->rst()) return;
  ++rsts_sent_;
  netsim::TcpHeader h;
  h.src_port = pkt.tcp->dst_port;
  h.dst_port = pkt.tcp->src_port;
  h.flags = TcpFlags::kRst | TcpFlags::kAck;
  h.seq = pkt.tcp->ack_flag() ? pkt.tcp->ack : 0;
  h.ack = pkt.tcp->seq + static_cast<std::uint32_t>(pkt.tcp->payload.size()) +
          (pkt.tcp->syn() ? 1 : 0);
  netsim::Ipv4Header ip;
  ip.src = address_;
  ip.dst = pkt.ip.src;
  transmit(make_tcp_datagram(ip, h, {}));
}

}  // namespace liberate::stack
