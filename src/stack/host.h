// host.h — an endpoint: network stack + OS validation profile + sockets.
//
// A Host receives raw datagrams from the Network, applies its OS profile
// (Table 3 server-response behaviour), reassembles IP fragments, and
// demultiplexes to TCP connections / listeners and UDP sockets. It also
// records a raw packet tap *before* OS validation — the replay server uses
// this to answer Table 3's "did the packet Reach the Server?" (RS?) question,
// which is about the wire, not about what the kernel accepts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "netsim/network.h"
#include "stack/ip_reassembly.h"
#include "util/arena.h"
#include "stack/os_profile.h"
#include "stack/tcp_endpoint.h"
#include "stack/udp_endpoint.h"

namespace liberate::stack {

class Host : public netsim::HostIface {
 public:
  Host(netsim::NetworkPort& port, std::uint32_t address, OsProfile os);

  std::uint32_t address() const { return address_; }
  const OsProfile& os() const { return os_; }
  void set_os(OsProfile os) { os_ = std::move(os); }
  netsim::EventLoop& loop() { return port_.loop(); }

  /// --- TCP ---------------------------------------------------------------
  using AcceptCallback = std::function<void(TcpConnection&)>;
  /// Active open. The returned connection is owned by the Host.
  TcpConnection& tcp_connect(std::uint32_t dst_ip, std::uint16_t dst_port,
                             std::uint16_t src_port = 0);
  /// Passive open: invoke `cb` for each accepted connection on `port`.
  void tcp_listen(std::uint16_t port, AcceptCallback cb);
  void tcp_unlisten(std::uint16_t port);

  /// --- UDP ---------------------------------------------------------------
  UdpSocket& udp_bind(std::uint16_t port);

  /// --- Raw access (lib·erate's crafted packets) --------------------------
  void send_raw(Bytes datagram) { port_.send(std::move(datagram)); }
  using IcmpCallback =
      std::function<void(const netsim::PacketView&, const netsim::IcmpMessage&)>;
  void on_icmp(IcmpCallback cb) { on_icmp_ = std::move(cb); }

  /// Every datagram as seen on the wire, pre-validation (the RS? tap).
  /// Arena-backed views: one bump allocation per packet instead of a heap
  /// vector copy. Views stay valid until clear_raw_received().
  const std::vector<BytesView>& raw_received() const { return raw_received_; }
  void clear_raw_received() {
    raw_received_.clear();
    raw_arena_.reset();
  }
  std::uint64_t dropped_by_os() const { return dropped_by_os_; }
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  /// netsim::HostIface
  void receive(Bytes datagram) override;

  /// Stack-internal: segment/datagram transmission for endpoints.
  void transmit(Bytes datagram) { port_.send(std::move(datagram)); }
  /// Remove a fully closed connection lazily (kept simple: connections stay
  /// until replaced or host destroyed; tests rely on inspecting them).
  TcpConnection* find_connection(const netsim::FiveTuple& local_to_remote);

 private:
  void handle_validated(const netsim::PacketView& pkt, BytesView datagram);
  void handle_tcp(const netsim::PacketView& pkt);
  void handle_udp(const netsim::PacketView& pkt, bool truncated);
  void respond_rst(const netsim::PacketView& pkt);

  netsim::NetworkPort& port_;
  std::uint32_t address_;
  OsProfile os_;
  IpReassembler reassembler_;

  std::map<netsim::FiveTuple, std::unique_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, AcceptCallback> listeners_;
  std::map<std::uint16_t, std::unique_ptr<UdpSocket>> udp_sockets_;

  std::vector<BytesView> raw_received_;
  Arena raw_arena_;
  std::uint64_t dropped_by_os_ = 0;
  std::uint64_t rsts_sent_ = 0;
  std::uint16_t next_ephemeral_port_ = 40000;
  std::uint32_t next_iss_ = 100000;
  IcmpCallback on_icmp_;
};

}  // namespace liberate::stack
