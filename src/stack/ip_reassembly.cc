#include "stack/ip_reassembly.h"

#include <algorithm>

#include "obs/obs.h"

namespace liberate::stack {

using netsim::Ipv4Header;
using netsim::Ipv4View;

std::optional<Bytes> IpReassembler::push(BytesView datagram,
                                         netsim::TimePoint now) {
  auto parsed = netsim::parse_ipv4(datagram);
  if (!parsed.ok()) return std::nullopt;
  const Ipv4View& v = parsed.value();

  if (!v.is_fragment()) {
    return Bytes(datagram.begin(), datagram.end());
  }

  LIBERATE_COUNTER_ADD("stack.fragments_received", 1);
  Key key{v.src, v.dst, v.protocol, v.identification};
  Buffer& buf = buffers_[key];
  if (buf.pieces.empty()) buf.first_seen = now;

  std::size_t offset = v.fragment_offset_bytes();
  buf.pieces.push_back(
      Piece{offset, Bytes(v.payload.begin(), v.payload.end())});
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  buf.piece_ids.push_back(
      obs::prov::ProvenanceRecorder::instance().packet(datagram, "wire"));
#endif
  if (!v.flag_more_fragments) {
    buf.total_size = offset + v.payload.size();
  }
  if (offset == 0) {
    Ipv4Header h;
    h.version = 4;
    h.dscp_ecn = v.dscp_ecn;
    h.identification = v.identification;
    h.ttl = v.ttl;
    h.protocol = v.protocol;
    h.src = v.src;
    h.dst = v.dst;
    h.options = v.options;
    buf.header = h;
  }

  // Completion check: we need the last piece, the first piece, and full
  // coverage of [0, total_size).
  if (!buf.total_size || !buf.header) return std::nullopt;
  std::vector<Piece> sorted = buf.pieces;
  std::sort(sorted.begin(), sorted.end(),
            [](const Piece& a, const Piece& b) { return a.offset < b.offset; });
  std::size_t covered = 0;
  for (const Piece& p : sorted) {
    if (p.offset > covered) return std::nullopt;  // gap
    covered = std::max(covered, p.offset + p.data.size());
  }
  if (covered < *buf.total_size) return std::nullopt;

  // Reassemble; later bytes win on overlap (first-writer order preserved by
  // writing in sorted order, which matches "last fragment wins" semantics of
  // common stacks closely enough for our experiments).
  Bytes payload(*buf.total_size, 0);
  for (const Piece& p : sorted) {
    std::size_t n = std::min(p.data.size(), payload.size() - p.offset);
    std::copy_n(p.data.begin(), n,
                payload.begin() + static_cast<std::ptrdiff_t>(p.offset));
  }
  Bytes whole = serialize_ipv4(*buf.header, payload);
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  {
    auto& rec = obs::prov::ProvenanceRecorder::instance();
    std::uint64_t whole_id = rec.packet(whole, "wire");
    for (std::uint64_t piece : buf.piece_ids) {
      rec.edge_ids(now, piece, 0, whole_id,
                   static_cast<std::uint32_t>(whole.size()), "reassembly",
                   "ip-reassembler");
    }
  }
#endif
  buffers_.erase(key);
  LIBERATE_COUNTER_ADD("stack.datagrams_reassembled", 1);
  return whole;
}

void IpReassembler::expire(netsim::TimePoint now) {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (now - it->second.first_seen > timeout_) {
      LIBERATE_COUNTER_ADD("stack.reassembly_expired", 1);
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace liberate::stack
