#include "stack/ip_reassembly.h"

#include <algorithm>

#include "obs/obs.h"

namespace liberate::stack {

using netsim::Ipv4Header;
using netsim::Ipv4View;

const char* reassembly_policy_name(ReassemblyPolicy policy) {
  switch (policy) {
    case ReassemblyPolicy::kLastWins:
      return "last-wins";
    case ReassemblyPolicy::kFirstWins:
      return "first-wins";
    case ReassemblyPolicy::kBsdLeft:
      return "bsd-left";
    case ReassemblyPolicy::kLinux:
      return "linux";
  }
  return "unknown";
}

void IpReassembler::evict_oldest() {
  auto oldest = buffers_.begin();
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->second.first_seen < oldest->second.first_seen) oldest = it;
  }
  buffers_.erase(oldest);
  LIBERATE_COUNTER_ADD("stack.reassembly_buffer_evicted", 1);
}

std::optional<Bytes> IpReassembler::push(BytesView datagram,
                                         netsim::TimePoint now) {
  auto parsed = netsim::parse_ipv4(datagram);
  if (!parsed.ok()) return std::nullopt;
  const Ipv4View& v = parsed.value();

  if (!v.is_fragment()) {
    return Bytes(datagram.begin(), datagram.end());
  }

  LIBERATE_COUNTER_ADD("stack.fragments_received", 1);
  std::size_t offset = v.fragment_offset_bytes();
  if (offset >= limits_.max_datagram_bytes) {
    LIBERATE_COUNTER_ADD("stack.reassembly_oversize_fragment", 1);
    return std::nullopt;
  }

  Key key{v.src, v.dst, v.protocol, v.identification};
  auto found = buffers_.find(key);
  if (found == buffers_.end() && buffers_.size() >= limits_.max_buffers) {
    evict_oldest();
  }
  Buffer& buf = buffers_[key];
  if (buf.pieces.empty()) buf.first_seen = now;

  if (buf.pieces.size() >= limits_.max_pieces_per_buffer) {
    LIBERATE_COUNTER_ADD("stack.reassembly_piece_overflow", 1);
    return std::nullopt;
  }
  // Clamp piece data so no buffer can grow past the IPv4 maximum even when
  // fed fragments whose actual payload exceeds their declared length.
  BytesView payload = v.payload;
  if (offset + payload.size() > limits_.max_datagram_bytes) {
    payload = payload.subspan(0, limits_.max_datagram_bytes - offset);
    LIBERATE_COUNTER_ADD("stack.reassembly_oversize_fragment", 1);
  }
  buf.pieces.push_back(
      Piece{offset, Bytes(payload.begin(), payload.end()), buf.pieces.size()});
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  buf.piece_ids.push_back(
      obs::prov::ProvenanceRecorder::instance().packet(datagram, "wire"));
#endif
  if (!v.flag_more_fragments) {
    std::size_t claimed = offset + payload.size();
    if (buf.total_size && *buf.total_size != claimed) {
      // A second, disagreeing last fragment must not silently shrink or grow
      // the datagram; the first claim stands.
      LIBERATE_COUNTER_ADD("stack.reassembly_conflicting_last_fragment", 1);
    } else {
      buf.total_size = claimed;
    }
  }
  if (offset == 0) {
    Ipv4Header h;
    h.version = 4;
    h.dscp_ecn = v.dscp_ecn;
    h.identification = v.identification;
    h.ttl = v.ttl;
    h.protocol = v.protocol;
    h.src = v.src;
    h.dst = v.dst;
    h.options = v.options;
    buf.header = h;
  }

  // Completion check: we need the last piece, the first piece, and full
  // coverage of [0, total_size). Pieces lying (partly) outside that window —
  // stray offsets past the last fragment — contribute nothing and must not
  // be written into the reassembled buffer below.
  if (!buf.total_size || !buf.header) return std::nullopt;
  const std::size_t total = *buf.total_size;
  std::vector<Piece> sorted = buf.pieces;
  // stable_sort: equal-offset fragments keep arrival order, so "last
  // arrival wins" below is deterministic across STL implementations.
  std::stable_sort(
      sorted.begin(), sorted.end(),
      [](const Piece& a, const Piece& b) { return a.offset < b.offset; });
  std::size_t covered = 0;
  for (const Piece& p : sorted) {
    if (p.offset >= total) break;  // sorted: everything after is stray too
    if (p.offset > covered) return std::nullopt;  // gap
    covered = std::max(covered, p.offset + p.data.size());
  }
  if (covered < total) return std::nullopt;

  // Reassemble. Conflicting overlap bytes resolve purely by write order —
  // whichever piece is written last owns the byte — so every policy is the
  // same clamped copy loop over a differently ordered piece list.
  std::vector<Piece> write_order;
  switch (policy_) {
    case ReassemblyPolicy::kLastWins:
      // Historical behaviour: ascending offset, equal offsets in arrival
      // order (the stable sort above), so later offsets then later arrivals
      // win — close enough to "last fragment wins" for our experiments.
      write_order = sorted;
      break;
    case ReassemblyPolicy::kFirstWins:
      // Earliest arrival written last: the first copy of every byte stands.
      write_order.assign(buf.pieces.rbegin(), buf.pieces.rend());
      break;
    case ReassemblyPolicy::kBsdLeft:
      // Lower offset wins the overlap, equal offsets favouring the earlier
      // arrival — write descending offset, ties descending arrival.
      write_order = buf.pieces;
      std::sort(write_order.begin(), write_order.end(),
                [](const Piece& a, const Piece& b) {
                  if (a.offset != b.offset) return a.offset > b.offset;
                  return a.arrival > b.arrival;
                });
      break;
    case ReassemblyPolicy::kLinux:
      // Lower offset wins, but equal-offset conflicts favour the later
      // arrival — write descending offset, ties ascending arrival.
      write_order = buf.pieces;
      std::sort(write_order.begin(), write_order.end(),
                [](const Piece& a, const Piece& b) {
                  if (a.offset != b.offset) return a.offset > b.offset;
                  return a.arrival < b.arrival;
                });
      break;
  }
  Bytes payload_out(total, 0);
  for (const Piece& p : write_order) {
    if (p.offset >= total) {
      LIBERATE_COUNTER_ADD("stack.reassembly_stray_piece", 1);
      continue;
    }
    std::size_t n = std::min(p.data.size(), total - p.offset);
    std::copy_n(p.data.begin(), n,
                payload_out.begin() + static_cast<std::ptrdiff_t>(p.offset));
  }
  Bytes whole = serialize_ipv4(*buf.header, payload_out);
#if LIBERATE_OBS_LEVEL >= LIBERATE_OBS_LEVEL_FULL
  {
    auto& rec = obs::prov::ProvenanceRecorder::instance();
    std::uint64_t whole_id = rec.packet(whole, "wire");
    for (std::uint64_t piece : buf.piece_ids) {
      rec.edge_ids(now, piece, 0, whole_id,
                   static_cast<std::uint32_t>(whole.size()), "reassembly",
                   "ip-reassembler");
    }
  }
#endif
  buffers_.erase(key);
  LIBERATE_COUNTER_ADD("stack.datagrams_reassembled", 1);
  return whole;
}

void IpReassembler::expire(netsim::TimePoint now) {
  for (auto it = buffers_.begin(); it != buffers_.end();) {
    if (now - it->second.first_seen > timeout_) {
      LIBERATE_COUNTER_ADD("stack.reassembly_expired", 1);
      it = buffers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace liberate::stack
