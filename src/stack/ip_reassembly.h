// ip_reassembly.h — IPv4 fragment reassembly (endpoint and middlebox side).
//
// Keyed by (src, dst, protocol, identification) per RFC 791. Holds fragments
// until the full datagram can be reconstructed or a timeout expires. Both
// endpoint stacks and (some) classifiers reassemble — whether a middlebox does
// is one of the implementation quirks Table 3 probes (the testbed classifies
// reassembled fragments; TMUS/GFC pass them; Iran's path drops them).
//
// Fragments are adversarial input here (the evasion shim *crafts* overlapping
// and stray fragments), so every resource is bounded: tracked buffers, pieces
// per buffer, and the reassembled datagram size. Pieces lying outside the
// final [0, total_size) window are ignored rather than written (they used to
// be an out-of-bounds write), and duplicate-offset overlaps resolve
// deterministically (last arrival wins). See docs/robustness.md.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netsim/packet.h"
#include "netsim/simclock.h"
#include "util/bytes.h"

namespace liberate::stack {

/// How conflicting data in overlapping fragments is resolved — the
/// target-based reassembly policies of Shankar & Paxson / Novak that real
/// stacks and IDSes disagree on, and exactly the discrepancy the ambiguity
/// probe engine (src/fingerprint) fingerprints:
///
///   * kLastWins  — subsequent fragments overwrite earlier data (the
///     overwrite policy; this library's historical behaviour, kept as the
///     default so existing digests and tests are unchanged);
///   * kFirstWins — the first-arriving copy of every byte stands;
///   * kBsdLeft   — the fragment with the lower offset wins the overlap,
///     ties favouring the earlier arrival (classic 4.4BSD left-trim);
///   * kLinux     — the fragment with the strictly lower offset wins,
///     equal-offset ties favouring the later arrival.
enum class ReassemblyPolicy { kLastWins, kFirstWins, kBsdLeft, kLinux };

const char* reassembly_policy_name(ReassemblyPolicy policy);

/// Hard caps on reassembly state. Exceeding a cap never aborts — the
/// offending fragment (or the oldest buffer) is dropped and an obs counter
/// ticks, which is what a production stack under attack must do.
struct ReassemblyLimits {
  /// Concurrently tracked (incomplete) reassembly buffers; the oldest is
  /// evicted to make room ("stack.reassembly_buffer_evicted").
  std::size_t max_buffers = 1024;
  /// Fragments buffered per datagram ("stack.reassembly_piece_overflow").
  std::size_t max_pieces_per_buffer = 256;
  /// Upper bound on any reassembled datagram payload — the IPv4 maximum.
  /// Fragments starting at or past it are dropped
  /// ("stack.reassembly_oversize_fragment").
  std::size_t max_datagram_bytes = 65535;
};

class IpReassembler {
 public:
  explicit IpReassembler(netsim::Duration timeout = netsim::seconds(30),
                         ReassemblyLimits limits = {},
                         ReassemblyPolicy policy = ReassemblyPolicy::kLastWins)
      : timeout_(timeout), limits_(limits), policy_(policy) {}
  explicit IpReassembler(ReassemblyPolicy policy)
      : IpReassembler(netsim::seconds(30), {}, policy) {}

  /// Feed one datagram. Non-fragments pass through unchanged. Fragments are
  /// buffered; when the set completes, the reassembled full datagram (with a
  /// recomputed header, MF cleared) is returned.
  std::optional<Bytes> push(BytesView datagram, netsim::TimePoint now);

  /// Drop incomplete reassembly buffers older than the timeout.
  void expire(netsim::TimePoint now);

  std::size_t pending() const { return buffers_.size(); }
  const ReassemblyLimits& limits() const { return limits_; }
  ReassemblyPolicy policy() const { return policy_; }

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint8_t protocol;
    std::uint16_t identification;
    auto operator<=>(const Key&) const = default;
  };
  struct Piece {
    std::size_t offset;
    Bytes data;
    std::size_t arrival;  // arrival rank within the buffer (overlap tiebreak)
  };
  struct Buffer {
    std::vector<Piece> pieces;  // in arrival order (overlap tiebreak)
    std::optional<std::size_t> total_size;  // known once the MF=0 piece arrives
    netsim::TimePoint first_seen;
    // Header template taken from the offset-0 fragment.
    std::optional<netsim::Ipv4Header> header;
    // Lineage ids of the buffered fragments, recorded only when the
    // provenance recorder is compiled in (layout is level-independent so
    // mixed-level TUs stay ODR-safe).
    std::vector<std::uint64_t> piece_ids;
  };

  void evict_oldest();

  netsim::Duration timeout_;
  ReassemblyLimits limits_;
  ReassemblyPolicy policy_;
  std::map<Key, Buffer> buffers_;
};

}  // namespace liberate::stack
