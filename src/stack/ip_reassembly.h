// ip_reassembly.h — IPv4 fragment reassembly (endpoint and middlebox side).
//
// Keyed by (src, dst, protocol, identification) per RFC 791. Holds fragments
// until the full datagram can be reconstructed or a timeout expires. Both
// endpoint stacks and (some) classifiers reassemble — whether a middlebox does
// is one of the implementation quirks Table 3 probes (the testbed classifies
// reassembled fragments; TMUS/GFC pass them; Iran's path drops them).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "netsim/packet.h"
#include "netsim/simclock.h"
#include "util/bytes.h"

namespace liberate::stack {

class IpReassembler {
 public:
  explicit IpReassembler(netsim::Duration timeout = netsim::seconds(30))
      : timeout_(timeout) {}

  /// Feed one datagram. Non-fragments pass through unchanged. Fragments are
  /// buffered; when the set completes, the reassembled full datagram (with a
  /// recomputed header, MF cleared) is returned.
  std::optional<Bytes> push(BytesView datagram, netsim::TimePoint now);

  /// Drop incomplete reassembly buffers older than the timeout.
  void expire(netsim::TimePoint now);

  std::size_t pending() const { return buffers_.size(); }

 private:
  struct Key {
    std::uint32_t src, dst;
    std::uint8_t protocol;
    std::uint16_t identification;
    auto operator<=>(const Key&) const = default;
  };
  struct Piece {
    std::size_t offset;
    Bytes data;
  };
  struct Buffer {
    std::vector<Piece> pieces;
    std::optional<std::size_t> total_size;  // known once the MF=0 piece arrives
    netsim::TimePoint first_seen;
    // Header template taken from the offset-0 fragment.
    std::optional<netsim::Ipv4Header> header;
    // Lineage ids of the buffered fragments, recorded only when the
    // provenance recorder is compiled in (layout is level-independent so
    // mixed-level TUs stay ODR-safe).
    std::vector<std::uint64_t> piece_ids;
  };

  netsim::Duration timeout_;
  std::map<Key, Buffer> buffers_;
};

}  // namespace liberate::stack
