#include "stack/os_profile.h"

namespace liberate::stack {

using netsim::Anomaly;
using netsim::anomaly_bit;
using netsim::AnomalySet;
using netsim::has_anomaly;

namespace {

// Anomalies every mainstream OS validates and silently drops on.
AnomalySet common_dropped() {
  return anomaly_bit(Anomaly::kBadIpVersion) |
         anomaly_bit(Anomaly::kBadIpHeaderLength) |
         anomaly_bit(Anomaly::kIpTotalLengthLong) |
         anomaly_bit(Anomaly::kIpTotalLengthShort) |
         anomaly_bit(Anomaly::kBadIpChecksum) |
         anomaly_bit(Anomaly::kUnknownIpProtocol) |
         anomaly_bit(Anomaly::kBadTcpChecksum) |
         anomaly_bit(Anomaly::kBadTcpDataOffset) |
         anomaly_bit(Anomaly::kTcpDataNoAck) |
         anomaly_bit(Anomaly::kBadUdpChecksum) |
         anomaly_bit(Anomaly::kUdpLengthLong) |
         anomaly_bit(Anomaly::kTcpSeqOutOfWindow);
}

}  // namespace

OsAction OsProfile::decide(AnomalySet anomalies) const {
  if (anomalies == 0) return OsAction::kDeliver;

  // Windows answers a RST to nonsense flag combinations instead of staying
  // silent — worse than a drop for evasion, since the RST can tear down the
  // very connection the inert packet was inserted into (Table 3 note 6).
  if (rst_on_invalid_flag_combo &&
      has_anomaly(anomalies, Anomaly::kInvalidTcpFlagCombo)) {
    return OsAction::kRespondRst;
  }

  if (dropped & anomalies) return OsAction::kDrop;

  // Linux: a UDP datagram whose declared length is shorter than its payload
  // is delivered, but only up to the declared length (Table 3 note 5).
  if (truncate_short_udp && has_anomaly(anomalies, Anomaly::kUdpLengthShort)) {
    return OsAction::kDeliverTruncated;
  }

  return OsAction::kDeliver;
}

OsProfile OsProfile::linux_profile() {
  OsProfile p;
  p.name = "Linux";
  p.dropped = common_dropped() | anomaly_bit(Anomaly::kInvalidTcpFlagCombo);
  p.truncate_short_udp = true;
  // Invalid and deprecated IP options are NOT dropped: they reach the app.
  return p;
}

OsProfile OsProfile::macos_profile() {
  OsProfile p;
  p.name = "MacOS";
  p.dropped = common_dropped() | anomaly_bit(Anomaly::kInvalidTcpFlagCombo) |
              anomaly_bit(Anomaly::kUdpLengthShort);
  return p;
}

OsProfile OsProfile::windows_profile() {
  OsProfile p;
  p.name = "Windows";
  p.dropped = common_dropped() | anomaly_bit(Anomaly::kInvalidIpOptions) |
              anomaly_bit(Anomaly::kUdpLengthShort);
  p.rst_on_invalid_flag_combo = true;
  return p;
}

}  // namespace liberate::stack
