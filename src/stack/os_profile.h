// os_profile.h — per-OS packet acceptance behaviour.
//
// Table 3's rightmost "Server Response" columns record, for every inert-packet
// technique, whether Linux / macOS / Windows drops the crafted packet (good
// for unilateral evasion) or lets it reach the application (side effects).
// The paper's observations, encoded here:
//   * invalid IP options   — delivered by Linux and macOS, dropped by Windows;
//   * deprecated IP options — delivered by every OS;
//   * invalid TCP flag combos — silently dropped by Linux/macOS, but Windows
//     answers with a RST (note 6), which can kill the real connection;
//   * UDP length shorter than payload — Linux delivers the payload truncated
//     to the declared length (note 5); macOS/Windows drop;
//   * everything else malformed — dropped by all three.
#pragma once

#include <string>

#include "netsim/validation.h"

namespace liberate::stack {

enum class OsAction {
  kDeliver,           // packet accepted, payload reaches the application
  kDrop,              // silently discarded
  kRespondRst,        // discarded and answered with a RST segment
  kDeliverTruncated,  // UDP: deliver payload cut to the declared length
};

struct OsProfile {
  std::string name;
  /// Anomalies that cause a silent drop.
  netsim::AnomalySet dropped = 0;
  /// Windows behaviour: invalid flag combination answered with RST.
  bool rst_on_invalid_flag_combo = false;
  /// Linux behaviour: short-declared UDP delivered truncated.
  bool truncate_short_udp = false;

  /// Decide what this OS does with a packet exhibiting `anomalies`.
  OsAction decide(netsim::AnomalySet anomalies) const;

  static OsProfile linux_profile();
  static OsProfile macos_profile();
  static OsProfile windows_profile();
};

}  // namespace liberate::stack
