#include "stack/tcp_endpoint.h"

#include <algorithm>

#include "obs/obs.h"
#include "stack/host.h"

namespace liberate::stack {

using netsim::TcpFlags;
using netsim::TcpHeader;

TcpConnection::TcpConnection(Host& host, netsim::FiveTuple tuple,
                             std::uint32_t iss, bool passive)
    : host_(host), tuple_(tuple), passive_(passive), iss_(iss) {
  snd_una_ = iss_;
  snd_nxt_ = iss_;
}

void TcpConnection::start_connect() {
  state_ = State::kSynSent;
  send_control(TcpFlags::kSyn, snd_nxt_, 0);
  snd_nxt_ += 1;  // SYN occupies one sequence number
  unacked_.push_back(Unacked{iss_, {}});  // retransmittable SYN marker
  arm_retransmit_timer();
}

void TcpConnection::send(BytesView data) {
  send_buffer_.insert(send_buffer_.end(), data.begin(), data.end());
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    pump_send_buffer();
  }
}

void TcpConnection::close() {
  if (state_ == State::kClosed) return;
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  send_control(TcpFlags::kRst | TcpFlags::kAck, snd_nxt_, rcv_nxt_);
  teardown(/*reset=*/true);
}

void TcpConnection::maybe_send_fin() {
  // FIN goes out only after all buffered data has been segmentized and sent.
  if (!fin_pending_ || fin_sent_ || !send_buffer_.empty()) return;
  if (state_ != State::kEstablished && state_ != State::kCloseWait) return;
  fin_seq_ = snd_nxt_;
  send_control(TcpFlags::kFin | TcpFlags::kAck, snd_nxt_, rcv_nxt_);
  snd_nxt_ += 1;
  fin_sent_ = true;
  unacked_.push_back(Unacked{fin_seq_, {}});
  arm_retransmit_timer();
  state_ = state_ == State::kCloseWait ? State::kLastAck : State::kFinWait;
}

void TcpConnection::transmit_data_segment(std::uint32_t seq, BytesView payload,
                                          bool record) {
  TcpHeader h;
  h.src_port = tuple_.src_port;
  h.dst_port = tuple_.dst_port;
  h.seq = seq;
  h.ack = rcv_nxt_;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  h.window = kRcvWindow;
  netsim::Ipv4Header ip;
  ip.src = tuple_.src_ip;
  ip.dst = tuple_.dst_ip;
  host_.transmit(make_tcp_datagram(ip, h, payload));
  if (record) {
    unacked_.push_back(Unacked{seq, Bytes(payload.begin(), payload.end())});
    bytes_sent_ += payload.size();
  }
}

void TcpConnection::send_control(std::uint8_t flags, std::uint32_t seq,
                                 std::uint32_t ack) {
  TcpHeader h;
  h.src_port = tuple_.src_port;
  h.dst_port = tuple_.dst_port;
  h.seq = seq;
  h.ack = ack;
  h.flags = flags;
  h.window = kRcvWindow;
  netsim::Ipv4Header ip;
  ip.src = tuple_.src_ip;
  ip.dst = tuple_.dst_ip;
  host_.transmit(make_tcp_datagram(ip, h, {}));
}

void TcpConnection::send_ack() {
  send_control(TcpFlags::kAck, snd_nxt_, rcv_nxt_);
}

void TcpConnection::pump_send_buffer() {
  while (!send_buffer_.empty()) {
    std::uint32_t in_flight = snd_nxt_ - snd_una_;
    if (in_flight >= kMaxInFlight) break;
    std::size_t room = kMaxInFlight - in_flight;
    std::size_t n = std::min({send_buffer_.size(), kMss, room});
    if (n == 0) break;
    Bytes chunk(send_buffer_.begin(),
                send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    send_buffer_.erase(send_buffer_.begin(),
                       send_buffer_.begin() + static_cast<std::ptrdiff_t>(n));
    transmit_data_segment(snd_nxt_, chunk, /*record=*/true);
    snd_nxt_ += static_cast<std::uint32_t>(n);
  }
  if (!unacked_.empty()) arm_retransmit_timer();
  maybe_send_fin();
}

void TcpConnection::arm_retransmit_timer() {
  std::uint64_t gen = ++timer_generation_;
  timer_armed_ = true;
  host_.loop().schedule(rto_, [this, gen]() { on_retransmit_timer(gen); });
}

void TcpConnection::on_retransmit_timer(std::uint64_t generation) {
  if (generation != timer_generation_ || state_ == State::kClosed) return;
  timer_armed_ = false;
  if (unacked_.empty()) return;

  const Unacked& u = unacked_.front();
  ++retransmissions_;
  if (u.payload.empty()) {
    // SYN or FIN retransmission.
    if (u.seq == iss_ && (state_ == State::kSynSent)) {
      send_control(TcpFlags::kSyn, iss_, 0);
    } else if (state_ == State::kSynReceived && u.seq == iss_) {
      send_control(TcpFlags::kSyn | TcpFlags::kAck, iss_, rcv_nxt_);
    } else if (fin_sent_ && u.seq == fin_seq_) {
      send_control(TcpFlags::kFin | TcpFlags::kAck, fin_seq_, rcv_nxt_);
    }
  } else {
    transmit_data_segment(u.seq, u.payload, /*record=*/false);
  }
  rto_ = std::min<netsim::Duration>(rto_ * 2, netsim::seconds(2));
  arm_retransmit_timer();
}

void TcpConnection::enter_established() {
  state_ = State::kEstablished;
  if (on_established_) on_established_();
  pump_send_buffer();
}

void TcpConnection::teardown(bool reset) {
  state_ = State::kClosed;
  was_reset_ = was_reset_ || reset;
  ++timer_generation_;  // cancel timers
  unacked_.clear();
  send_buffer_.clear();
  out_of_order_.clear();
  ooo_buffered_ = 0;
  if (reset) {
    if (on_reset_) on_reset_();
  } else {
    if (on_closed_) on_closed_();
  }
}

void TcpConnection::handle_segment(const netsim::PacketView& pkt) {
  if (!pkt.tcp) return;
  const netsim::TcpView& seg = *pkt.tcp;

  // --- RST processing (any state) ---------------------------------------
  if (seg.rst()) {
    // Accept a RST only if its sequence number is within the receive window
    // (blind-RST protection; also keeps crafted out-of-window RSTs inert at
    // the endpoint even when a middlebox accepted them).
    if (state_ == State::kSynSent || seg.seq == 0 ||
        (seq_le(rcv_nxt_, seg.seq) && seq_lt(seg.seq, rcv_nxt_ + kRcvWindow))) {
      teardown(/*reset=*/true);
    }
    return;
  }

  // Passive open: fresh connection created by the listener sees the SYN here.
  if (state_ == State::kClosed && passive_ && seg.syn() && !seg.ack_flag()) {
    irs_ = seg.seq;
    rcv_nxt_ = seg.seq + 1;
    state_ = State::kSynReceived;
    send_control(TcpFlags::kSyn | TcpFlags::kAck, iss_, rcv_nxt_);
    snd_nxt_ = iss_ + 1;
    unacked_.push_back(Unacked{iss_, {}});
    arm_retransmit_timer();
    return;
  }

  switch (state_) {
    case State::kSynSent: {
      if (seg.syn() && seg.ack_flag() && seg.ack == iss_ + 1) {
        irs_ = seg.seq;
        rcv_nxt_ = seg.seq + 1;
        snd_una_ = seg.ack;
        if (!unacked_.empty() && unacked_.front().payload.empty()) {
          unacked_.pop_front();  // SYN acked
        }
        send_ack();
        enter_established();
      }
      return;
    }
    case State::kSynReceived: {
      if (seg.ack_flag() && seg.ack == iss_ + 1) {
        snd_una_ = seg.ack;
        if (!unacked_.empty() && unacked_.front().payload.empty()) {
          unacked_.pop_front();
        }
        enter_established();
        // Fall through to process any data piggybacked on the ACK.
      } else {
        return;
      }
      break;
    }
    case State::kClosed:
      return;
    default:
      break;
  }

  // --- ACK processing -----------------------------------------------------
  if (seg.ack_flag()) {
    std::uint32_t ack = seg.ack;
    if (seq_lt(snd_una_, ack) && seq_le(ack, snd_nxt_)) {
      snd_una_ = ack;
      while (!unacked_.empty()) {
        const Unacked& u = unacked_.front();
        std::uint32_t seg_end =
            u.seq + static_cast<std::uint32_t>(
                        u.payload.empty() ? 1 : u.payload.size());
        if (seq_le(seg_end, ack)) {
          unacked_.pop_front();
        } else {
          break;
        }
      }
      rto_ = netsim::milliseconds(200);
      if (unacked_.empty()) {
        ++timer_generation_;  // all data acked: cancel timer
        timer_armed_ = false;
      } else {
        arm_retransmit_timer();
      }
      pump_send_buffer();

      // FIN fully acked?
      if (fin_sent_ && seq_le(fin_seq_ + 1, ack)) {
        if (state_ == State::kLastAck) {
          teardown(/*reset=*/false);
          return;
        }
        if (state_ == State::kFinWait && peer_fin_received_) {
          teardown(/*reset=*/false);
          return;
        }
      }
    }
  }

  // --- Data processing ----------------------------------------------------
  BytesView payload = seg.payload;
  std::uint32_t seq = seg.seq;
  if (!payload.empty()) {
    // Trim the portion we already have.
    if (seq_lt(seq, rcv_nxt_)) {
      std::uint32_t overlap = rcv_nxt_ - seq;
      if (overlap >= payload.size()) {
        send_ack();  // full duplicate: re-ACK
        payload = {};
      } else {
        payload = payload.subspan(overlap);
        seq = rcv_nxt_;
      }
    }
  }
  if (!payload.empty()) {
    if (!seq_lt(seq, rcv_nxt_ + kRcvWindow)) {
      // Out of window: stateful anomaly. Drop (and re-ACK, like real stacks).
      send_ack();
    } else if (ooo_buffered_ + payload.size() > kMaxOutOfOrderBytes) {
      // Queue full: drop the segment (the sender will retransmit once the
      // gap closes) instead of buffering unbounded adversarial floods.
      LIBERATE_COUNTER_ADD("stack.tcp_ooo_overflow_drops", 1);
      send_ack();
    } else {
      auto [it, inserted] = out_of_order_.emplace(
          seq, Bytes(payload.begin(), payload.end()));
      (void)it;
      if (inserted) ooo_buffered_ += payload.size();
      deliver_in_order();
      send_ack();
    }
  }

  // --- FIN processing -----------------------------------------------------
  if (seg.fin()) {
    std::uint32_t fin_seq = seg.seq + static_cast<std::uint32_t>(seg.payload.size());
    if (fin_seq == rcv_nxt_ && !peer_fin_received_) {
      peer_fin_received_ = true;
      peer_fin_seq_ = fin_seq;
      rcv_nxt_ = fin_seq + 1;
      send_ack();
      if (state_ == State::kEstablished) {
        state_ = State::kCloseWait;
        maybe_send_fin();  // if app already asked to close
      } else if (state_ == State::kFinWait) {
        // Simultaneous/sequential close; if our FIN was already acked we're
        // done, otherwise wait for that ACK.
        if (unacked_.empty()) teardown(/*reset=*/false);
      }
    }
  }
}

void TcpConnection::deliver_in_order() {
  // The map is ordered by sequence offset from irs_, so begin() is always
  // the stream-wise earliest segment: if it cannot be delivered (and is not
  // stale), nothing later can either.
  while (!out_of_order_.empty()) {
    auto it = out_of_order_.begin();
    std::uint32_t seq = it->first;
    Bytes& data = it->second;
    const std::size_t held = data.size();
    if (seq_le(seq + static_cast<std::uint32_t>(data.size()), rcv_nxt_)) {
      // Entirely stale.
      out_of_order_.erase(it);
      ooo_buffered_ -= held;
      continue;
    }
    if (seq_le(seq, rcv_nxt_) &&
        seq_lt(rcv_nxt_, seq + static_cast<std::uint32_t>(data.size()))) {
      std::uint32_t skip = rcv_nxt_ - seq;
      BytesView fresh = BytesView(data).subspan(skip);
      bytes_delivered_ += fresh.size();
      rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
      if (on_data_) on_data_(fresh);
      out_of_order_.erase(it);
      ooo_buffered_ -= held;
      continue;
    }
    break;  // gap before the earliest segment
  }
}

}  // namespace liberate::stack
