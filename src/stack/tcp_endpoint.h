// tcp_endpoint.h — a deliberately small but real TCP implementation.
//
// Implements what the experiments need end-to-end: three-way handshake,
// MSS-sized segmentation, cumulative ACKs, out-of-order reassembly (required
// for the payload splitting/reordering evasions to deliver intact byte
// streams), retransmission with exponential backoff (required under shaping
// queues), RST teardown and a simple FIN close. No congestion control beyond
// a fixed in-flight cap — paths in this simulator are short and loss comes
// from policy, not congestion.
//
// Stateful validation (sequence-out-of-window) happens here; stateless packet
// validation happened earlier in Host::receive via the OS profile.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "netsim/event_loop.h"
#include "netsim/packet.h"

namespace liberate::stack {

class Host;

class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait,    // we sent FIN, waiting for ACK/FIN
    kCloseWait,  // peer sent FIN, we haven't closed yet
    kLastAck,    // peer closed first, we sent our FIN
  };

  using DataCallback = std::function<void(BytesView)>;
  using EventCallback = std::function<void()>;

  /// Application interface -------------------------------------------------
  void send(BytesView data);
  void send(std::string_view data) { send(BytesView(to_bytes(data))); }
  void close();
  /// Abort with RST.
  void abort();

  void on_established(EventCallback cb) { on_established_ = std::move(cb); }
  void on_data(DataCallback cb) { on_data_ = std::move(cb); }
  void on_closed(EventCallback cb) { on_closed_ = std::move(cb); }
  void on_reset(EventCallback cb) { on_reset_ = std::move(cb); }

  State state() const { return state_; }
  const netsim::FiveTuple& tuple() const { return tuple_; }  // local -> remote
  std::uint64_t bytes_delivered() const { return bytes_delivered_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  bool was_reset() const { return was_reset_; }

  /// Stack-internal --------------------------------------------------------
  TcpConnection(Host& host, netsim::FiveTuple tuple, std::uint32_t iss,
                bool passive);
  void start_connect();                          // active open: send SYN
  void handle_segment(const netsim::PacketView& pkt);  // from Host demux

  static constexpr std::size_t kMss = 1400;
  static constexpr std::size_t kMaxInFlight = 64 * 1024;
  /// Cap on buffered out-of-order payload bytes. Segments beyond it are
  /// dropped (and re-ACKed) instead of growing the queue without bound —
  /// crafted gap-never-closes floods would otherwise pin memory forever.
  static constexpr std::size_t kMaxOutOfOrderBytes = 256 * 1024;

  /// Bytes currently buffered in the out-of-order queue (tests/obs).
  std::size_t out_of_order_bytes() const { return ooo_buffered_; }

 private:
  void transmit_data_segment(std::uint32_t seq, BytesView payload,
                             bool record);
  void send_control(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack);
  void send_ack();
  void pump_send_buffer();
  void arm_retransmit_timer();
  void on_retransmit_timer(std::uint64_t generation);
  void deliver_in_order();
  void enter_established();
  void teardown(bool reset);
  void maybe_send_fin();

  Host& host_;
  netsim::FiveTuple tuple_;
  State state_ = State::kClosed;
  bool passive_ = false;

  // Send side.
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;  // oldest unacked
  std::uint32_t snd_nxt_ = 0;
  std::deque<std::uint8_t> send_buffer_;  // app bytes not yet segmentized
  struct Unacked {
    std::uint32_t seq;
    Bytes payload;
  };
  std::deque<Unacked> unacked_;
  bool fin_pending_ = false;   // app called close(), FIN not yet sent
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Receive side.
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  // Orders sequence numbers by their unsigned offset from the initial
  // receive sequence number, so segments just past a 2^32 wrap sort *after*
  // pre-wrap segments (raw integer order would put them first and make the
  // drain loop's winner depend on where the ISN happened to fall). irs_ is
  // fixed for the life of the connection, so the ordering is stable while
  // the map holds elements.
  struct SeqOrder {
    const std::uint32_t* base;
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return a - *base < b - *base;
    }
  };
  std::map<std::uint32_t, Bytes, SeqOrder> out_of_order_{
      SeqOrder{&irs_}};  // seq -> payload
  std::size_t ooo_buffered_ = 0;  // payload bytes held in out_of_order_
  static constexpr std::uint32_t kRcvWindow = 65535;
  bool peer_fin_received_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  // Timers.
  netsim::Duration rto_ = netsim::milliseconds(200);
  std::uint64_t timer_generation_ = 0;
  bool timer_armed_ = false;

  // Stats / callbacks.
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t retransmissions_ = 0;
  bool was_reset_ = false;
  EventCallback on_established_;
  DataCallback on_data_;
  EventCallback on_closed_;
  EventCallback on_reset_;
};

/// Sequence-space comparison helpers (wraparound-safe).
inline bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
inline bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

}  // namespace liberate::stack
