#include "stack/udp_endpoint.h"

#include "stack/host.h"

namespace liberate::stack {

void UdpSocket::send_to(std::uint32_t dst_ip, std::uint16_t dst_port,
                        BytesView payload) {
  netsim::UdpHeader h;
  h.src_port = port_;
  h.dst_port = dst_port;
  netsim::Ipv4Header ip;
  ip.src = host_.address();
  ip.dst = dst_ip;
  host_.transmit(make_udp_datagram(ip, h, payload));
}

void UdpSocket::deliver(const netsim::PacketView& pkt, bool truncated) {
  if (!pkt.udp) return;
  Incoming in;
  in.src_ip = pkt.ip.src;
  in.src_port = pkt.udp->src_port;
  BytesView payload =
      truncated ? pkt.udp->declared_payload() : pkt.udp->payload;
  in.payload.assign(payload.begin(), payload.end());
  in.truncated = truncated;
  ++datagrams_received_;
  bytes_received_ += in.payload.size();
  if (on_receive_) on_receive_(in);
}

}  // namespace liberate::stack
