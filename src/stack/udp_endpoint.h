// udp_endpoint.h — a bound UDP socket on a Host.
#pragma once

#include <cstdint>
#include <functional>

#include "netsim/packet.h"
#include "util/bytes.h"

namespace liberate::stack {

class Host;

class UdpSocket {
 public:
  struct Incoming {
    std::uint32_t src_ip;
    std::uint16_t src_port;
    Bytes payload;
    bool truncated;  // Linux short-length delivery (Table 3 note 5)
  };
  using ReceiveCallback = std::function<void(const Incoming&)>;

  UdpSocket(Host& host, std::uint16_t port) : host_(host), port_(port) {}

  std::uint16_t port() const { return port_; }
  void on_receive(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  void send_to(std::uint32_t dst_ip, std::uint16_t dst_port, BytesView payload);

  std::uint64_t datagrams_received() const { return datagrams_received_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

  /// Stack-internal.
  void deliver(const netsim::PacketView& pkt, bool truncated);

 private:
  Host& host_;
  std::uint16_t port_;
  ReceiveCallback on_receive_;
  std::uint64_t datagrams_received_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace liberate::stack
