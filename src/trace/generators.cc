#include "trace/generators.h"

#include "dpi/stun_parser.h"
#include "util/rng.h"
#include "util/strings.h"

namespace liberate::trace {

namespace {

constexpr std::size_t kBodyChunk = 8 * 1024;  // server message granularity

Message client_msg(Bytes payload, std::uint64_t gap_us = 0) {
  return Message{Sender::kClient, std::move(payload), gap_us};
}
Message server_msg(Bytes payload, std::uint64_t gap_us = 0) {
  return Message{Sender::kServer, std::move(payload), gap_us};
}

}  // namespace

ApplicationTrace make_http_trace(const std::string& app_name,
                                 const HttpTraceOptions& options) {
  ApplicationTrace trace;
  trace.app_name = app_name;
  trace.transport = Transport::kTcp;
  trace.server_port = options.server_port;

  std::string request = format(
      "GET %s HTTP/1.1\r\n"
      "Host: %s\r\n"
      "User-Agent: %s\r\n"
      "Accept: */*\r\n"
      "Connection: keep-alive\r\n"
      "\r\n",
      options.path.c_str(), options.host.c_str(), options.user_agent.c_str());
  trace.messages.push_back(client_msg(to_bytes(request)));

  std::string head = format(
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Server: nginx/1.14.0\r\n"
      "\r\n",
      options.content_type.c_str(), options.response_body_bytes);
  trace.messages.push_back(server_msg(to_bytes(head)));

  Rng rng(options.seed);
  std::size_t remaining = options.response_body_bytes;
  while (remaining > 0) {
    std::size_t n = std::min(remaining, options.chunk_bytes);
    trace.messages.push_back(server_msg(rng.bytes(n)));
    remaining -= n;
  }
  return trace;
}

ApplicationTrace make_tls_trace(const std::string& app_name,
                                const TlsTraceOptions& options) {
  ApplicationTrace trace;
  trace.app_name = app_name;
  trace.transport = Transport::kTcp;
  trace.server_port = options.server_port;
  Rng rng(options.seed);

  // --- ClientHello with SNI ---
  ByteWriter ext;
  const std::string& sni = options.sni;
  ext.u16(0);  // server_name extension
  ext.u16(static_cast<std::uint16_t>(sni.size() + 5));
  ext.u16(static_cast<std::uint16_t>(sni.size() + 3));
  ext.u8(0);
  ext.u16(static_cast<std::uint16_t>(sni.size()));
  ext.raw(sni);

  ByteWriter body;
  body.u16(0x0303);
  for (int i = 0; i < 32; ++i) body.u8(rng.byte());
  body.u8(0);
  body.u16(4);  // two cipher suites
  body.u16(0x1301);
  body.u16(0x1302);
  body.u8(1);
  body.u8(0);
  body.u16(static_cast<std::uint16_t>(ext.size()));
  body.raw(ext.bytes());

  ByteWriter hs;
  hs.u8(1);
  hs.u24(static_cast<std::uint32_t>(body.size()));
  hs.raw(body.bytes());

  ByteWriter record;
  record.u8(22);
  record.u16(0x0301);
  record.u16(static_cast<std::uint16_t>(hs.size()));
  record.raw(hs.bytes());
  trace.messages.push_back(client_msg(std::move(record).take()));

  // --- ServerHello-ish handshake blob ---
  ByteWriter sh;
  sh.u8(22);
  sh.u16(0x0303);
  Bytes sh_body = rng.bytes(96);
  sh.u16(static_cast<std::uint16_t>(sh_body.size()));
  sh.raw(sh_body);
  trace.messages.push_back(server_msg(std::move(sh).take()));

  // --- Client Finished-ish record ---
  ByteWriter fin;
  fin.u8(20);  // change_cipher_spec
  fin.u16(0x0303);
  fin.u16(1);
  fin.u8(1);
  trace.messages.push_back(client_msg(std::move(fin).take()));

  // --- Application data records (opaque) ---
  std::size_t remaining = options.response_body_bytes;
  while (remaining > 0) {
    std::size_t n = std::min<std::size_t>(remaining, kBodyChunk);
    ByteWriter rec;
    rec.u8(23);  // application_data
    rec.u16(0x0303);
    rec.u16(static_cast<std::uint16_t>(n));
    rec.raw(rng.bytes(n));
    trace.messages.push_back(server_msg(std::move(rec).take()));
    remaining -= n;
  }
  return trace;
}

ApplicationTrace make_skype_trace(const SkypeTraceOptions& options) {
  ApplicationTrace trace;
  trace.app_name = "Skype";
  trace.transport = Transport::kUdp;
  trace.server_port = options.server_port;
  Rng rng(options.seed);

  // First client packet: STUN Binding Request with MS-SERVICE-QUALITY.
  dpi::StunMessage req;
  req.message_type = 0x0001;
  req.transaction_id = rng.bytes(12);
  req.attributes.push_back(dpi::StunAttribute{
      dpi::kStunAttrMsServiceQuality, {0x00, 0x01, 0x00, 0x00, 0x00, 0x01}});
  req.attributes.push_back(dpi::StunAttribute{0x0006, to_bytes("skypeuser")});
  trace.messages.push_back(client_msg(dpi::serialize_stun(req)));

  // STUN Binding Response from the server.
  dpi::StunMessage resp;
  resp.message_type = 0x0101;
  resp.transaction_id = req.transaction_id;
  resp.attributes.push_back(
      dpi::StunAttribute{0x0020, {0x00, 0x01, 0x1f, 0x40, 1, 2, 3, 4}});
  trace.messages.push_back(server_msg(dpi::serialize_stun(resp)));

  // RTP-like voice payloads, alternating directions, 20 ms apart.
  for (std::size_t i = 0; i < options.voice_packets; ++i) {
    Bytes pkt = rng.bytes(options.voice_packet_bytes);
    pkt[0] = 0x80;  // RTP version 2
    if (i % 2 == 0) {
      trace.messages.push_back(client_msg(std::move(pkt), 20000));
    } else {
      trace.messages.push_back(server_msg(std::move(pkt), 20000));
    }
  }
  return trace;
}

ApplicationTrace make_generic_udp_trace(std::uint64_t seed,
                                        std::uint16_t port) {
  ApplicationTrace trace;
  trace.app_name = "GenericUdpApp";
  trace.transport = Transport::kUdp;
  trace.server_port = port;
  Rng rng(seed);
  for (int i = 0; i < 12; ++i) {
    Bytes payload = rng.bytes(200 + rng.below(400));
    // Keep it plainly non-STUN/non-RTP.
    payload[0] = 'Q';
    payload[1] = 'D';
    if (i % 3 == 2) {
      trace.messages.push_back(server_msg(std::move(payload), 5000));
    } else {
      trace.messages.push_back(client_msg(std::move(payload), 5000));
    }
  }
  return trace;
}

ApplicationTrace amazon_video_trace(std::size_t body_bytes) {
  HttpTraceOptions o;
  // Amazon Prime Video fetches segments from CloudFront; both T-Mobile's and
  // the testbed's rules key on this hostname (§6.2).
  o.host = "d25xi40x97liuc.cloudfront.net";
  o.path = "/video/segment-1.mp4";
  o.user_agent = "AmazonVideo/5.0 (Linux)";
  o.content_type = "video/mp4";
  o.response_body_bytes = body_bytes;
  o.seed = 11;
  auto t = make_http_trace("AmazonPrimeVideo", o);
  return t;
}

ApplicationTrace spotify_trace(std::size_t body_bytes) {
  HttpTraceOptions o;
  o.host = "api.spotify.com";
  o.path = "/v1/track/4uLU6hMCjMI75M1A2tKUQC/stream";
  o.user_agent = "Spotify/8.4 (Linux)";
  o.content_type = "audio/ogg";
  o.response_body_bytes = body_bytes;
  o.seed = 12;
  return make_http_trace("Spotify", o);
}

ApplicationTrace youtube_tls_trace(std::size_t body_bytes) {
  TlsTraceOptions o;
  o.sni = "r4---sn-p5qlsnz6.googlevideo.com";
  o.response_body_bytes = body_bytes;
  o.seed = 13;
  return make_tls_trace("YouTube", o);
}

ApplicationTrace nbcsports_trace(std::size_t body_bytes) {
  HttpTraceOptions o;
  o.host = "vod.nbcsports.com";
  o.path = "/highlights/game7.mp4";
  o.user_agent = "Mozilla/5.0";
  o.content_type = "video/mp4";
  o.response_body_bytes = body_bytes;
  o.chunk_bytes = 64 * 1024;  // long video: coarse recording granularity
  o.seed = 14;
  return make_http_trace("NBCSports", o);
}

ApplicationTrace economist_trace() {
  HttpTraceOptions o;
  o.host = "www.economist.com";
  o.path = "/news/china/index.html";
  o.user_agent = "Mozilla/5.0";
  o.content_type = "text/html";
  o.response_body_bytes = 3 * 1024;  // ~4 KB per replay round (§6.5)
  o.seed = 15;
  return make_http_trace("EconomistWeb", o);
}

ApplicationTrace facebook_trace() {
  HttpTraceOptions o;
  o.host = "www.facebook.com";
  o.path = "/home.php";
  o.user_agent = "Mozilla/5.0";
  o.content_type = "text/html";
  o.response_body_bytes = 3 * 1024;
  o.seed = 16;
  return make_http_trace("FacebookWeb", o);
}

ApplicationTrace plain_web_trace() {
  HttpTraceOptions o;
  o.host = "www.plain-example.org";
  o.path = "/index.html";
  o.user_agent = "Mozilla/5.0";
  o.content_type = "text/html";
  o.response_body_bytes = 3 * 1024;
  o.seed = 17;
  return make_http_trace("PlainWeb", o);
}

}  // namespace liberate::trace
