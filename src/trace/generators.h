// generators.h — byte-accurate application traffic generators.
//
// These produce the traces the paper records and replays: HTTP video/music
// sessions (Amazon Prime Video, Spotify, NBCSports, economist.com,
// facebook.com), TLS sessions with SNI (YouTube via googlevideo.com), and
// Skype's STUN-based UDP session carrying the MS-SERVICE-QUALITY attribute.
// The classification rules in dpi/profiles.cc key on fields these generators
// emit — exactly the coupling the real systems have.
#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.h"

namespace liberate::trace {

struct HttpTraceOptions {
  std::string host = "www.primevideo.com";
  std::string path = "/video/segment-1.mp4";
  std::string user_agent = "AmazonVideo/5.0 (Linux)";
  std::string content_type = "video/mp4";
  /// Total response body bytes (the download that gets shaped/zero-rated).
  std::size_t response_body_bytes = 200 * 1024;
  /// Server message granularity: how many body bytes per recorded message.
  /// Larger chunks keep the blinding search's per-message pruning cost low
  /// for big traces (the AT&T video sessions).
  std::size_t chunk_bytes = 8 * 1024;
  std::uint16_t server_port = 80;
  std::uint64_t seed = 1;
};

/// A single HTTP request/response exchange with a chunked body.
ApplicationTrace make_http_trace(const std::string& app_name,
                                 const HttpTraceOptions& options);

struct TlsTraceOptions {
  std::string sni = "r4---sn-p5qlsnz6.googlevideo.com";
  std::size_t response_body_bytes = 200 * 1024;
  std::uint16_t server_port = 443;
  std::uint64_t seed = 2;
};

/// A TLS session: ClientHello (with SNI), ServerHello-ish response, then
/// opaque application-data records.
ApplicationTrace make_tls_trace(const std::string& app_name,
                                const TlsTraceOptions& options);

struct SkypeTraceOptions {
  std::size_t voice_packets = 40;
  std::size_t voice_packet_bytes = 160;
  std::uint16_t server_port = 3478;
  std::uint64_t seed = 3;
};

/// Skype-like UDP flow: STUN binding request carrying MS-SERVICE-QUALITY
/// (0x8055) in the FIRST client packet (§6.1), a STUN response, then
/// RTP-like voice payloads.
ApplicationTrace make_skype_trace(const SkypeTraceOptions& options);

/// A generic UDP application that matches no classifier rule (the "class B"
/// cover traffic for UDP misclassification tests).
ApplicationTrace make_generic_udp_trace(std::uint64_t seed = 4,
                                        std::uint16_t port = 9000);

/// Canonical named traces used across tests/benches/examples, mirroring the
/// applications named in §6.
ApplicationTrace amazon_video_trace(std::size_t body_bytes = 200 * 1024);
ApplicationTrace spotify_trace(std::size_t body_bytes = 60 * 1024);
ApplicationTrace youtube_tls_trace(std::size_t body_bytes = 200 * 1024);
ApplicationTrace nbcsports_trace(std::size_t body_bytes = 2 * 1024 * 1024);
ApplicationTrace economist_trace();   // blocked in China (§6.5), 4 KB pages
ApplicationTrace facebook_trace();    // blocked in Iran (§6.6)
ApplicationTrace plain_web_trace();   // matches no rule anywhere

}  // namespace liberate::trace
