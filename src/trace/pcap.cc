#include "trace/pcap.h"

namespace liberate::trace {

namespace {

// pcap files are conventionally little-endian; ByteWriter is big-endian, so
// write LE explicitly.
void le16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void le32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
std::uint32_t rd32(BytesView d, std::size_t off) {
  return static_cast<std::uint32_t>(d[off]) |
         (static_cast<std::uint32_t>(d[off + 1]) << 8) |
         (static_cast<std::uint32_t>(d[off + 2]) << 16) |
         (static_cast<std::uint32_t>(d[off + 3]) << 24);
}

constexpr std::uint32_t kMagic = 0xa1b2c3d4;
constexpr std::uint32_t kLinkTypeRaw = 101;

}  // namespace

Bytes write_pcap(const std::vector<PcapRecord>& records) {
  Bytes out;
  le32(out, kMagic);
  le16(out, 2);   // version major
  le16(out, 4);   // version minor
  le32(out, 0);   // thiszone
  le32(out, 0);   // sigfigs
  le32(out, 65535);  // snaplen
  le32(out, kLinkTypeRaw);
  for (const auto& r : records) {
    le32(out, static_cast<std::uint32_t>(r.at / 1000000));  // ts_sec
    le32(out, static_cast<std::uint32_t>(r.at % 1000000));  // ts_usec
    le32(out, static_cast<std::uint32_t>(r.datagram.size()));  // incl_len
    le32(out, static_cast<std::uint32_t>(r.datagram.size()));  // orig_len
    out.insert(out.end(), r.datagram.begin(), r.datagram.end());
  }
  return out;
}

Result<std::vector<PcapRecord>> read_pcap(BytesView data) {
  if (data.size() < 24) return Error("pcap: truncated global header");
  if (rd32(data, 0) != kMagic) return Error("pcap: bad magic (or byteswapped)");
  if (rd32(data, 20) != kLinkTypeRaw) {
    return Error("pcap: unsupported link type (want LINKTYPE_RAW)");
  }
  std::vector<PcapRecord> records;
  std::size_t off = 24;
  while (off + 16 <= data.size()) {
    std::uint32_t ts_sec = rd32(data, off);
    std::uint32_t ts_usec = rd32(data, off + 4);
    std::uint32_t incl = rd32(data, off + 8);
    off += 16;
    if (off + incl > data.size()) return Error("pcap: truncated record");
    PcapRecord r;
    r.at = static_cast<netsim::TimePoint>(ts_sec) * 1000000 + ts_usec;
    r.datagram.assign(data.begin() + static_cast<std::ptrdiff_t>(off),
                      data.begin() + static_cast<std::ptrdiff_t>(off + incl));
    records.push_back(std::move(r));
    off += incl;
  }
  if (off != data.size()) return Error("pcap: trailing garbage");
  return records;
}

Bytes tap_to_pcap(const netsim::TapElement& tap) {
  std::vector<PcapRecord> records;
  for (const auto& seen : tap.seen()) {
    records.push_back(
        PcapRecord{seen.at, Bytes(seen.datagram.begin(), seen.datagram.end())});
  }
  return write_pcap(records);
}

}  // namespace liberate::trace
