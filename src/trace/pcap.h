// pcap.h — classic libpcap file format export/import (LINKTYPE_RAW: each
// record is one complete IPv4 datagram).
//
// Lets wire captures from TapElements and recorded traces be inspected with
// standard tooling (tcpdump/wireshark), and round-trips within the library
// for tests. Timestamps are virtual-simulation time.
#pragma once

#include <vector>

#include "netsim/network.h"
#include "netsim/simclock.h"
#include "util/bytes.h"
#include "util/result.h"

namespace liberate::trace {

struct PcapRecord {
  netsim::TimePoint at = 0;  // microseconds
  Bytes datagram;
};

/// Serialize records into a classic pcap byte stream (magic 0xa1b2c3d4,
/// version 2.4, LINKTYPE_RAW=101, microsecond timestamps).
Bytes write_pcap(const std::vector<PcapRecord>& records);

/// Parse a pcap byte stream produced by write_pcap (or any classic
/// little-endian pcap with LINKTYPE_RAW).
Result<std::vector<PcapRecord>> read_pcap(BytesView data);

/// Convenience: everything a tap saw, as a pcap stream.
Bytes tap_to_pcap(const netsim::TapElement& tap);

}  // namespace liberate::trace
