#include "trace/pcapng.h"

namespace liberate::trace {

namespace {

// pcapng blocks are written in the writer's native byte order, announced by
// the byte-order magic; we always emit little-endian, matching pcap.cc.
void le16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void le32(Bytes& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v >> 16));
  out.push_back(static_cast<std::uint8_t>(v >> 24));
}
std::uint16_t rd16(BytesView d, std::size_t off) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(d[off]) |
      (static_cast<std::uint16_t>(d[off + 1]) << 8));
}
std::uint32_t rd32(BytesView d, std::size_t off) {
  return static_cast<std::uint32_t>(d[off]) |
         (static_cast<std::uint32_t>(d[off + 1]) << 8) |
         (static_cast<std::uint32_t>(d[off + 2]) << 16) |
         (static_cast<std::uint32_t>(d[off + 3]) << 24);
}

constexpr std::uint32_t kSectionHeaderBlock = 0x0a0d0d0a;
constexpr std::uint32_t kInterfaceBlock = 0x00000001;
constexpr std::uint32_t kEnhancedPacketBlock = 0x00000006;
constexpr std::uint32_t kByteOrderMagic = 0x1a2b3c4d;
constexpr std::uint32_t kLinkTypeRaw = 101;
constexpr std::uint16_t kOptEndOfOpt = 0;
constexpr std::uint16_t kOptComment = 1;
constexpr std::uint16_t kOptIfTsResol = 9;

void pad32(Bytes& out) {
  while (out.size() % 4 != 0) out.push_back(0);
}

/// Append one option (code, length, value padded to 32 bits).
void option(Bytes& out, std::uint16_t code, BytesView value) {
  le16(out, code);
  le16(out, static_cast<std::uint16_t>(value.size()));
  out.insert(out.end(), value.begin(), value.end());
  pad32(out);
}

/// Append a finished block: type + total length + body + trailing length.
void block(Bytes& out, std::uint32_t type, const Bytes& body) {
  // Total length covers type (4) + length (4) + body + trailing length (4).
  std::uint32_t total = static_cast<std::uint32_t>(12 + body.size());
  le32(out, type);
  le32(out, total);
  out.insert(out.end(), body.begin(), body.end());
  le32(out, total);
}

}  // namespace

Bytes write_pcapng(const std::vector<PcapngRecord>& records) {
  Bytes out;

  // Section Header Block: byte-order magic, version 1.0, unknown section
  // length (-1 per the spec's recommendation for streamed writers).
  {
    Bytes body;
    le32(body, kByteOrderMagic);
    le16(body, 1);  // major
    le16(body, 0);  // minor
    le32(body, 0xffffffff);  // section length (low half of -1)
    le32(body, 0xffffffff);  // section length (high half)
    block(out, kSectionHeaderBlock, body);
  }

  // Interface Description Block: LINKTYPE_RAW, unlimited snaplen, and
  // if_tsresol=6 (microseconds — also the default, stated explicitly).
  {
    Bytes body;
    le16(body, static_cast<std::uint16_t>(kLinkTypeRaw));
    le16(body, 0);  // reserved
    le32(body, 0);  // snaplen: no limit
    const std::uint8_t tsresol = 6;
    option(body, kOptIfTsResol, BytesView(&tsresol, 1));
    option(body, kOptEndOfOpt, {});
    block(out, kInterfaceBlock, body);
  }

  for (const PcapngRecord& r : records) {
    Bytes body;
    le32(body, 0);  // interface id
    le32(body, static_cast<std::uint32_t>(r.at >> 32));  // timestamp high
    le32(body, static_cast<std::uint32_t>(r.at));        // timestamp low
    le32(body, static_cast<std::uint32_t>(r.datagram.size()));  // captured
    le32(body, static_cast<std::uint32_t>(r.datagram.size()));  // original
    body.insert(body.end(), r.datagram.begin(), r.datagram.end());
    pad32(body);
    if (!r.comment.empty()) {
      option(body, kOptComment,
             BytesView(reinterpret_cast<const std::uint8_t*>(r.comment.data()),
                       r.comment.size()));
      option(body, kOptEndOfOpt, {});
    }
    block(out, kEnhancedPacketBlock, body);
  }
  return out;
}

Result<std::vector<PcapngRecord>> read_pcapng(BytesView data) {
  if (data.size() < 12) return Error("pcapng: truncated");
  if (rd32(data, 0) != kSectionHeaderBlock) {
    return Error("pcapng: missing section header block");
  }
  if (data.size() < 20 || rd32(data, 8) != kByteOrderMagic) {
    return Error("pcapng: bad byte-order magic (or big-endian section)");
  }

  std::vector<PcapngRecord> records;
  std::size_t off = 0;
  bool saw_interface = false;
  while (off + 12 <= data.size()) {
    std::uint32_t type = rd32(data, off);
    std::uint32_t total = rd32(data, off + 4);
    if (total < 12 || total % 4 != 0 || off + total > data.size()) {
      return Error("pcapng: bad block length");
    }
    if (rd32(data, off + total - 4) != total) {
      return Error("pcapng: trailing block length mismatch");
    }
    BytesView body = data.subspan(off + 8, total - 12);

    if (type == kInterfaceBlock) {
      if (body.size() < 8) return Error("pcapng: short interface block");
      if (rd16(body, 0) != kLinkTypeRaw) {
        return Error("pcapng: unsupported link type (want LINKTYPE_RAW)");
      }
      saw_interface = true;
    } else if (type == kEnhancedPacketBlock) {
      if (!saw_interface) return Error("pcapng: packet before interface");
      if (body.size() < 20) return Error("pcapng: short packet block");
      std::uint32_t captured = rd32(body, 12);
      std::size_t data_end = 20 + captured;
      if (data_end > body.size()) return Error("pcapng: truncated packet");
      PcapngRecord r;
      r.at = (static_cast<std::uint64_t>(rd32(body, 4)) << 32) | rd32(body, 8);
      r.datagram.assign(
          body.begin() + 20,
          body.begin() + static_cast<std::ptrdiff_t>(data_end));
      // Options follow the 32-bit padded packet data.
      std::size_t opt = data_end + ((4 - data_end % 4) % 4);
      while (opt + 4 <= body.size()) {
        std::uint16_t code = rd16(body, opt);
        std::uint16_t len = rd16(body, opt + 2);
        if (code == kOptEndOfOpt) break;
        if (opt + 4 + len > body.size()) {
          return Error("pcapng: truncated option");
        }
        if (code == kOptComment) {
          r.comment.assign(
              reinterpret_cast<const char*>(body.data()) + opt + 4, len);
        }
        opt += 4 + static_cast<std::size_t>(len);
        opt += (4 - opt % 4) % 4;
      }
      records.push_back(std::move(r));
    }
    // Unknown block types (name resolution, statistics, ...) are skipped.
    off += total;
  }
  if (off != data.size()) return Error("pcapng: trailing garbage");
  return records;
}

}  // namespace liberate::trace
