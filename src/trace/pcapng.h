// pcapng.h — pcapng (pcap next generation) export/import with per-packet
// comments.
//
// The classic pcap format (trace/pcap.h) has no per-packet metadata, so a
// capture can show *what* crossed the wire but not *why*. pcapng Enhanced
// Packet Blocks carry an opt_comment option; the provenance flight recorder
// uses it to annotate every packet with its lineage and verdict ("split of
// 77bb.. by split/tcp-segmentation; rule testbed-http-video matched"), and
// Wireshark renders the comment right in the packet list. Link type is
// LINKTYPE_RAW like the pcap writer: each record is one IPv4 datagram, and
// timestamps are virtual-simulation microseconds.
#pragma once

#include <string>
#include <vector>

#include "netsim/simclock.h"
#include "util/bytes.h"
#include "util/result.h"

namespace liberate::trace {

struct PcapngRecord {
  netsim::TimePoint at = 0;  // microseconds
  Bytes datagram;
  std::string comment;  // empty = no opt_comment emitted
};

/// Serialize records as a pcapng stream: one Section Header Block, one
/// Interface Description Block (LINKTYPE_RAW=101, microsecond resolution),
/// then one Enhanced Packet Block per record.
Bytes write_pcapng(const std::vector<PcapngRecord>& records);

/// Parse a pcapng stream produced by write_pcapng (or any little-endian
/// single-section pcapng whose EPBs reference interface 0); unknown block
/// types are skipped, per the spec.
Result<std::vector<PcapngRecord>> read_pcapng(BytesView data);

}  // namespace liberate::trace
