#include "trace/trace.h"

namespace liberate::trace {

ApplicationTrace ApplicationTrace::bit_inverted() const {
  ApplicationTrace out = *this;
  for (auto& m : out.messages) {
    for (auto& b : m.payload) b = static_cast<std::uint8_t>(~b);
  }
  return out;
}

Bytes serialize_trace(const ApplicationTrace& trace) {
  ByteWriter w;
  w.raw(std::string_view("LTR1"));  // magic + version
  w.u8(trace.transport == Transport::kTcp ? 0 : 1);
  w.u16(trace.server_port);
  w.u16(static_cast<std::uint16_t>(trace.app_name.size()));
  w.raw(trace.app_name);
  w.u32(static_cast<std::uint32_t>(trace.messages.size()));
  for (const auto& m : trace.messages) {
    w.u8(m.sender == Sender::kClient ? 0 : 1);
    w.u32(static_cast<std::uint32_t>(m.gap_us));
    w.u32(static_cast<std::uint32_t>(m.payload.size()));
    w.raw(m.payload);
  }
  return std::move(w).take();
}

ApplicationTrace deserialize_trace(BytesView data) {
  ApplicationTrace out;
  ByteReader r(data);
  auto magic = r.raw(4);
  if (!magic.ok() || to_string(magic.value()) != "LTR1") return out;
  auto transport = r.u8();
  auto port = r.u16();
  auto name_len = r.u16();
  if (!transport.ok() || !port.ok() || !name_len.ok()) return out;
  auto name = r.raw(name_len.value());
  auto count = r.u32();
  if (!name.ok() || !count.ok()) return out;

  ApplicationTrace trace;
  trace.transport =
      transport.value() == 0 ? Transport::kTcp : Transport::kUdp;
  trace.server_port = port.value();
  trace.app_name = to_string(name.value());
  for (std::uint32_t i = 0; i < count.value(); ++i) {
    auto sender = r.u8();
    auto gap = r.u32();
    auto len = r.u32();
    if (!sender.ok() || !gap.ok() || !len.ok()) return out;
    auto payload = r.raw(len.value());
    if (!payload.ok()) return out;
    Message m;
    m.sender = sender.value() == 0 ? Sender::kClient : Sender::kServer;
    m.gap_us = gap.value();
    m.payload.assign(payload.value().begin(), payload.value().end());
    trace.messages.push_back(std::move(m));
  }
  return trace;
}

}  // namespace liberate::trace
