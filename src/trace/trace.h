// trace.h — recorded application traffic.
//
// lib·erate's unit of work is a recorded client/server exchange that can be
// replayed against a replay server (Fig. 3 step 1). An ApplicationTrace is a
// sequence of directional application-layer messages plus metadata; the
// replay machinery (src/core/replay) turns it into real packets.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace liberate::trace {

enum class Sender { kClient, kServer };

struct Message {
  Sender sender = Sender::kClient;
  Bytes payload;
  /// Inter-message gap in microseconds of application time (used for
  /// realistic pacing; 0 = back-to-back).
  std::uint64_t gap_us = 0;
};

enum class Transport { kTcp, kUdp };

struct ApplicationTrace {
  std::string app_name;     // e.g. "AmazonPrimeVideo"
  Transport transport = Transport::kTcp;
  std::uint16_t server_port = 80;
  std::vector<Message> messages;

  std::size_t total_bytes() const {
    std::size_t n = 0;
    for (const auto& m : messages) n += m.payload.size();
    return n;
  }
  std::size_t client_bytes() const {
    std::size_t n = 0;
    for (const auto& m : messages) {
      if (m.sender == Sender::kClient) n += m.payload.size();
    }
    return n;
  }
  std::size_t client_messages() const {
    std::size_t n = 0;
    for (const auto& m : messages) {
      if (m.sender == Sender::kClient) ++n;
    }
    return n;
  }

  /// Return a copy with every payload bit inverted — the deterministic
  /// "control" traffic of the detection phase (§5.1): guaranteed to share no
  /// byte pattern with the original.
  ApplicationTrace bit_inverted() const;
};

/// Serialize/deserialize traces to a simple length-prefixed binary format
/// (record once, replay everywhere — Fig. 3 step 1).
Bytes serialize_trace(const ApplicationTrace& trace);
/// Returns an empty-name trace on malformed input.
ApplicationTrace deserialize_trace(BytesView data);

}  // namespace liberate::trace
