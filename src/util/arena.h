// arena.h — chunked bump allocator for round-scoped packet buffers.
//
// Wire captures (the replay server's raw-received log, path taps) record one
// buffer per packet per round; with individual std::vector allocations the
// malloc/free pairs were a visible slice of round profiles. An Arena hands
// out slices from large reusable chunks instead: allocation is a pointer
// bump, and reset() recycles every chunk for the next round without
// returning memory to the allocator.
//
// Lifetime rules:
//   - Slices are stable until reset(): growing the arena adds chunks, it
//     never moves existing ones, so BytesView slices survive later
//     allocations (unlike views into a growing std::vector).
//   - reset() invalidates every outstanding slice at once. Under
//     AddressSanitizer the recycled memory is poisoned, so a stale view
//     dereference is a hard ASan error rather than silent garbage; the
//     generation() counter provides the same guard structurally for code
//     that wants to validate slices without ASan (Arena::Slice).
//   - Single-threaded by design, like the event loop it serves.
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "util/bytes.h"

#if defined(__SANITIZE_ADDRESS__)
#define LIBERATE_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LIBERATE_ARENA_ASAN 1
#endif
#endif

#ifdef LIBERATE_ARENA_ASAN
extern "C" {
void __asan_poison_memory_region(void const volatile* addr, std::size_t size);
void __asan_unpoison_memory_region(void const volatile* addr,
                                   std::size_t size);
int __asan_address_is_poisoned(void const volatile* addr);
}
#endif

namespace liberate {

class Arena {
 public:
  static constexpr std::size_t kDefaultChunkBytes = 64 * 1024;

  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `size` bytes (8-byte aligned; ASan poison granularity).
  /// Zero-size allocations return a valid, unique-enough pointer into the
  /// arena without consuming space.
  std::uint8_t* allocate(std::size_t size) {
    const std::size_t need = (size + 7) & ~std::size_t{7};
    if (chunks_.empty() || offset_ + need > chunks_[active_].size) {
      advance_chunk(need);
    }
    std::uint8_t* p = chunks_[active_].data.get() + offset_;
    offset_ += need;
    used_ += need;
    if (used_ > high_water_) high_water_ = used_;
    unpoison(p, need);
    return p;
  }

  /// Copy `src` into the arena and return the arena-backed view. The view
  /// stays valid until the next reset() even as the arena grows.
  BytesView copy(BytesView src) {
    if (src.empty()) return {};
    std::uint8_t* p = allocate(src.size());
    std::memcpy(p, src.data(), src.size());
    return BytesView(p, src.size());
  }

  /// A generation-stamped slice: structurally detects use-after-reset even
  /// without ASan. get() returns an empty view once the arena has been
  /// recycled out from under the slice.
  struct Slice {
    BytesView view{};
    std::uint64_t generation = 0;

    bool valid(const Arena& a) const { return generation == a.generation(); }
    BytesView get(const Arena& a) const {
      return valid(a) ? view : BytesView{};
    }
  };

  Slice copy_slice(BytesView src) { return Slice{copy(src), generation_}; }

  /// Recycle every chunk. O(chunks), frees nothing: the next round's
  /// allocations reuse the same memory. All outstanding slices become
  /// invalid (poisoned under ASan, generation-mismatched otherwise).
  void reset() {
    for (const Chunk& c : chunks_) poison(c.data.get(), c.size);
    active_ = 0;
    offset_ = 0;
    used_ = 0;
    ++generation_;
  }

  /// Like reset(), but also returns all memory beyond the first chunk to the
  /// allocator — for callers that just saw a pathological burst.
  void reset_and_shrink() {
    reset();
    if (chunks_.size() > 1) chunks_.resize(1);
    reserved_ = chunks_.empty() ? 0 : chunks_[0].size;
  }

  std::uint64_t generation() const { return generation_; }
  std::size_t bytes_in_use() const { return used_; }
  std::size_t bytes_reserved() const { return reserved_; }
  std::size_t high_water() const { return high_water_; }
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
  };

  void advance_chunk(std::size_t need) {
    std::size_t next = chunks_.empty() ? 0 : active_ + 1;
    // Reuse the next recycled chunk when it fits; otherwise splice in a
    // fresh one (oversize requests get a dedicated right-sized chunk).
    if (next >= chunks_.size() || chunks_[next].size < need) {
      Chunk c;
      c.size = need > chunk_bytes_ ? need : chunk_bytes_;
      c.data = std::make_unique<std::uint8_t[]>(c.size);
      reserved_ += c.size;
      poison(c.data.get(), c.size);
      chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(next),
                     std::move(c));
    }
    active_ = next;
    offset_ = 0;
  }

  static void poison(const std::uint8_t* p, std::size_t n) {
#ifdef LIBERATE_ARENA_ASAN
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }
  static void unpoison(const std::uint8_t* p, std::size_t n) {
#ifdef LIBERATE_ARENA_ASAN
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;
  std::size_t offset_ = 0;   // within chunks_[active_]
  std::size_t used_ = 0;     // since last reset
  std::size_t reserved_ = 0; // total chunk bytes held
  std::size_t high_water_ = 0;
  std::uint64_t generation_ = 1;
};

}  // namespace liberate
