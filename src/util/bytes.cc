#include "util/bytes.h"

namespace liberate {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
  return std::string(b.begin(), b.end());
}

}  // namespace liberate
