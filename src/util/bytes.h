// bytes.h — big-endian (network order) byte stream reader/writer.
//
// All wire formats in this library (IPv4, TCP, UDP, TLS, STUN) are big-endian;
// these two classes are the single point where host/network byte order is
// handled so protocol codecs never touch htons/ntohl directly.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace liberate {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Convert between Bytes and std::string (payloads are often ASCII protocols).
Bytes to_bytes(std::string_view s);
std::string to_string(BytesView b);

/// ByteWriter appends big-endian integers and raw spans to a growable buffer.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u24(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
  }
  void raw(BytesView data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void raw(std::string_view data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }
  void fill(std::uint8_t value, std::size_t count) {
    buf_.insert(buf_.end(), count, value);
  }

  /// Patch a previously written big-endian u16 at `offset` (e.g. a length or
  /// checksum field whose value is only known after the body is serialized).
  void patch_u16(std::size_t offset, std::uint16_t v) {
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// ByteReader consumes big-endian integers and raw spans from a fixed view.
/// Reads past the end return an Error instead of UB — truncated packets are
/// routine input here.
class ByteReader {
 public:
  explicit ByteReader(BytesView data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool empty() const { return remaining() == 0; }

  Result<std::uint8_t> u8() {
    if (remaining() < 1) return Error("ByteReader: u8 past end");
    return data_[pos_++];
  }
  Result<std::uint16_t> u16() {
    if (remaining() < 2) return Error("ByteReader: u16 past end");
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> u24() {
    if (remaining() < 3) return Error("ByteReader: u24 past end");
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8) |
                      data_[pos_ + 2];
    pos_ += 3;
    return v;
  }
  Result<std::uint32_t> u32() {
    if (remaining() < 4) return Error("ByteReader: u32 past end");
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 24) |
                      (static_cast<std::uint32_t>(data_[pos_ + 1]) << 16) |
                      (static_cast<std::uint32_t>(data_[pos_ + 2]) << 8) |
                      data_[pos_ + 3];
    pos_ += 4;
    return v;
  }
  Result<BytesView> raw(std::size_t n) {
    if (remaining() < n) return Error("ByteReader: raw past end");
    BytesView v = data_.subspan(pos_, n);
    pos_ += n;
    return v;
  }
  Status skip(std::size_t n) {
    if (remaining() < n) return Error("ByteReader: skip past end");
    pos_ += n;
    return Status::success();
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace liberate
