// digest.h — streaming 128-bit content fingerprints.
//
// The round scheduler keys its memoization cache and derives per-round RNG
// seeds from a fingerprint of everything that determines a round's outcome
// (trace bytes, mutation parameters, classifier profile, environment), and
// the provenance recorder derives packet lineage ids from serialized
// datagram bytes. Fingerprints are therefore on the hot path: every round
// digests its full trace and every built packet digests its wire bytes.
//
// The core absorbs 16-byte blocks with two multiply-rotate lanes (four
// multiplies per block, xxhash-style rounds) instead of per-byte hashing, so
// digesting runs at a fraction of a nanosecond per byte. Byte-order stable:
// words are composed from bytes little-endian explicitly, never via memcpy
// of host integers. Streaming-safe: update("ab") + update("c") equals
// update("abc") — callers fold incrementally.
//
// Fingerprints are internal identifiers (cache keys, seed derivation,
// provenance ids). They are stable within a build but carry no cross-version
// stability promise; nothing persists them across releases (the deploy
// fingerprint cache regenerates on miss).
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace liberate {

struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Fingerprint& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }

  struct Hasher {
    std::size_t operator()(const Fingerprint& f) const {
      return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
};

class Digest {
 public:
  Digest() = default;

  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    total_ += size;
    // Top up a partial block first.
    if (buflen_ != 0) {
      const std::size_t space = kBlock - buflen_;
      const std::size_t take = size < space ? size : space;
      __builtin_memcpy(buf_ + buflen_, p, take);
      buflen_ += static_cast<std::uint32_t>(take);
      p += take;
      size -= take;
      if (buflen_ == kBlock) {
        absorb(buf_);
        buflen_ = 0;
      }
    }
    // Whole blocks straight from the input.
    while (size >= kBlock) {
      absorb(p);
      p += kBlock;
      size -= kBlock;
    }
    // Stash the tail (buflen_ is 0 here unless size is already 0).
    if (size != 0) {
      __builtin_memcpy(buf_ + buflen_, p, size);
      buflen_ += static_cast<std::uint32_t>(size);
    }
  }

  void update(BytesView bytes) { update(bytes.data(), bytes.size()); }
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Integers are folded little-endian, width-tagged so that e.g. the
  /// sequences (1, 2) and (0x0201) hash differently.
  void update_u64(std::uint64_t v) {
    std::uint8_t buf[9] = {8};
    for (int i = 0; i < 8; ++i) buf[i + 1] = static_cast<std::uint8_t>(v >> (8 * i));
    update(buf, sizeof(buf));
  }
  void update_u32(std::uint32_t v) { update_u64(0x4'0000'0000ULL | v); }
  void update_u16(std::uint16_t v) { update_u64(0x2'0000'0000ULL | v); }
  void update_u8(std::uint8_t v) { update_u64(0x1'0000'0000ULL | v); }
  void update_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    update_u64(bits);
  }
  /// Length-prefixed, so concatenation boundaries are unambiguous.
  void update_sized(BytesView bytes) {
    update_u64(bytes.size());
    update(bytes);
  }
  void update_sized(const std::string& s) {
    update_u64(s.size());
    update(s);
  }

  Fingerprint finish() const {
    std::uint64_t a = lo_;
    std::uint64_t b = hi_;
    if (buflen_ != 0) {
      // Absorb the zero-padded tail; total_ below disambiguates lengths
      // (trailing-zero bytes vs. absent bytes reach different states).
      std::uint8_t tmp[kBlock] = {0};
      for (std::uint32_t i = 0; i < buflen_; ++i) tmp[i] = buf_[i];
      const std::uint64_t w0 = load_le(tmp);
      const std::uint64_t w1 = load_le(tmp + 8);
      a = round_(round_(a, w0, kMul1, kMul2), w1, kMul3, kMul1);
      b = round_(round_(b, w1, kMul2, kMul3), w0, kMul1, kMul2);
    }
    a ^= total_;
    b ^= rotl(total_, 32) ^ kMul3;
    // Cross-lane avalanche: each output half depends on both lanes.
    a = avalanche(a ^ rotl(b, 29));
    b = avalanche(b ^ rotl(a, 31));
    return Fingerprint{a, b};
  }

 private:
  static constexpr std::size_t kBlock = 16;
  static constexpr std::uint64_t kMul1 = 0x9E3779B185EBCA87ULL;
  static constexpr std::uint64_t kMul2 = 0xC2B2AE3D27D4EB4FULL;
  static constexpr std::uint64_t kMul3 = 0x165667B19E3779F9ULL;

  static std::uint64_t rotl(std::uint64_t x, int r) {
    return (x << r) | (x >> (64 - r));
  }

  /// Explicit little-endian composition (endianness-stable; compiles to a
  /// single load + bswap-free sequence on LE hosts).
  static std::uint64_t load_le(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
  }

  static std::uint64_t round_(std::uint64_t acc, std::uint64_t w,
                              std::uint64_t m1, std::uint64_t m2) {
    return rotl(acc + w * m1, 31) * m2;
  }

  static std::uint64_t avalanche(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
  }

  void absorb(const std::uint8_t* p) {
    const std::uint64_t w0 = load_le(p);
    const std::uint64_t w1 = load_le(p + 8);
    lo_ = round_(round_(lo_, w0, kMul1, kMul2), w1, kMul3, kMul1);
    hi_ = round_(round_(hi_, w1, kMul2, kMul3), w0, kMul1, kMul2);
  }

  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // distinct lane seeds
  std::uint64_t hi_ = 0x84222325cbf29ce4ULL;
  std::uint8_t buf_[kBlock] = {};
  std::uint32_t buflen_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace liberate
