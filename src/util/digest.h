// digest.h — streaming 128-bit content fingerprints.
//
// The round scheduler keys its memoization cache and derives per-round RNG
// seeds from a fingerprint of everything that determines a round's outcome
// (trace bytes, mutation parameters, classifier profile, environment). Two
// independent FNV-1a lanes give 128 bits — far beyond what any realistic
// probe population can collide — while staying dependency-free and
// byte-order stable.
#pragma once

#include <cstdint>
#include <string>

#include "util/bytes.h"

namespace liberate {

struct Fingerprint {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  bool operator==(const Fingerprint& o) const {
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const Fingerprint& o) const { return !(*this == o); }

  struct Hasher {
    std::size_t operator()(const Fingerprint& f) const {
      return static_cast<std::size_t>(f.lo ^ (f.hi * 0x9e3779b97f4a7c15ULL));
    }
  };
};

class Digest {
 public:
  Digest() = default;

  void update(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      lo_ = (lo_ ^ p[i]) * 0x100000001b3ULL;        // FNV-1a 64
      hi_ = (hi_ ^ p[i]) * 0x00000100000001b3ULL ^  // second lane, offset
            0x9e3779b97f4a7c15ULL;
    }
  }

  void update(BytesView bytes) { update(bytes.data(), bytes.size()); }
  void update(const std::string& s) { update(s.data(), s.size()); }

  /// Integers are folded in little-endian, width-tagged so that e.g. the
  /// sequences (1, 2) and (0x0201) hash differently.
  void update_u64(std::uint64_t v) {
    std::uint8_t buf[9] = {8};
    for (int i = 0; i < 8; ++i) buf[i + 1] = static_cast<std::uint8_t>(v >> (8 * i));
    update(buf, sizeof(buf));
  }
  void update_u32(std::uint32_t v) { update_u64(0x4'0000'0000ULL | v); }
  void update_u16(std::uint16_t v) { update_u64(0x2'0000'0000ULL | v); }
  void update_u8(std::uint8_t v) { update_u64(0x1'0000'0000ULL | v); }
  void update_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    update_u64(bits);
  }
  /// Length-prefixed, so concatenation boundaries are unambiguous.
  void update_sized(BytesView bytes) {
    update_u64(bytes.size());
    update(bytes);
  }
  void update_sized(const std::string& s) {
    update_u64(s.size());
    update(s);
  }

  Fingerprint finish() const { return Fingerprint{lo_, hi_}; }

 private:
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;  // FNV offset basis
  std::uint64_t hi_ = 0x84222325cbf29ce4ULL;
};

}  // namespace liberate
