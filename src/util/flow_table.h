// flow_table.h — open-addressing LRU hash table for per-flow state.
//
// The evasion shim used to keep flow state in a std::map plus a std::list
// for LRU order plus a second map from key to list iterator: three node
// allocations and three pointer chases per packet. Fine at a thousand
// flows, dominant at a million. This table replaces all three structures:
//
//   * open addressing with linear probing over a power-of-two slot array —
//     a probe is a contiguous scan of the key column, no nodes, no chasing;
//   * tombstone-free deletion: erase backward-shifts the displaced tail of
//     the probe run into the hole, so lookups never step over dead slots
//     and the load factor always reflects live entries;
//   * struct-of-arrays layout (util/soa.h): keys, values, occupancy bytes,
//     and LRU links are parallel columns, so probing touches only keys and
//     the LRU sweep touches only links;
//   * intrusive LRU: 32-bit prev/next slot indices, head = most recently
//     touched, tail = eviction victim — no allocation per touch, and the
//     links are re-pointed whenever backward-shift or rehash relocates an
//     entry;
//   * erased slots are ASan-poisoned (the arena.h idiom), so dereferencing
//     a stale pointer after erase/evict/rehash is a hard sanitizer error
//     instead of silent garbage.
//
// Key and Value must be trivially copyable: entries relocate on
// backward-shift and rehash. Pointers returned by find()/touch() are
// invalidated by any subsequent mutating call — the same lifetime contract
// as Arena slices.
//
// Iteration (for_each_lru) walks MRU -> LRU and is a pure function of the
// operation history: no iteration-order dependence on hash seeding or
// allocator addresses, which is what lets snapshot-delta consumers rely on
// it being identical across worker counts and match backends.
#pragma once

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/soa.h"

#if defined(__SANITIZE_ADDRESS__)
#define LIBERATE_FLOW_TABLE_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define LIBERATE_FLOW_TABLE_ASAN 1
#endif
#endif

#ifdef LIBERATE_FLOW_TABLE_ASAN
extern "C" {
void __asan_poison_memory_region(void const volatile* addr, std::size_t size);
void __asan_unpoison_memory_region(void const volatile* addr,
                                   std::size_t size);
}
#endif

namespace liberate {

template <typename Key, typename Value, typename Hash>
class FlowTable {
  static_assert(std::is_trivially_copyable_v<Key>,
                "entries relocate by memcpy on backward-shift and rehash");
  static_assert(std::is_trivially_copyable_v<Value>,
                "entries relocate by memcpy on backward-shift and rehash");

 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::size_t kNpos = static_cast<std::size_t>(-1);
  /// True when erased slots are poisoned (build has ASan).
  static constexpr bool kPoisonsErasedSlots =
#ifdef LIBERATE_FLOW_TABLE_ASAN
      true;
#else
      false;
#endif

  explicit FlowTable(std::size_t min_capacity = 16) {
    rehash_to(ceil_pow2(min_capacity < 16 ? 16 : min_capacity));
  }
  ~FlowTable() { unpoison_all(); }

  FlowTable(FlowTable&& o) noexcept { *this = std::move(o); }
  FlowTable& operator=(FlowTable&& o) noexcept {
    unpoison_all();
    slots_.swap(o.slots_);
    mask_ = o.mask_;
    size_ = o.size_;
    head_ = o.head_;
    tail_ = o.tail_;
    max_load_ = o.max_load_;
    o.slots_.clear();
    o.size_ = 0;
    o.head_ = o.tail_ = kNil;
    return *this;
  }
  FlowTable(const FlowTable&) = delete;
  FlowTable& operator=(const FlowTable&) = delete;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return mask_ + 1; }
  double load_factor() const {
    return static_cast<double>(size_) / static_cast<double>(capacity());
  }
  /// Growth threshold; clamped to [0.25, 0.95] so probe runs stay bounded.
  void set_max_load_factor(double f) {
    max_load_ = f < 0.25 ? 0.25 : (f > 0.95 ? 0.95 : f);
  }
  void reserve(std::size_t n) {
    const std::size_t want =
        ceil_pow2(static_cast<std::size_t>(static_cast<double>(n) / max_load_) +
                  1);
    if (want > capacity()) rehash_to(want);
  }

  /// Lookup without touching LRU order.
  Value* find(const Key& k) {
    const std::size_t i = find_slot(k);
    return i == kNpos ? nullptr : &slots_.template col<1>()[i];
  }
  const Value* find(const Key& k) const {
    const std::size_t i = find_slot(k);
    return i == kNpos ? nullptr : &slots_.template col<1>()[i];
  }

  /// Insert-or-find, marking the entry most recently used. Returns the
  /// value and whether it was newly inserted (value-initialized).
  std::pair<Value*, bool> touch(const Key& k) {
    std::size_t i = probe(k);
    if (occupied(i)) {
      move_to_front(static_cast<std::uint32_t>(i));
      return {&slots_.template col<1>()[i], false};
    }
    if (size_ + 1 >
        static_cast<std::size_t>(max_load_ * static_cast<double>(capacity()))) {
      rehash_to(capacity() * 2);
      i = probe(k);  // empty slot in the grown table
    }
    insert_at(static_cast<std::uint32_t>(i), k);
    return {&slots_.template col<1>()[i], true};
  }

  bool erase(const Key& k) {
    const std::size_t i = find_slot(k);
    if (i == kNpos) return false;
    erase_slot(static_cast<std::uint32_t>(i));
    return true;
  }

  /// The coldest entry's key (nullptr when empty). Only valid until the
  /// next mutating call.
  const Key* lru_key() const {
    return tail_ == kNil ? nullptr : &slots_.template col<0>()[tail_];
  }

  /// Erase the least-recently-used entry; optionally reports its key.
  bool evict_lru(Key* evicted = nullptr) {
    if (tail_ == kNil) return false;
    const Key victim = slots_.template col<0>()[tail_];  // copy: slot moves
    if (evicted != nullptr) *evicted = victim;
    erase_slot(tail_);
    return true;
  }

  /// Walk entries MRU -> LRU. `fn(const Key&, Value&)`; the callback must
  /// not mutate the table. Order is deterministic given the op history.
  template <typename Fn>
  void for_each_lru(Fn&& fn) {
    for (std::uint32_t i = head_; i != kNil;
         i = slots_.template col<4>()[i]) {
      fn(static_cast<const Key&>(slots_.template col<0>()[i]),
         slots_.template col<1>()[i]);
    }
  }
  template <typename Fn>
  void for_each_lru(Fn&& fn) const {
    for (std::uint32_t i = head_; i != kNil;
         i = slots_.template col<4>()[i]) {
      fn(slots_.template col<0>()[i], slots_.template col<1>()[i]);
    }
  }

  void clear() {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (slots_.template col<2>()[i]) {
        slots_.template col<2>()[i] = 0;
        poison_slot(i);
      }
    }
    size_ = 0;
    head_ = tail_ = kNil;
  }

  // Test hooks -------------------------------------------------------------
  /// Slot currently holding `k` (kNpos when absent).
  std::size_t slot_of_for_test(const Key& k) const { return find_slot(k); }
  /// Raw address of a slot's key storage — for ASan poison probes only.
  const void* key_address_for_test(std::size_t slot) const {
    return &slots_.template col<0>()[slot];
  }

 private:
  // Columns: 0 = key, 1 = value, 2 = occupied byte, 3 = lru_prev, 4 = lru_next.
  using Slots =
      SoaColumns<Key, Value, std::uint8_t, std::uint32_t, std::uint32_t>;

  static std::size_t ceil_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  /// splitmix64 finalizer on top of the user hash: linear probing needs
  /// well-spread low bits, which e.g. port-derived hashes don't guarantee.
  std::size_t home(const Key& k) const {
    std::uint64_t x = static_cast<std::uint64_t>(Hash{}(k));
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::size_t>(x ^ (x >> 31)) & mask_;
  }

  bool occupied(std::size_t i) const {
    return slots_.template col<2>()[i] != 0;
  }

  /// First slot holding `k`, or the empty slot that terminates its run.
  std::size_t probe(const Key& k) const {
    std::size_t i = home(k);
    const auto& keys = slots_.template col<0>();
    while (occupied(i)) {
      if (keys[i] == k) return i;
      i = (i + 1) & mask_;
    }
    return i;
  }

  std::size_t find_slot(const Key& k) const {
    const std::size_t i = probe(k);
    return occupied(i) ? i : kNpos;
  }

  void poison_slot(std::size_t i) {
#ifdef LIBERATE_FLOW_TABLE_ASAN
    __asan_poison_memory_region(&slots_.template col<0>()[i], sizeof(Key));
    __asan_poison_memory_region(&slots_.template col<1>()[i], sizeof(Value));
#else
    (void)i;
#endif
  }
  void unpoison_slot(std::size_t i) {
#ifdef LIBERATE_FLOW_TABLE_ASAN
    __asan_unpoison_memory_region(&slots_.template col<0>()[i], sizeof(Key));
    __asan_unpoison_memory_region(&slots_.template col<1>()[i], sizeof(Value));
#else
    (void)i;
#endif
  }
  void unpoison_all() {
#ifdef LIBERATE_FLOW_TABLE_ASAN
    if (slots_.size() == 0) return;
    __asan_unpoison_memory_region(slots_.template col<0>().data(),
                                  slots_.size() * sizeof(Key));
    __asan_unpoison_memory_region(slots_.template col<1>().data(),
                                  slots_.size() * sizeof(Value));
#endif
  }

  void link_front(std::uint32_t i) {
    slots_.template col<3>()[i] = kNil;
    slots_.template col<4>()[i] = head_;
    if (head_ != kNil) slots_.template col<3>()[head_] = i;
    head_ = i;
    if (tail_ == kNil) tail_ = i;
  }

  void unlink(std::uint32_t i) {
    const std::uint32_t p = slots_.template col<3>()[i];
    const std::uint32_t n = slots_.template col<4>()[i];
    if (p != kNil) slots_.template col<4>()[p] = n; else head_ = n;
    if (n != kNil) slots_.template col<3>()[n] = p; else tail_ = p;
  }

  void move_to_front(std::uint32_t i) {
    if (head_ == i) return;
    unlink(i);
    link_front(i);
  }

  /// Entry relocated from slot `from` to slot `to` (backward-shift/rehash):
  /// re-point its LRU neighbors at the new slot.
  void relink(std::uint32_t from, std::uint32_t to) {
    const std::uint32_t p = slots_.template col<3>()[from];
    const std::uint32_t n = slots_.template col<4>()[from];
    slots_.template col<3>()[to] = p;
    slots_.template col<4>()[to] = n;
    if (p != kNil) slots_.template col<4>()[p] = to; else head_ = to;
    if (n != kNil) slots_.template col<3>()[n] = to; else tail_ = to;
  }

  void insert_at(std::uint32_t i, const Key& k) {
    unpoison_slot(i);
    slots_.template col<0>()[i] = k;
    slots_.template col<1>()[i] = Value{};
    slots_.template col<2>()[i] = 1;
    link_front(i);
    ++size_;
  }

  void erase_slot(std::uint32_t i) {
    unlink(i);
    // Backward-shift: walk the probe run after the hole; any entry whose
    // home lies at or before the hole (cyclically) moves back into it. No
    // tombstone is ever written.
    std::size_t hole = i;
    std::size_t j = i;
    auto& keys = slots_.template col<0>();
    auto& values = slots_.template col<1>();
    while (true) {
      j = (j + 1) & mask_;
      if (!occupied(j)) break;
      const std::size_t h = home(keys[j]);
      // `hole` is reusable by the entry at j iff it is not between j's home
      // and j (i.e. moving j to hole does not skip its own run).
      if (((j - h) & mask_) >= ((j - hole) & mask_)) {
        unpoison_slot(hole);
        keys[hole] = keys[j];
        values[hole] = values[j];
        slots_.template col<2>()[hole] = 1;
        relink(static_cast<std::uint32_t>(j),
               static_cast<std::uint32_t>(hole));
        slots_.template col<2>()[j] = 0;
        hole = j;
      }
    }
    slots_.template col<2>()[hole] = 0;
    poison_slot(hole);
    --size_;
  }

  void rehash_to(std::size_t new_cap) {
    Slots fresh(new_cap);
    const std::size_t old_cap = slots_.size();
    const std::size_t old_mask = mask_;
    Slots old;
    old.swap(slots_);
    slots_.swap(fresh);
    mask_ = new_cap - 1;
    const std::uint32_t old_head = head_;
    head_ = tail_ = kNil;
    size_ = 0;
#ifdef LIBERATE_FLOW_TABLE_ASAN
    // Fresh table starts fully poisoned; slots unpoison on insert.
    if (new_cap != 0) {
      __asan_poison_memory_region(slots_.template col<0>().data(),
                                  new_cap * sizeof(Key));
      __asan_poison_memory_region(slots_.template col<1>().data(),
                                  new_cap * sizeof(Value));
    }
#endif
    if (old_cap == 0) return;
    // Reinsert LRU -> MRU so link_front reproduces the exact recency order.
    // First collect the order by walking MRU -> LRU, then replay reversed.
    std::vector<std::uint32_t> order;
    order.reserve(old_cap);
    for (std::uint32_t s = old_head; s != kNil;
         s = old.template col<4>()[s]) {
      order.push_back(s);
    }
    (void)old_mask;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const Key& k = old.template col<0>()[*it];
      std::size_t slot = probe(k);
      insert_at(static_cast<std::uint32_t>(slot), k);
      slots_.template col<1>()[slot] = old.template col<1>()[*it];
    }
#ifdef LIBERATE_FLOW_TABLE_ASAN
    // `old` is about to be destroyed; hand its storage back unpoisoned.
    __asan_unpoison_memory_region(old.template col<0>().data(),
                                  old_cap * sizeof(Key));
    __asan_unpoison_memory_region(old.template col<1>().data(),
                                  old_cap * sizeof(Value));
#endif
  }

  Slots slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint32_t head_ = kNil;
  std::uint32_t tail_ = kNil;
  double max_load_ = 0.875;
};

}  // namespace liberate
