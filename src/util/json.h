// json.h — minimal streaming JSON writer (no external deps).
//
// Used by the observability exporters (obs/snapshot.h), the analysis-report
// JSON in core/report_io, and the bench BENCH_<name>.json emitters. Output
// is deterministic for deterministic inputs: doubles are formatted with a
// fixed %.10g, object keys are written in caller order, and there is no
// locale dependence.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

namespace liberate {

class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separate();
    out_ += '{';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_object() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& begin_array() {
    separate();
    out_ += '[';
    stack_.push_back(true);
    return *this;
  }
  JsonWriter& end_array() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name) {
    separate();
    append_escaped(name);
    out_ += ':';
    pending_key_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view s) {
    separate();
    append_escaped(s);
    return *this;
  }
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b) {
    separate();
    out_ += b ? "true" : "false";
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    char buf[32];
    // NaN/inf are not valid JSON; degrade to null rather than emit garbage.
    if (d != d || d > 1e308 || d < -1e308) {
      out_ += "null";
    } else {
      std::snprintf(buf, sizeof(buf), "%.10g", d);
      out_ += buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  // No std::size_t overload: on LP64 it IS std::uint64_t.
  /// Splices pre-rendered JSON (a document produced by another JsonWriter)
  /// in as one value. The caller owns its validity.
  JsonWriter& raw_value(std::string_view json) {
    separate();
    out_ += json;
    return *this;
  }
  JsonWriter& null() {
    separate();
    out_ += "null";
    return *this;
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  // Emit the separating comma when this token follows a sibling value.
  void separate() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back()) {
      stack_.back() = false;
    } else {
      out_ += ',';
    }
  }

  void append_escaped(std::string_view s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ += "\\\"";
          break;
        case '\\':
          out_ += "\\\\";
          break;
        case '\n':
          out_ += "\\n";
          break;
        case '\r':
          out_ += "\\r";
          break;
        case '\t':
          out_ += "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> stack_;  // per open container: "next token is the first"
  bool pending_key_ = false;
};

}  // namespace liberate
