// json_parse.h — minimal recursive-descent JSON parser (no external deps).
//
// Counterpart of json.h's JsonWriter, used by the deployment control plane
// to reload persisted classifier-fingerprint caches. Scope is deliberately
// small: the full JSON value grammar, doubles for all numbers (callers that
// need 64-bit-exact integers store them as hex strings), order-preserving
// objects, and a recursion-depth cap so hostile inputs cannot blow the
// stack. Malformed input yields std::nullopt, never UB.
#pragma once

#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace liberate {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;

  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  /// Members in document order (duplicate keys kept; find() returns the
  /// first, matching common parser behaviour).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return kind == Kind::kNull; }
  bool is_bool() const { return kind == Kind::kBool; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_object() const { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

namespace json_detail {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos < text.size()) {
      char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }
  bool eat(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool eat_word(std::string_view w) {
    if (text.substr(pos, w.size()) == w) {
      pos += w.size();
      return true;
    }
    return false;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(unsigned& out) {
    if (pos + 4 > text.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text[pos + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') {
        out |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        out |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        out |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos += 4;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return false;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            unsigned cp;
            if (!parse_hex4(cp)) return false;
            // Surrogate pairs are outside this parser's scope (the writer
            // never emits them); map them to U+FFFD.
            if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
            append_utf8(out, cp);
            break;
          }
          default: return false;
        }
      } else {
        out += c;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(double& out) {
    std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    if (pos == start) return false;
    std::string buf(text.substr(start, pos - start));
    char* end = nullptr;
    out = std::strtod(buf.c_str(), &end);
    return end == buf.c_str() + buf.size();
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) return false;
    skip_ws();
    if (pos >= text.size()) return false;
    char c = text[pos];
    if (c == '{') {
      ++pos;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        JsonValue member;
        if (!parse_value(member, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(member));
        skip_ws();
        if (eat(',')) continue;
        return eat('}');
      }
    }
    if (c == '[') {
      ++pos;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      while (true) {
        JsonValue element;
        if (!parse_value(element, depth + 1)) return false;
        out.array.push_back(std::move(element));
        skip_ws();
        if (eat(',')) continue;
        return eat(']');
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (eat_word("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (eat_word("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (eat_word("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    out.kind = JsonValue::Kind::kNumber;
    return parse_number(out.number);
  }
};

}  // namespace json_detail

/// Parse a complete JSON document; trailing garbage is an error.
inline std::optional<JsonValue> parse_json(std::string_view text) {
  json_detail::Parser p{text};
  JsonValue v;
  if (!p.parse_value(v, 0)) return std::nullopt;
  p.skip_ws();
  if (p.pos != text.size()) return std::nullopt;
  return v;
}

}  // namespace liberate
