// lru_cache.h — bounded least-recently-used map.
//
// The probe-result memoization cache must not grow without bound under
// million-probe workloads, so every cache in the project goes through this
// capacity-bounded LRU. Not internally synchronized: wrap it in a mutex when
// shared between threads (core::ProbeCache does).
#pragma once

#include <cstddef>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "obs/obs.h"

namespace liberate {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruCache {
 public:
  /// capacity == 0 disables storage entirely (every get misses).
  explicit LruCache(std::size_t capacity) : capacity_(capacity) {}

  /// Look up and mark as most recently used.
  std::optional<Value> get(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return std::nullopt;
    order_.splice(order_.begin(), order_, it->second);
    return it->second->second;
  }

  /// Insert or overwrite; evicts the least recently used entry when full.
  void put(const Key& key, Value value) {
    if (capacity_ == 0) return;
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return;
    }
    if (order_.size() >= capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      LIBERATE_COUNTER_ADD("util.lru_evictions", 1);
    }
    order_.emplace_front(key, std::move(value));
    index_[key] = order_.begin();
  }

  bool contains(const Key& key) const { return index_.count(key) > 0; }
  std::size_t size() const { return order_.size(); }
  std::size_t capacity() const { return capacity_; }
  void clear() {
    order_.clear();
    index_.clear();
  }

 private:
  std::size_t capacity_;
  std::list<std::pair<Key, Value>> order_;  // front = most recent
  std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                     Hash>
      index_;
};

}  // namespace liberate
