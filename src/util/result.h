// result.h — minimal expected-style result type (C++20; std::expected is C++23).
//
// Parse and protocol functions across the library return Result<T> instead of
// throwing: malformed packets are the *normal* input of a DPI evasion tool, so
// failure must be cheap, explicit and carry a reason string for diagnostics.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace liberate {

/// Error carries a human-readable reason. Kept deliberately small: call sites
/// that need machine-readable classification use dedicated enums (see
/// netsim/validation.h) rather than parsing messages.
struct Error {
  std::string message;

  explicit Error(std::string msg) : message(std::move(msg)) {}
};

/// Result<T> — either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}
  Result(Error error) : state_(std::in_place_index<1>, std::move(error)) {}

  bool ok() const { return state_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(state_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<0>(std::move(state_));
  }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(state_);
  }

  /// value() with a fallback, for call sites where failure has a benign default.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> state_;
};

/// Result<void> specialization-ish helper: success/failure with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // success
  Status(Error error) : error_(std::move(error)), failed_(true) {}

  bool ok() const { return !failed_; }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(failed_);
    return error_;
  }

  static Status success() { return Status(); }

 private:
  Error error_{std::string()};
  bool failed_ = false;
};

}  // namespace liberate
