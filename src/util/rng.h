// rng.h — deterministic PRNG (xoshiro256**) for reproducible experiments.
//
// Every stochastic element of the simulation (payload randomization, jitter,
// trace generation, diurnal noise) draws from an explicitly seeded Rng so that
// tests and benchmark tables are bit-for-bit reproducible run to run.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace liberate {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding, the canonical way to initialize xoshiro state.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  bool chance(double p) { return uniform() < p; }

  std::uint8_t byte() { return static_cast<std::uint8_t>(next()); }

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    for (auto& b : out) b = byte();
    return out;
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace liberate
