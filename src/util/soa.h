// soa.h — struct-of-arrays column storage for hot-loop state.
//
// A wave loop that walks an array-of-structs drags every field of every
// entry through the cache even when it only reads one flag per flow. At a
// million flows that is the difference between streaming a few MB of the
// column it needs and thrashing hundreds of MB of slots it doesn't.
// SoaColumns keeps one std::vector per field, always resized in lockstep,
// so loops index exactly the columns they touch and the prefetcher sees
// contiguous runs.
//
// Used by util/flow_table.h (key / value / metadata / LRU-link columns) and
// the deploy packet-level wave driver (per-flow timestamps, byte counts,
// verdict flags).
#pragma once

#include <cstddef>
#include <tuple>
#include <utility>
#include <vector>

namespace liberate {

template <typename... Cols>
class SoaColumns {
 public:
  static constexpr std::size_t kColumns = sizeof...(Cols);

  SoaColumns() = default;
  explicit SoaColumns(std::size_t n) { resize(n); }

  /// All columns share one length; resize keeps them in lockstep
  /// (value-initializing new rows).
  void resize(std::size_t n) {
    std::apply([n](auto&... col) { (col.resize(n), ...); }, cols_);
    size_ = n;
  }
  void reserve(std::size_t n) {
    std::apply([n](auto&... col) { (col.reserve(n), ...); }, cols_);
  }
  void clear() {
    std::apply([](auto&... col) { (col.clear(), ...); }, cols_);
    size_ = 0;
  }
  /// Append one row, one argument per column.
  void push_back(Cols... row) {
    std::apply(
        [&](auto&... col) {
          (col.push_back(std::move(row)), ...);  // fold pairs col_i, row_i
        },
        cols_);
    ++size_;
  }
  void swap(SoaColumns& other) noexcept {
    cols_.swap(other.cols_);
    std::swap(size_, other.size_);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// The I-th column as a plain vector — the hot loop's view.
  template <std::size_t I>
  auto& col() {
    return std::get<I>(cols_);
  }
  template <std::size_t I>
  const auto& col() const {
    return std::get<I>(cols_);
  }

  /// Row i of column I.
  template <std::size_t I>
  auto& at(std::size_t i) {
    return std::get<I>(cols_)[i];
  }
  template <std::size_t I>
  const auto& at(std::size_t i) const {
    return std::get<I>(cols_)[i];
  }

 private:
  std::tuple<std::vector<Cols>...> cols_;
  std::size_t size_ = 0;
};

}  // namespace liberate
