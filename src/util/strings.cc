#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace liberate {

namespace {
char ascii_lower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  }
  return true;
}

std::size_t ifind(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (needle.size() > haystack.size()) return std::string_view::npos;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return i;
  }
  return std::string_view::npos;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = ascii_lower(c);
  return out;
}

std::string hex_dump(BytesView data, std::size_t max_bytes) {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n * 3);
  for (std::size_t i = 0; i < n; ++i) {
    if (i) out.push_back(' ');
    out.push_back(kHex[data[i] >> 4]);
    out.push_back(kHex[data[i] & 0xf]);
  }
  if (data.size() > max_bytes) out += " ...";
  return out;
}

std::string printable(BytesView data, std::size_t max_bytes) {
  std::string out;
  std::size_t n = std::min(data.size(), max_bytes);
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    char c = static_cast<char>(data[i]);
    out.push_back(
        std::isprint(static_cast<unsigned char>(c)) ? c : '.');
  }
  if (data.size() > max_bytes) out += "...";
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

}  // namespace liberate
