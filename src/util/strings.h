// strings.h — small string helpers shared across parsers and report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"

namespace liberate {

/// Case-insensitive ASCII comparison (HTTP header names, hostnames).
bool iequals(std::string_view a, std::string_view b);

/// Case-insensitive substring search; returns npos if absent.
std::size_t ifind(std::string_view haystack, std::string_view needle);

/// Split on a delimiter; empty fields preserved.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Lowercase copy (ASCII only).
std::string to_lower(std::string_view s);

/// Hex dump of a byte span, e.g. "47 45 54 20" — used in logs and reports.
std::string hex_dump(BytesView data, std::size_t max_bytes = 64);

/// Printable rendering: ASCII kept, the rest as '.' — matching-field reports.
std::string printable(BytesView data, std::size_t max_bytes = 80);

/// printf-style formatting into std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace liberate
