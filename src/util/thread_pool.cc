#include "util/thread_pool.h"

#include <stdexcept>

#include "obs/obs.h"

namespace liberate {

namespace {
thread_local int t_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i]() { worker_loop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() { shutdown(Shutdown::kDrain); }

int ThreadPool::current_worker_index() { return t_worker_index; }

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) {
      throw std::runtime_error("ThreadPool::submit after shutdown");
    }
    queue_.push_back(std::move(fn));
    LIBERATE_COUNTER_ADD("util.pool_tasks_submitted", 1);
    LIBERATE_GAUGE_SET("util.pool_queue_depth", queue_.size() - queue_head_);
  }
  wake_.notify_one();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size() - queue_head_;
}

void ThreadPool::worker_loop(int index) {
  t_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock,
                 [this]() { return stopping_ || queue_head_ < queue_.size(); });
      if (queue_head_ < queue_.size() && !discard_pending_) {
        task = std::move(queue_[queue_head_]);
        queue_head_ += 1;
        LIBERATE_COUNTER_ADD("util.pool_tasks_executed", 1);
        LIBERATE_GAUGE_SET("util.pool_queue_depth",
                           queue_.size() - queue_head_);
        // Periodically compact the consumed prefix.
        if (queue_head_ > 1024 && queue_head_ * 2 > queue_.size()) {
          queue_.erase(queue_.begin(),
                       queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
          queue_head_ = 0;
        }
      } else if (stopping_) {
        return;
      } else {
        continue;  // spurious wakeup with discard in progress
      }
    }
    // Run outside the lock. packaged_task stores any exception in the
    // future, so nothing escapes into the worker loop.
    task();
  }
}

void ThreadPool::shutdown(Shutdown mode) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_ && threads_.empty()) return;  // already shut down
    stopping_ = true;
    if (mode == Shutdown::kDiscardPending) {
      discard_pending_ = true;
      // Destroying the queued std::functions destroys their packaged_tasks;
      // unfired packaged_tasks mark their futures broken_promise.
      queue_.clear();
      queue_head_ = 0;
    }
  }
  wake_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

}  // namespace liberate
