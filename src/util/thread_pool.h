// thread_pool.h — fixed-size worker pool for the parallel round scheduler.
//
// A ThreadPool owns N OS threads draining one FIFO task queue. Tasks are
// submitted as callables and their results (or exceptions) come back through
// std::future, so a worker throwing propagates to whoever joins the round
// instead of killing the process. Shutdown has two modes: drain (default —
// every queued task still runs) and discard (queued-but-unstarted tasks are
// dropped and their futures report broken_promise). Workers are numbered so
// schedulers can pin per-worker state; the current worker's index is
// available from inside a task via ThreadPool::current_worker_index().
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace liberate {

class ThreadPool {
 public:
  /// Spawns `workers` threads (at least 1).
  explicit ThreadPool(std::size_t workers);
  /// Drains the queue, then joins (equivalent to shutdown(kDrain)).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  enum class Shutdown { kDrain, kDiscardPending };

  /// Enqueue a callable; the returned future carries its result or whatever
  /// it threw. Submitting after shutdown throws std::runtime_error.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Stop the pool. kDrain runs every queued task first; kDiscardPending
  /// abandons queued tasks (their futures throw broken_promise). Idempotent.
  void shutdown(Shutdown mode = Shutdown::kDrain);

  std::size_t worker_count() const { return threads_.size(); }
  /// Queued-but-unstarted tasks (snapshot).
  std::size_t pending() const;
  /// Alias of pending() — the queue-depth accessor observability consumers
  /// (sharded metrics, schedulers) read.
  std::size_t queue_depth() const { return pending(); }

  /// Index of the pool worker executing the caller, or -1 when called from
  /// a thread that is not a pool worker. Indices are stable for the life of
  /// the pool (a worker keeps its index) and dense (a pool of N workers
  /// uses exactly 0..N-1) — per-worker sharded state can index arrays by it.
  static int current_worker_index();
  /// Alias of current_worker_index().
  static int worker_index() { return current_worker_index(); }

 private:
  void enqueue(std::function<void()> fn);
  void worker_loop(int index);

  mutable std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::function<void()>> queue_;  // FIFO via head index
  std::size_t queue_head_ = 0;
  bool stopping_ = false;
  bool discard_pending_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace liberate
