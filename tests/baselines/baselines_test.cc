#include "baselines/baselines.h"

#include <gtest/gtest.h>

#include "baselines/incoming_shim.h"
#include "dpi/profiles.h"
#include "stack/host.h"
#include "trace/generators.h"

namespace liberate::baselines {
namespace {

using namespace netsim;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

// A GFC-style censored exchange through paired VPN shims: the classifier
// must see only ciphertext, and the endpoints must still exchange plaintext.
TEST(Baselines, VpnTunnelEvadesGfcBlocking) {
  auto env = dpi::make_gfc();
  constexpr std::uint64_t kKey = 0x5eedf00d;

  VpnTunnelShim client_out(env->net.client_port(), kKey, /*encrypt=*/true);
  VpnTunnelShim server_out(env->net.server_port(), kKey, /*encrypt=*/true);
  Host client(client_out, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(server_out, ip_addr("198.51.100.20"),
              OsProfile::linux_profile());
  VpnTunnelShim decrypt_helper(env->net.client_port(), kKey, false);
  IncomingShim client_in(client, [&](BytesView d) {
    return decrypt_helper.transform_incoming(d);
  });
  IncomingShim server_in(server, [&](BytesView d) {
    return decrypt_helper.transform_incoming(d);
  });
  env->net.attach_client(&client_in);
  env->net.attach_server(&server_in);

  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView d) {
      got += to_string(d);
      if (got.find("\r\n\r\n") != std::string::npos) {
        pc->send(std::string_view("HTTP/1.1 200 OK\r\n\r\nbanned news"));
      }
    });
  });
  std::string page;
  auto& conn = client.tcp_connect(ip_addr("198.51.100.20"), 80);
  conn.on_data([&](BytesView d) { page += to_string(d); });
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET / HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
  });
  env->loop.run_until_idle();

  EXPECT_NE(got.find("www.economist.com"), std::string::npos);
  EXPECT_NE(page.find("banned news"), std::string::npos);
  EXPECT_FALSE(conn.was_reset());
  EXPECT_EQ(env->dpi->rsts_injected(), 0u);  // classifier saw only ciphertext
  // O(n): every payload packet paid tunnel overhead.
  EXPECT_GT(client_out.stats().payload_packets, 0u);
  EXPECT_EQ(client_out.stats().extra_bytes,
            client_out.stats().payload_packets * 8);
}

TEST(Baselines, ObfuscationRemovesKeywordsOnTheWire) {
  EventLoop loop;
  Network net{loop};
  auto& tap = net.emplace<TapElement>("wire");
  ObfuscationShim shim(net.client_port(), 77);
  Host client(shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  server.tcp_listen(80, [](TcpConnection&) {});

  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(std::string_view("GET / HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
  });
  loop.run_until_idle();

  for (const auto& seen : tap.seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (!p.is_tcp() || p.tcp->payload.empty()) continue;
    std::string s = to_string(p.tcp->payload);
    EXPECT_EQ(s.find("economist"), std::string::npos);
    EXPECT_EQ(s.find("GET"), std::string::npos);
  }
  EXPECT_EQ(shim.stats().extra_bytes, 0u);  // randomization adds no bytes
}

TEST(Baselines, DomainFrontingRewritesHostOnly) {
  EventLoop loop;
  Network net{loop};
  auto& tap = net.emplace<TapElement>("wire");
  DomainFrontingShim shim(net.client_port(), "www.economist.com",
                          "cdn.static-ms.com");
  Host client(shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });

  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET / HTTP/1.1\r\nHost: www.economist.com\r\nX-Real: 1\r\n\r\n"));
  });
  loop.run_until_idle();

  // On the wire and at the (fronting) server: no censored hostname, but the
  // rest of the request intact. Exactly one packet was rewritten: O(1).
  EXPECT_EQ(got.find("economist"), std::string::npos);
  EXPECT_NE(got.find("cdn.static-ms.com"), std::string::npos);
  EXPECT_NE(got.find("X-Real: 1"), std::string::npos);
  EXPECT_EQ(shim.stats().payload_packets, 1u);
  for (const auto& seen : tap.seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (!p.is_tcp() || p.tcp->payload.empty()) continue;
    EXPECT_EQ(to_string(p.tcp->payload).find("economist"), std::string::npos);
  }
}

TEST(Baselines, ObfuscationDerandomizeRoundTrips) {
  Bytes plain = to_bytes("sensitive keyword payload");
  // Derandomize(Derandomize(x)) == x (XOR keystream involution at seq 0).
  Bytes once = ObfuscationShim::derandomize(plain, 42);
  EXPECT_NE(once, plain);
  Bytes twice = ObfuscationShim::derandomize(once, 42);
  EXPECT_EQ(twice, plain);
}

}  // namespace
}  // namespace liberate::baselines
