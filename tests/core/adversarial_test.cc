// Adversarial middleboxes (§4.2 / §5.1 countermeasures) and lib·erate's
// answers: replay-server whitelisting beaten by unseen servers, and
// inversion-aware classification beaten by the randomization fallback.
#include <gtest/gtest.h>

#include "core/detection.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

// A GFC that whitelists the default replay server: plain detection sees a
// clean network; a previously unseen server exposes the censor.
std::unique_ptr<dpi::Environment> gfc_with_whitelist(std::uint32_t ip) {
  auto env = dpi::make_gfc();
  // Rebuild the middlebox config with a whitelist. The environment path is
  // fixed, so swap the config knob via a fresh environment assembled the
  // same way — simplest here: mutate through a new middlebox is not
  // exposed, so construct manually.
  auto fresh = std::make_unique<dpi::Environment>();
  fresh->name = "gfc-whitelisting";
  fresh->signal = dpi::Environment::Signal::kBlocking;
  dpi::MiddleboxConfig mc = env->dpi->config();
  mc.whitelisted_server_ips = {ip};
  for (int i = 0; i < 3; ++i) {
    fresh->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.3.9.1") +
                                          static_cast<std::uint32_t>(i));
  }
  fresh->dpi = &fresh->net.emplace<dpi::DpiMiddlebox>(mc);
  fresh->net.emplace<netsim::RouterHop>(netsim::ip_addr("10.3.9.100"));
  fresh->hops_before_middlebox = 3;
  return fresh;
}

constexpr std::uint32_t kDefaultReplayServer = 0xc6336414;  // 198.51.100.20
constexpr std::uint32_t kUnseenServer = 0xc6336499;         // 198.51.100.153

TEST(Adversarial, WhitelistedReplayServerHidesTheCensor) {
  auto env = gfc_with_whitelist(kDefaultReplayServer);
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::economist_trace());
  EXPECT_FALSE(result.differentiation);  // the censor hid successfully
}

TEST(Adversarial, UnseenServerExposesTheCensor) {
  auto env = gfc_with_whitelist(kDefaultReplayServer);
  ReplayRunner runner(*env);
  auto result = detect_differentiation_robust(runner, trace::economist_trace(),
                                              {kUnseenServer});
  EXPECT_TRUE(result.differentiation);
  EXPECT_TRUE(result.content_based);
  EXPECT_TRUE(result.needed_unseen_server);
}

TEST(Adversarial, RobustDetectionOnCleanNetworkStaysNegative) {
  auto env = dpi::make_sprint();
  ReplayRunner runner(*env);
  auto result = detect_differentiation_robust(
      runner, trace::amazon_video_trace(32 * 1024), {kUnseenServer});
  EXPECT_FALSE(result.differentiation);
  EXPECT_FALSE(result.needed_unseen_server);
}

// An inversion-aware censor: it matches the censored hostname AND its
// bit-inverted form, so the standard control replay is also blocked.
TEST(Adversarial, InversionAwareCensorBeatenByRandomizationFallback) {
  auto env = dpi::make_gfc();
  {
    auto rules = env->dpi->engine().rules();
    dpi::MatchRule inverted;
    inverted.name = "gfc-economist-inverted";
    inverted.traffic_class = "censored";
    std::string host = "economist.com";
    std::string flipped;
    for (char c : host) flipped.push_back(static_cast<char>(~c));
    inverted.keywords = {flipped};
    rules.push_back(inverted);
    env->dpi->engine().set_rules(rules);
  }
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::economist_trace());
  EXPECT_TRUE(result.differentiation);
  // The inverted control was blocked too, but the random-payload fallback
  // still pinned the policy to content.
  EXPECT_TRUE(result.content_based);
  EXPECT_TRUE(result.used_randomization_fallback);
}

TEST(Adversarial, NoFallbackOnHonestClassifier) {
  auto env = dpi::make_gfc();
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::economist_trace());
  EXPECT_TRUE(result.content_based);
  EXPECT_FALSE(result.used_randomization_fallback);
  EXPECT_EQ(result.rounds, 2);  // no extra control round needed
}

}  // namespace
}  // namespace liberate::core
