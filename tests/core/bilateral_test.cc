// The §7 bilateral finding: "inserting even one packet carrying dummy
// traffic (that is ignored by the server) at the beginning of a flow evades
// classification in our testbed, T-Mobile, AT&T, and the GFC."
#include "core/bilateral.h"

#include <gtest/gtest.h>

#include "core/blinding.h"
#include "core/replay.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

TEST(Bilateral, PrependsOneDummyClientMessage) {
  auto t = trace::economist_trace();
  auto b = with_bilateral_prepend(t);
  ASSERT_EQ(b.messages.size(), t.messages.size() + 1);
  EXPECT_EQ(b.messages[0].sender, trace::Sender::kClient);
  EXPECT_EQ(b.messages[0].payload.size(), 1u);
  EXPECT_EQ(b.messages[0].payload[0], 0x00);
  EXPECT_EQ(bilateral_discard_bytes({}), 1u);
}

struct Case {
  const char* env;
  trace::ApplicationTrace trace;
};

TEST(Bilateral, OneDummyByteEvadesAnchoredClassifiers) {
  // T-Mobile (GET/TLS stream anchor), the GFC (anchored GET rules) and AT&T
  // (proxy parses the request line) all fall to one dummy byte. Our testbed
  // model's TCP matcher is per-packet and position-insensitive, so the
  // prepend only shifts the matching packet within its 5-packet window —
  // see EXPERIMENTS.md for this documented divergence from the paper's
  // summary bullet (its testbed evidence concerns the position-indexed UDP
  // rule, covered below).
  std::vector<Case> cases;
  cases.push_back({"tmus", trace::amazon_video_trace(220 * 1024)});
  cases.push_back({"gfc", trace::economist_trace()});
  cases.push_back({"att", trace::nbcsports_trace(768 * 1024)});

  for (auto& c : cases) {
    auto env = dpi::make_environment(c.env);
    ReplayRunner runner(*env);

    // Baseline: differentiated.
    auto baseline = runner.run(c.trace);
    ASSERT_TRUE(runner.differentiated(baseline)) << c.env;

    // Bilateral: same exchange, one dummy byte first (the replay server is
    // the cooperating endpoint: it knows the transformed trace).
    ReplayOptions opts;
    opts.server_port_override = 28123;  // a fresh port (GFC escalation)
    auto out = runner.run(with_bilateral_prepend(c.trace), opts);
    EXPECT_TRUE(out.completed) << c.env;
    EXPECT_FALSE(runner.differentiated(out)) << c.env;
  }
}

TEST(Bilateral, DummyFirstDatagramEvadesTestbedUdpRule) {
  // The testbed's Skype rule matches the STUN attribute in the FIRST client
  // packet: a dummy datagram shifts it to position 2.
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto baseline = runner.run(trace::make_skype_trace({}));
  ASSERT_TRUE(runner.differentiated(baseline));
  auto out = runner.run(with_bilateral_prepend(trace::make_skype_trace({})));
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(runner.differentiated(out));
}

TEST(Bilateral, DoesNotHelpAgainstIranStyleInspectEverything) {
  // Iran inspects every packet with no anchor: the dummy byte changes
  // nothing (§6.6: "prepending packets does not appear to change
  // classification results").
  auto env = dpi::make_iran();
  ReplayRunner runner(*env);
  auto out = runner.run(with_bilateral_prepend(trace::facebook_trace()));
  EXPECT_TRUE(runner.differentiated(out));
}

TEST(DistributedBlinding, MatchesSingleUserFieldsWithSplitCost) {
  auto t = trace::economist_trace();
  dpi::MatchRule rule;
  rule.keywords = {"GET", "economist.com"};
  auto oracle = [rule](const trace::ApplicationTrace& probe) {
    for (const auto& m : probe.messages) {
      if (m.sender != trace::Sender::kClient) continue;
      if (rule.matches_content(BytesView(m.payload))) return true;
    }
    return false;
  };

  BlindingStats solo_stats;
  auto solo = find_matching_fields(t, oracle, &solo_stats, 4);

  // Three users, each probing a third of the messages.
  std::vector<ClassificationOracle> users(3, oracle);
  DistributedBlindingStats dist_stats;
  auto dist = find_matching_fields_distributed(t, users, &dist_stats, 4);

  ASSERT_EQ(dist.size(), solo.size());
  for (std::size_t i = 0; i < solo.size(); ++i) {
    EXPECT_EQ(dist[i].message_index, solo[i].message_index);
    EXPECT_EQ(dist[i].offset, solo[i].offset);
    EXPECT_EQ(dist[i].content, solo[i].content);
  }
  // Nobody paid more than the single-user cost, and the busiest user paid
  // meaningfully less (all fields are in message 0, which one user owns;
  // the others only paid baseline + pruning probes).
  EXPECT_EQ(dist_stats.per_user.size(), 3u);
  EXPECT_LT(dist_stats.max_user_rounds(), solo_stats.replay_rounds);
  for (const auto& s : dist_stats.per_user) {
    EXPECT_GE(s.replay_rounds, 1);  // everyone at least confirmed baseline
  }
}

TEST(DistributedBlinding, EmptyUserListReturnsNothing) {
  auto t = trace::economist_trace();
  DistributedBlindingStats stats;
  EXPECT_TRUE(find_matching_fields_distributed(t, {}, &stats).empty());
}

}  // namespace
}  // namespace liberate::core
