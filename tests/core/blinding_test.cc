#include "core/blinding.h"

#include "core/evasion/technique.h"

#include <gtest/gtest.h>

#include "dpi/rules.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

// A synthetic oracle: "classified" iff a rule matches the concatenated
// client payload (no network involved) — lets us verify the search logic
// and count rounds precisely.
ClassificationOracle oracle_for(dpi::MatchRule rule) {
  return [rule](const trace::ApplicationTrace& t) {
    for (const auto& m : t.messages) {
      if (m.sender != trace::Sender::kClient) continue;
      if (rule.matches_content(BytesView(m.payload))) return true;
    }
    return false;
  };
}

TEST(Blinding, BlindRangeInvertsExactlyThatRange) {
  auto t = trace::economist_trace();
  auto blinded = blind_range(t, 0, 4, 3);
  const Bytes& orig = t.messages[0].payload;
  const Bytes& mod = blinded.messages[0].payload;
  for (std::size_t i = 0; i < orig.size(); ++i) {
    if (i >= 4 && i < 7) {
      EXPECT_EQ(mod[i], static_cast<std::uint8_t>(~orig[i]));
    } else {
      EXPECT_EQ(mod[i], orig[i]);
    }
  }
}

TEST(Blinding, FindsSingleKeywordField) {
  auto t = trace::amazon_video_trace(16 * 1024);
  dpi::MatchRule rule;
  rule.keywords = {"Host: d25xi40x97liuc.cloudfront.net"};
  BlindingStats stats;
  auto fields = find_matching_fields(t, oracle_for(rule), &stats, 4);

  ASSERT_FALSE(fields.empty());
  // All fields are in the request (message 0) and together they cover the
  // keyword.
  std::string req = to_string(BytesView(t.messages[0].payload));
  std::size_t kw_begin = req.find("Host: d25xi40x97liuc.cloudfront.net");
  std::size_t kw_end =
      kw_begin + std::string("Host: d25xi40x97liuc.cloudfront.net").size();
  std::size_t covered_begin = fields.front().offset;
  std::size_t covered_end = fields.back().offset + fields.back().length;
  EXPECT_EQ(fields.front().message_index, 0u);
  EXPECT_LE(covered_begin, kw_begin);
  EXPECT_GE(covered_end, kw_end);
  // ...without grossly over-reporting (within granularity slack).
  EXPECT_GE(covered_begin + 8, kw_begin);
  EXPECT_LE(covered_end, kw_end + 8);
  EXPECT_GT(stats.replay_rounds, 0);
}

TEST(Blinding, FindsBothKeywordsOfAndRule) {
  auto t = trace::economist_trace();
  dpi::MatchRule rule;
  rule.keywords = {"GET", "economist.com"};
  BlindingStats stats;
  auto fields = find_matching_fields(t, oracle_for(rule), &stats, 4);

  ASSERT_GE(fields.size(), 2u);  // two separate necessary regions
  std::string all;
  for (const auto& f : fields) all += to_string(BytesView(f.content)) + "|";
  EXPECT_NE(all.find("GET"), std::string::npos);
  EXPECT_NE(all.find("economist"), std::string::npos);
}

TEST(Blinding, RoundCountInPaperBallpark) {
  // §6.1: "lib·erate needs at most 70 replay rounds" for HTTP; §6.5: 86 for
  // the GFC trace. Our algorithm should land in the same few-dozen range.
  auto t = trace::economist_trace();
  dpi::MatchRule rule;
  rule.keywords = {"GET", "economist.com"};
  rule.anchored = true;
  BlindingStats stats;
  find_matching_fields(t, oracle_for(rule), &stats, 4);
  EXPECT_GT(stats.replay_rounds, 10);
  EXPECT_LT(stats.replay_rounds, 150);
}

TEST(Blinding, NoFieldsWhenNothingMatches) {
  auto t = trace::plain_web_trace();
  dpi::MatchRule rule;
  rule.keywords = {"economist.com"};
  BlindingStats stats;
  auto fields = find_matching_fields(t, oracle_for(rule), &stats, 4);
  EXPECT_TRUE(fields.empty());
  // The baseline probe alone settles it.
  EXPECT_EQ(stats.replay_rounds, 1);
}

TEST(Blinding, SnippetsUsableForMatchingRanges) {
  auto t = trace::facebook_trace();
  dpi::MatchRule rule;
  rule.keywords = {"facebook.com"};
  BlindingStats stats;
  auto fields = find_matching_fields(t, oracle_for(rule), &stats, 4);
  ASSERT_FALSE(fields.empty());
  // The extracted content, used as a snippet, matches the original payload.
  std::vector<Bytes> snippets;
  for (const auto& f : fields) snippets.push_back(f.content);
  EXPECT_FALSE(
      matching_ranges(BytesView(t.messages[0].payload), snippets).empty());
}

}  // namespace
}  // namespace liberate::core
