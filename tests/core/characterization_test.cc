#include "core/characterization.h"

#include <gtest/gtest.h>

#include "trace/generators.h"
#include "util/strings.h"

namespace liberate::core {
namespace {

std::string joined_fields(const CharacterizationReport& r) {
  std::string all;
  for (const auto& f : r.fields) all += to_string(BytesView(f.content)) + "|";
  return all;
}

TEST(Characterization, TestbedHttpFindsHostField) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto report = characterize_classifier(runner, trace::amazon_video_trace(16 * 1024));

  EXPECT_NE(joined_fields(report).find("cloudfront"), std::string::npos);
  // Per-packet matcher, first 5 packets (§6.1).
  EXPECT_FALSE(report.position_sensitive);
  ASSERT_TRUE(report.packet_limit.has_value());
  EXPECT_EQ(*report.packet_limit, 5u);
  EXPECT_FALSE(report.inspects_all_packets);
  EXPECT_TRUE(report.match_and_forget());
  EXPECT_FALSE(report.port_sensitive);
  ASSERT_TRUE(report.middlebox_hops.has_value());
  EXPECT_EQ(*report.middlebox_hops, env->hops_before_middlebox + 1);
  // "at most 70 replay rounds" + prepend/port/TTL probes (§6.1).
  EXPECT_LT(report.replay_rounds, 140);
}

TEST(Characterization, TestbedSkypeUdpFirstPacketRule) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto report = characterize_classifier(runner, trace::make_skype_trace({}),
                                        {.probe_ttl = false});
  ASSERT_FALSE(report.fields.empty());
  EXPECT_EQ(report.fields[0].message_index, 0u);  // first client packet
  // Prepending one dummy packet changes the result (§6.1).
  EXPECT_TRUE(report.position_sensitive);
  EXPECT_FALSE(report.inspects_all_packets);
}

TEST(Characterization, TmusAnchorAndKeywords) {
  auto env = dpi::make_tmus();
  ReplayRunner runner(*env);
  auto report = characterize_classifier(runner, trace::amazon_video_trace(220 * 1024));
  EXPECT_NE(joined_fields(report).find("cloudfront"), std::string::npos);
  // "prepending one packet with one byte of (dummy) data changes
  // classification" (§6.2).
  EXPECT_TRUE(report.position_sensitive);
  EXPECT_FALSE(report.inspects_all_packets);
  ASSERT_TRUE(report.middlebox_hops.has_value());
  EXPECT_EQ(*report.middlebox_hops, 3);  // TTL = 3 suffices (§6.2)
}

TEST(Characterization, GfcKeywordsAndHops) {
  auto env = dpi::make_gfc();
  ReplayRunner runner(*env);
  CharacterizationOptions opts;
  opts.unique_port_per_round = true;  // §6.5: fresh ports per replay
  auto report = characterize_classifier(runner, trace::economist_trace(), opts);

  std::string fields = joined_fields(report);
  EXPECT_NE(fields.find("GET"), std::string::npos);
  EXPECT_NE(fields.find("economist"), std::string::npos);
  EXPECT_TRUE(report.position_sensitive);  // dummy-byte prepend evades (§6.5)
  EXPECT_FALSE(report.inspects_all_packets);
  EXPECT_FALSE(report.port_sensitive);
  ASSERT_TRUE(report.middlebox_hops.has_value());
  EXPECT_EQ(*report.middlebox_hops, 10);  // "TTL of 10" (§6.5)
  // §6.5 reports 86 replays for the blinding phase; stay in that ballpark.
  EXPECT_LT(report.replay_rounds, 160);
}

TEST(Characterization, IranInspectsEveryPacketPort80Only) {
  auto env = dpi::make_iran();
  ReplayRunner runner(*env);
  auto report = characterize_classifier(runner, trace::facebook_trace());

  EXPECT_NE(joined_fields(report).find("facebook"), std::string::npos);
  EXPECT_TRUE(report.inspects_all_packets);  // §6.6
  EXPECT_FALSE(report.match_and_forget());
  EXPECT_TRUE(report.port_sensitive);        // §6.6
  ASSERT_TRUE(report.middlebox_hops.has_value());
  EXPECT_EQ(*report.middlebox_hops, 8);      // "eight hops away" (§6.6)
}

TEST(Characterization, AttPortSensitiveProxy) {
  auto env = dpi::make_att();
  ReplayRunner runner(*env);
  auto report = characterize_classifier(runner, trace::nbcsports_trace(1536 * 1024),
                                        {.probe_ttl = false});
  std::string fields = joined_fields(report);
  // Request keywords and the response Content-Type both matter (§6.3).
  EXPECT_NE(fields.find("GET"), std::string::npos);
  bool response_field = false;
  for (const auto& f : report.fields) {
    if (f.message_index == 1) response_field = true;  // the response head
  }
  EXPECT_TRUE(response_field);
  EXPECT_TRUE(report.port_sensitive);
}

}  // namespace
}  // namespace liberate::core
