// Regression: explain_verdict output is a pure function of (WorldSpec,
// RoundRequest) — running the identical rounds serially or on 2- and
// 8-worker pools must render byte-identical explanation text and JSON.
// Packet ids are content digests, scopes are round fingerprints, and the
// renderer never consults worker indices or iteration order, so any
// divergence here means scheduling leaked into the provenance story.
#include "obs/provenance/explain.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/evasion/registry.h"
#include "core/round_scheduler.h"
#include "obs/snapshot.h"
#include "trace/generators.h"
#include "util/strings.h"

namespace liberate::core {
namespace {

obs::prov::FlowKey key_of(const netsim::FiveTuple& t) {
  return obs::prov::flow_key(t.src_ip, t.src_port, t.dst_ip, t.dst_port,
                             t.protocol);
}

/// Run a fixed mix of rounds (plain, splitting, inert insertion, plus
/// port-varied repeats to keep a wide pool busy) and render every resulting
/// flow's explanation into one string.
std::string explain_under(std::size_t workers) {
  obs::reset_all();

  WorldSpec spec;  // testbed, seed 1
  RoundScheduler scheduler(spec, {.workers = workers, .cache_capacity = 0});

  auto video = trace::amazon_video_trace(8 * 1024);
  TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes(std::string("cloudfront"))};
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 1;

  std::vector<RoundRequest> reqs;
  {
    RoundRequest plain;
    plain.trace = video;
    reqs.push_back(plain);
  }
  {
    RoundRequest split;
    split.trace = video;
    split.technique = "split/tcp-segmentation";
    split.context = ctx;
    reqs.push_back(split);
    for (std::uint16_t port : {std::uint16_t{30001}, std::uint16_t{30002},
                               std::uint16_t{30003}}) {
      RoundRequest varied = split;
      varied.server_port_override = port;
      reqs.push_back(varied);
    }
  }
  {
    RoundRequest inert;
    inert.trace = video;
    inert.technique = "inert/ip-low-ttl";
    inert.context = ctx;
    reqs.push_back(inert);
  }

  std::vector<RoundResult> results = scheduler.run_batch(reqs);
  std::string out;
  for (const RoundResult& r : results) {
    obs::prov::Explanation ex = obs::prov::explain_verdict(key_of(
        r.outcome.flow));
    out += ex.text + "\n" + ex.json + "\n";
  }
  return out;
}

TEST(ExplainDeterminism, IdenticalAcrossWorkerCounts) {
  const std::string serial = explain_under(0);

  // The serial reference must actually have a story to tell at full
  // observability: a verdict naming the testbed rule, and (from the split
  // rounds) mutation lineage. At level 0 the instrumentation is compiled
  // out and every flow reads "no provenance recorded" — equally valid, the
  // invariant under test is worker-count independence either way.
#if LIBERATE_OBS_LEVEL >= 2
  EXPECT_NE(serial.find("classified as"), std::string::npos);
  EXPECT_NE(serial.find("<- split of pkt"), std::string::npos);
#endif

  EXPECT_EQ(serial, explain_under(2));
  EXPECT_EQ(serial, explain_under(8));
}

}  // namespace
}  // namespace liberate::core
