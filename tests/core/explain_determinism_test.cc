// Regression: explain_verdict output is a pure function of (WorldSpec,
// RoundRequest) — running the identical rounds serially or on 2- and
// 8-worker pools must render byte-identical explanation text and JSON.
// Packet ids are content digests, scopes are round fingerprints, and the
// renderer never consults worker indices or iteration order, so any
// divergence here means scheduling leaked into the provenance story.
#include "obs/provenance/explain.h"

#include <gtest/gtest.h>

#include <future>
#include <map>
#include <string>
#include <vector>

#include "core/evasion/registry.h"
#include "core/evasion/shim.h"
#include "core/round_scheduler.h"
#include "obs/snapshot.h"
#include "stack/host.h"
#include "trace/generators.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace liberate::core {
namespace {

obs::prov::FlowKey key_of(const netsim::FiveTuple& t) {
  return obs::prov::flow_key(t.src_ip, t.src_port, t.dst_ip, t.dst_port,
                             t.protocol);
}

/// Run a fixed mix of rounds (plain, splitting, inert insertion, plus
/// port-varied repeats to keep a wide pool busy) and render every resulting
/// flow's explanation into one string.
std::string explain_under(std::size_t workers) {
  obs::reset_all();

  WorldSpec spec;  // testbed, seed 1
  RoundScheduler scheduler(spec, {.workers = workers, .cache_capacity = 0});

  auto video = trace::amazon_video_trace(8 * 1024);
  TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes(std::string("cloudfront"))};
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 1;

  std::vector<RoundRequest> reqs;
  {
    RoundRequest plain;
    plain.trace = video;
    reqs.push_back(plain);
  }
  {
    RoundRequest split;
    split.trace = video;
    split.technique = "split/tcp-segmentation";
    split.context = ctx;
    reqs.push_back(split);
    for (std::uint16_t port : {std::uint16_t{30001}, std::uint16_t{30002},
                               std::uint16_t{30003}}) {
      RoundRequest varied = split;
      varied.server_port_override = port;
      reqs.push_back(varied);
    }
  }
  {
    RoundRequest inert;
    inert.trace = video;
    inert.technique = "inert/ip-low-ttl";
    inert.context = ctx;
    reqs.push_back(inert);
  }

  std::vector<RoundResult> results = scheduler.run_batch(reqs);
  std::string out;
  for (const RoundResult& r : results) {
    obs::prov::Explanation ex = obs::prov::explain_verdict(key_of(
        r.outcome.flow));
    out += ex.text + "\n" + ex.json + "\n";
  }
  return out;
}

const std::string kMfRequest =
    "GET /v HTTP/1.1\r\nHost: www.primevideo.com\r\nUA: x\r\n\r\n";

/// One long-lived shim, many concurrent flows with interleaved handshakes:
/// per-flow state must keep each flow's matching packet mutated exactly
/// once, and the whole wire story must be a pure function of the setup —
/// identical when worlds run serially or inside worker pools.
std::string multi_flow_story() {
  constexpr std::size_t kFlows = 16;
  const std::string& request = kMfRequest;

  netsim::EventLoop loop;
  netsim::Network net{loop};
  net.set_hop_latency(netsim::milliseconds(2));  // handshakes overlap
  auto* tap = &net.emplace<netsim::TapElement>("wire");

  TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes(std::string("primevideo"))};
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 1;
  EvasionShim shim(net.client_port(), nullptr, std::move(ctx));
  shim.set_technique(
      std::make_unique<InertInsertion>(InertVariant::kWrongTcpChecksum));

  stack::Host client(shim, netsim::ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(net.server_port(), netsim::ip_addr("10.9.9.9"),
                     stack::OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  std::map<std::uint16_t, std::string> got;  // client port -> server rx
  server.tcp_listen(80, [&](stack::TcpConnection& c) {
    const std::uint16_t peer = c.tuple().dst_port;
    c.on_data([&got, peer](BytesView d) { got[peer] += to_string(d); });
  });
  for (std::size_t f = 0; f < kFlows; ++f) {
    // 1 ms stagger against a 2 ms hop latency: SYNs of later flows pass
    // earlier flows' handshakes on the wire.
    loop.schedule(netsim::milliseconds(1) * static_cast<netsim::Duration>(f),
                  [&, f] {
                    auto& conn = client.tcp_connect(
                        netsim::ip_addr("10.9.9.9"), 80,
                        static_cast<std::uint16_t>(51000 + f));
                    conn.on_established(
                        [&conn, &request] { conn.send(std::string_view(request)); });
                  });
  }
  loop.run_until_idle();

  // Count crafted (injected) packets per flow as seen on the wire.
  std::map<std::uint16_t, int> crafted;
  for (const auto& seen : tap->seen()) {
    auto parsed = netsim::parse_packet(BytesView(seen.datagram));
    if (!parsed.ok() || !parsed.value().is_tcp()) continue;
    if (parsed.value().ip.identification != kCraftedIpId) continue;
    crafted[parsed.value().tcp->src_port] += 1;
  }

  std::string story;
  for (std::size_t f = 0; f < kFlows; ++f) {
    const std::uint16_t port = static_cast<std::uint16_t>(51000 + f);
    story += format("flow %u rx=%zu intact=%d crafted=%d\n",
                    static_cast<unsigned>(port), got[port].size(),
                    got[port] == request ? 1 : 0, crafted[port]);
  }
  story += format("injected=%llu rewritten=%llu tracked=%zu\n",
                  static_cast<unsigned long long>(shim.packets_injected()),
                  static_cast<unsigned long long>(shim.packets_rewritten()),
                  shim.tracked_flows());
  return story;
}

TEST(MultiFlowShim, EachFlowMutatedExactlyOnce) {
  const std::string story = multi_flow_story();
  // Every flow delivered intact and carried exactly one crafted packet —
  // per-flow shim state, not per-shim or per-packet.
  for (std::size_t f = 0; f < 16; ++f) {
    EXPECT_NE(story.find(format("flow %u rx=%zu intact=1 crafted=1\n",
                                static_cast<unsigned>(51000 + f),
                                kMfRequest.size())),
              std::string::npos)
        << story;
  }
  EXPECT_NE(story.find("injected=16 rewritten=0 tracked=16"),
            std::string::npos)
      << story;
}

TEST(MultiFlowShim, StoryIdenticalAcrossWorkerCounts) {
  const std::string serial = multi_flow_story();
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(workers);
    std::vector<std::future<std::string>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(pool.submit([] { return multi_flow_story(); }));
    }
    for (auto& f : futures) EXPECT_EQ(serial, f.get());
  }
}

TEST(ExplainDeterminism, IdenticalAcrossWorkerCounts) {
  const std::string serial = explain_under(0);

  // The serial reference must actually have a story to tell at full
  // observability: a verdict naming the testbed rule, and (from the split
  // rounds) mutation lineage. At level 0 the instrumentation is compiled
  // out and every flow reads "no provenance recorded" — equally valid, the
  // invariant under test is worker-count independence either way.
#if LIBERATE_OBS_LEVEL >= 2
  EXPECT_NE(serial.find("classified as"), std::string::npos);
  EXPECT_NE(serial.find("<- split of pkt"), std::string::npos);
#endif

  EXPECT_EQ(serial, explain_under(2));
  EXPECT_EQ(serial, explain_under(8));
}

}  // namespace
}  // namespace liberate::core
