// FaultyLink × parallel replay: the ISSUE-4 contract that fault injection
// composes with the round scheduler without breaking determinism. With
// WorldSpec::faults set, every isolated round gets a FaultyLink seeded from
// (seed, round fingerprint) — so outcomes must stay byte-identical across
// worker counts, the fault policy must be part of round identity (no memo
// bleed between faulted and clean worlds), and checksum-preserving chaos
// must not stop the replay pipeline from reaching verdicts.
#include <gtest/gtest.h>

#include <string>

#include "core/parallel_analysis.h"
#include "core/round_scheduler.h"
#include "netsim/faulty.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

WorldSpec faulted_spec(std::uint64_t seed) {
  WorldSpec spec;
  spec.environment = "testbed";
  spec.seed = seed;
  spec.faults = netsim::FaultPolicy::reorder_heavy();
  return spec;
}

std::string summarize(const RoundResult& r) {
  return std::to_string(r.differentiated) + ":" +
         std::to_string(r.outcome.completed) + ":" +
         std::to_string(r.outcome.payload_intact) + ":" +
         std::to_string(r.outcome.rsts_at_client) + ":" +
         std::to_string(r.virtual_seconds);
}

TEST(FaultyReplay, IsolatedFaultedRoundIsBitwiseRepeatable) {
  WorldSpec spec = faulted_spec(21);
  RoundRequest req;
  req.trace = trace::amazon_video_trace(8 * 1024);
  RoundResult a = run_isolated_round(spec, req);
  RoundResult b = run_isolated_round(spec, req);
  EXPECT_EQ(summarize(a), summarize(b));
  EXPECT_EQ(a.outcome.goodput_mbps, b.outcome.goodput_mbps);
  EXPECT_EQ(a.bytes_offered, b.bytes_offered);
}

TEST(FaultyReplay, FaultPolicyIsPartOfRoundIdentity) {
  WorldSpec clean;
  clean.environment = "testbed";
  clean.seed = 21;
  WorldSpec faulted = faulted_spec(21);
  WorldSpec faultier = faulted;
  faultier.faults.loss = 0.5;

  RoundRequest req;
  req.trace = trace::facebook_trace();
  Fingerprint f_clean = round_fingerprint(clean, req);
  Fingerprint f_faulted = round_fingerprint(faulted, req);
  Fingerprint f_faultier = round_fingerprint(faultier, req);
  EXPECT_NE(f_clean, f_faulted);
  EXPECT_NE(f_faulted, f_faultier);
  EXPECT_EQ(f_faulted, round_fingerprint(faulted_spec(21), req));
}

TEST(FaultyReplay, ChaosActuallyPerturbsTheRound) {
  // Same request, faulted vs clean world: the loss/reorder chaos must leave
  // a measurable trace (more virtual time spent on retransmission, at the
  // very least a different timing profile), or the link isn't wired in.
  RoundRequest req;
  req.trace = trace::amazon_video_trace(32 * 1024);
  WorldSpec clean;
  clean.environment = "testbed";
  clean.seed = 21;
  RoundResult clean_r = run_isolated_round(clean, req);
  RoundResult faulted_r = run_isolated_round(faulted_spec(21), req);
  EXPECT_TRUE(clean_r.outcome.completed);
  EXPECT_TRUE(faulted_r.outcome.completed);  // TCP rides out the chaos
  EXPECT_NE(clean_r.virtual_seconds, faulted_r.virtual_seconds);
}

TEST(FaultyReplay, FaultedPipelineIdenticalAcrossWorkerCounts) {
  // The acceptance bar: full detection pipeline over a hostile link, serial
  // vs 2 vs 8 workers, identical verdicts and round counts.
  const auto trace = trace::amazon_video_trace(8 * 1024);
  WorldSpec spec = faulted_spec(42);

  RoundScheduler serial(spec, {.workers = 0});
  DetectionResult reference = detect_differentiation_parallel(serial, trace);
  EXPECT_TRUE(reference.differentiation);  // chaos must not blind detection

  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    RoundScheduler scheduler(spec, {.workers = workers});
    DetectionResult got = detect_differentiation_parallel(scheduler, trace);
    EXPECT_EQ(got.differentiation, reference.differentiation)
        << "workers=" << workers;
    EXPECT_EQ(got.content_based, reference.content_based)
        << "workers=" << workers;
    EXPECT_EQ(got.rounds, reference.rounds) << "workers=" << workers;
  }
}

}  // namespace
}  // namespace liberate::core
