// End-to-end facade tests: the four automated phases against each
// environment, plus runtime adaptation and live deployment.
#include "core/liberate.h"

#include <gtest/gtest.h>

#include "stack/host.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

TEST(Liberate, TestbedEndToEnd) {
  auto env = dpi::make_testbed();
  Liberate lib(*env);
  auto report = lib.analyze(trace::amazon_video_trace(32 * 1024));

  EXPECT_TRUE(report.detection.content_based);
  EXPECT_TRUE(report.ran_characterization);
  ASSERT_TRUE(report.selected_technique.has_value());
  EXPECT_GT(report.total_rounds, 10);
  EXPECT_GT(report.total_bytes, 0u);
}

TEST(Liberate, SprintStopsAfterDetection) {
  auto env = dpi::make_sprint();
  Liberate lib(*env);
  auto report = lib.analyze(trace::amazon_video_trace(32 * 1024));
  EXPECT_FALSE(report.detection.differentiation);
  EXPECT_FALSE(report.ran_characterization);
  EXPECT_FALSE(report.selected_technique.has_value());
  EXPECT_EQ(report.total_rounds, 2);  // original + inverted control
}

TEST(Liberate, GfcSelectsWorkingTechnique) {
  auto env = dpi::make_gfc();
  env->loop.run_until(netsim::hours(16));
  Liberate lib(*env);
  auto report = lib.analyze(trace::economist_trace());
  EXPECT_TRUE(report.detection.content_based);
  ASSERT_TRUE(report.selected_technique.has_value());

  // Deploy it on a live flow and verify the censored page now loads.
  auto deployment = lib.deploy(report, env->net.client_port());
  ASSERT_NE(deployment, nullptr);
  stack::Host client(deployment->port(), netsim::ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(env->net.server_port(), netsim::ip_addr("198.51.100.20"),
                     stack::OsProfile::linux_profile());
  env->net.attach_client(&client);
  env->net.attach_server(&server);

  std::string got;
  server.tcp_listen(80, [&](stack::TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView d) {
      got += to_string(d);
      if (got.find("\r\n\r\n") != std::string::npos) {
        pc->send(std::string_view("HTTP/1.1 200 OK\r\n\r\ncensored article"));
      }
    });
  });
  std::string page;
  auto& conn = client.tcp_connect(netsim::ip_addr("198.51.100.20"), 80, 33001);
  conn.on_data([&](BytesView d) { page += to_string(d); });
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET /news HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
  });
  env->loop.run_for(netsim::minutes(5));
  EXPECT_NE(page.find("censored article"), std::string::npos);
  EXPECT_FALSE(conn.was_reset());
  env->net.attach_client(nullptr);
  env->net.attach_server(nullptr);
}

TEST(Liberate, IranSelectsSplitting) {
  auto env = dpi::make_iran();
  Liberate lib(*env);
  auto report = lib.analyze(trace::facebook_trace());
  ASSERT_TRUE(report.selected_technique.has_value());
  // Only splitting/reordering can beat an inspect-every-packet censor.
  bool split_family =
      report.selected_technique->find("split/") != std::string::npos ||
      report.selected_technique->find("reorder/") != std::string::npos;
  EXPECT_TRUE(split_family) << *report.selected_technique;
}

TEST(Liberate, ReadaptDoesNothingWhileRulesHold) {
  auto env = dpi::make_testbed();
  Liberate lib(*env);
  auto t = trace::amazon_video_trace(32 * 1024);
  auto report = lib.analyze(t);
  ASSERT_TRUE(report.selected_technique.has_value());
  auto verdict = lib.readapt(report, t);
  EXPECT_TRUE(verdict.still_working);
  // The cheap path still accounts for the probe cost it spent: exactly one
  // verification replay, not the dozens a full analysis takes.
  EXPECT_EQ(verdict.report.total_rounds, 1);
  EXPECT_GT(verdict.report.total_bytes, 0u);
  EXPECT_LT(verdict.report.total_rounds, report.total_rounds);
  // The selection itself is preserved from the previous report.
  EXPECT_EQ(verdict.report.selected_technique, report.selected_technique);
}

TEST(Liberate, ReadaptRecoversFromRuleChange) {
  auto env = dpi::make_testbed();
  Liberate lib(*env);
  auto t = trace::amazon_video_trace(32 * 1024);
  auto report = lib.analyze(t);
  ASSERT_TRUE(report.selected_technique.has_value());
  const std::string first_technique = *report.selected_technique;

  // The operator deploys a countermeasure: the rule now matches the SERVER
  // response's Content-Type instead of the client request — the deployed
  // client-side packet transform no longer touches the matching bytes.
  {
    auto rules = env->dpi->engine().rules();
    for (auto& r : rules) {
      if (r.name == "testbed-http-video") {
        r.keywords = {"Content-Type: video/mp4"};
      }
    }
    env->dpi->engine().set_rules(rules);
  }

  auto verdict = lib.readapt(report, t);
  EXPECT_FALSE(verdict.still_working);
  const SessionReport& fresh = verdict.report;
  ASSERT_TRUE(fresh.selected_technique.has_value());
  // Totals fold the failed verification replay into the re-analysis cost.
  EXPECT_GT(fresh.total_rounds, 10);
  // The new analysis found the new matching field, in the server's message.
  std::string fields;
  bool in_server_message = false;
  for (const auto& f : fresh.characterization.fields) {
    fields += to_string(BytesView(f.content)) + "|";
    if (f.message_index == 1) in_server_message = true;
  }
  EXPECT_NE(fields.find("video/mp4"), std::string::npos);
  EXPECT_TRUE(in_server_message);
  (void)first_technique;
}

TEST(Liberate, UdpSkypeOnTestbed) {
  auto env = dpi::make_testbed();
  Liberate lib(*env);
  auto report = lib.analyze(trace::make_skype_trace({}));
  EXPECT_TRUE(report.detection.content_based);
  ASSERT_TRUE(report.selected_technique.has_value());
  EXPECT_TRUE(
      report.selected_technique->find("udp") != std::string::npos ||
      report.selected_technique->find("flush") != std::string::npos)
      << *report.selected_technique;
}

}  // namespace
}  // namespace liberate::core
