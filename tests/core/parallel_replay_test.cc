// Determinism / equivalence suite for the parallel replay engine.
//
// The contract under test: a round's outcome depends only on (WorldSpec,
// RoundRequest) — never on worker count, scheduling order, or whether the
// result came from the memo cache. Serial (inline) runs, 1-, 2- and
// 8-worker pools must produce byte-identical matching fields, technique
// verdicts and round counts for the full blinding + evaluation pipeline,
// across multiple seeds and environments; caching must change replay counts
// only, never results.
#include "core/parallel_analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/round_scheduler.h"
#include "dpi/match_program.h"
#include "trace/generators.h"
#include "util/strings.h"

namespace liberate::core {
namespace {

trace::ApplicationTrace trace_for(const std::string& environment) {
  // Small traces keep the probe counts low; each still trips its
  // environment's classifier (cloudfront / facebook keywords). TMUS's
  // usage-counter signal carries up to 25 KB of meter noise per round, so
  // its trace must be comfortably bigger than twice that.
  if (environment == "iran") return trace::facebook_trace();
  if (environment == "gfc") return trace::economist_trace();
  if (environment == "tmus") return trace::amazon_video_trace(96 * 1024);
  return trace::amazon_video_trace(8 * 1024);
}

/// Everything the pipeline decides, flattened to one comparable string.
struct AnalysisSummary {
  std::string fields;
  std::string verdicts;
  std::string selected;
  int characterization_rounds = 0;
  int evaluation_rounds = 0;
  bool operator==(const AnalysisSummary&) const = default;
};

std::string summarize_fields(const CharacterizationReport& report) {
  std::string out;
  for (const MatchingField& f : report.fields) {
    out += std::to_string(f.message_index) + ":" + std::to_string(f.offset) +
           ":" + std::to_string(f.length) + ":" +
           to_string(BytesView(f.content)) + "|";
  }
  out += " pos=" + std::to_string(report.position_sensitive);
  out += " limit=" + std::to_string(report.packet_limit.value_or(0));
  out += " all=" + std::to_string(report.inspects_all_packets);
  out += " port=" + std::to_string(report.port_sensitive);
  out += " hops=" + std::to_string(report.middlebox_hops.value_or(-1));
  return out;
}

std::string summarize_verdicts(const EvaluationResult& result) {
  std::string out;
  for (const TechniqueOutcome& o : result.outcomes) {
    out += o.technique + ":" + (o.pruned ? "p" : "-") +
           (o.evaded ? "E" : "-") + (o.changed_classification ? "C" : "-") +
           (o.signal_absent ? "S" : "-") + (o.completed ? "F" : "-") +
           (o.payload_intact ? "I" : "-") +
           (o.crafted_reached_server ? "R" : "-") + "|";
  }
  return out;
}

AnalysisSummary run_pipeline(RoundScheduler& scheduler,
                             const trace::ApplicationTrace& trace) {
  CharacterizationOptions copts;
  copts.unique_port_per_round = true;
  CharacterizationReport report =
      characterize_classifier_parallel(scheduler, trace, copts);
  EvaluationResult evaluation = evaluate_parallel(scheduler, report, trace);
  AnalysisSummary s;
  s.fields = summarize_fields(report);
  s.verdicts = summarize_verdicts(evaluation);
  s.selected = evaluation.selected.value_or("(none)");
  s.characterization_rounds = report.replay_rounds;
  s.evaluation_rounds = evaluation.replay_rounds;
  return s;
}

AnalysisSummary run_with_workers(const std::string& environment,
                                 std::uint64_t seed, std::size_t workers,
                                 std::size_t cache_capacity = 0) {
  WorldSpec spec;
  spec.environment = environment;
  spec.seed = seed;
  RoundScheduler scheduler(spec, {.workers = workers,
                                  .cache_capacity = cache_capacity});
  return run_pipeline(scheduler, trace_for(environment));
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(ParallelEquivalence, IdenticalAcrossWorkerCounts) {
  const auto& [environment, seed] = GetParam();
  AnalysisSummary serial = run_with_workers(environment, seed, 0);
  // A pipeline that found nothing would make the equivalence vacuous.
  EXPECT_NE(serial.fields.find(':'), std::string::npos)
      << "no matching fields found in " << environment;
  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    AnalysisSummary parallel = run_with_workers(environment, seed, workers);
    EXPECT_EQ(serial.fields, parallel.fields)
        << environment << " seed=" << seed << " workers=" << workers;
    EXPECT_EQ(serial.verdicts, parallel.verdicts)
        << environment << " seed=" << seed << " workers=" << workers;
    EXPECT_EQ(serial.selected, parallel.selected)
        << environment << " seed=" << seed << " workers=" << workers;
    EXPECT_EQ(serial.characterization_rounds, parallel.characterization_rounds);
    EXPECT_EQ(serial.evaluation_rounds, parallel.evaluation_rounds);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndEnvironments, ParallelEquivalence,
    ::testing::Combine(::testing::Values("testbed", "tmus", "iran"),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{7},
                                         std::uint64_t{42})),
    [](const auto& info) {
      return std::get<0>(info.param) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST(ParallelReplay, CacheChangesReplayCountsNotResults) {
  WorldSpec spec;
  spec.environment = "testbed";
  spec.seed = 1;
  const auto trace = trace_for(spec.environment);

  RoundScheduler cached(spec, {.workers = 2, .cache_capacity = 8192});
  RoundScheduler uncached(spec, {.workers = 2, .cache_capacity = 0});

  AnalysisSummary with_cache = run_pipeline(cached, trace);
  AnalysisSummary without_cache = run_pipeline(uncached, trace);
  EXPECT_EQ(with_cache, without_cache);

  // Re-analysis (the §4.2 "rules changed?" re-characterization path) repeats
  // every probe: the cache answers all of them without a single new replay…
  const std::uint64_t executed_after_first = cached.rounds_executed();
  AnalysisSummary again = run_pipeline(cached, trace);
  EXPECT_EQ(with_cache, again);
  EXPECT_EQ(cached.rounds_executed(), executed_after_first);
  EXPECT_GT(cached.rounds_from_cache(), 0u);

  // …while the uncached scheduler replays the whole pipeline again.
  const std::uint64_t uncached_first = uncached.rounds_executed();
  AnalysisSummary uncached_again = run_pipeline(uncached, trace);
  EXPECT_EQ(without_cache, uncached_again);
  EXPECT_EQ(uncached.rounds_executed(), 2 * uncached_first);
  // Logical round counts (the §6 cost accounting) are identical either way.
  EXPECT_EQ(again.characterization_rounds, with_cache.characterization_rounds);
  EXPECT_EQ(again.evaluation_rounds, with_cache.evaluation_rounds);
}

// The compiled matcher must be invisible to analysis results: the full
// pipeline summary is byte-identical across {reference, compiled} matcher
// backends crossed with {serial, 2, 8} workers. This is the end-to-end leg
// of the equivalence contract (tests/dpi/match_program_diff_test.cc proves
// it per-evaluation; this proves no call site depends on the backend).
TEST(BackendEquivalence, AnalysisIdenticalAcrossBackendsAndWorkers) {
  struct BackendGuard {
    ~BackendGuard() { dpi::set_match_backend(dpi::MatchBackend::kCompiled); }
  } guard;
  AnalysisSummary baseline;
  bool first = true;
  for (dpi::MatchBackend backend :
       {dpi::MatchBackend::kReference, dpi::MatchBackend::kCompiled}) {
    dpi::set_match_backend(backend);
    for (std::size_t workers : {std::size_t{0}, std::size_t{2},
                                std::size_t{8}}) {
      AnalysisSummary s = run_with_workers("testbed", 1, workers);
      if (first) {
        // Vacuous-equivalence guard: the pipeline must have found fields.
        EXPECT_NE(s.fields.find(':'), std::string::npos);
        baseline = s;
        first = false;
      } else {
        EXPECT_EQ(baseline, s)
            << "backend="
            << (backend == dpi::MatchBackend::kCompiled ? "compiled"
                                                        : "reference")
            << " workers=" << workers;
      }
    }
  }
}

TEST(ParallelReplay, IsolatedRoundIsBitwiseRepeatable) {
  WorldSpec spec;
  spec.environment = "tmus";  // noisiest environment (usage-counter signal)
  spec.seed = 9;
  RoundRequest req;
  req.trace = trace::amazon_video_trace(8 * 1024);
  RoundResult a = run_isolated_round(spec, req);
  RoundResult b = run_isolated_round(spec, req);
  EXPECT_EQ(a.differentiated, b.differentiated);
  EXPECT_EQ(a.outcome.completed, b.outcome.completed);
  EXPECT_EQ(a.outcome.usage_delta, b.outcome.usage_delta);
  EXPECT_EQ(a.outcome.goodput_mbps, b.outcome.goodput_mbps);
  EXPECT_EQ(a.outcome.rsts_at_client, b.outcome.rsts_at_client);
  EXPECT_EQ(a.virtual_seconds, b.virtual_seconds);
}

TEST(ParallelReplay, FingerprintSeparatesMutations) {
  WorldSpec spec;
  RoundRequest base;
  base.trace = trace::facebook_trace();
  Fingerprint f0 = round_fingerprint(spec, base);

  RoundRequest ttl = base;
  ttl.match_packet_ttl = 4;
  RoundRequest port = base;
  port.server_port_override = 8080;
  RoundRequest technique = base;
  technique.technique = "flush/ttl-limited-rst-after";
  RoundRequest payload = base;
  payload.trace.messages[0].payload[0] ^= 0xFF;
  WorldSpec other_env = spec;
  other_env.environment = "iran";

  EXPECT_EQ(f0, round_fingerprint(spec, base));
  EXPECT_NE(f0, round_fingerprint(spec, ttl));
  EXPECT_NE(f0, round_fingerprint(spec, port));
  EXPECT_NE(f0, round_fingerprint(spec, technique));
  EXPECT_NE(f0, round_fingerprint(spec, payload));
  EXPECT_NE(f0, round_fingerprint(other_env, base));
}

TEST(ParallelReplay, ParallelDetectionMatchesSequentialVerdicts) {
  for (const char* environment : {"testbed", "iran", "sprint"}) {
    WorldSpec spec;
    spec.environment = environment;
    RoundScheduler scheduler(spec, {.workers = 2});
    auto trace = trace_for(environment);
    DetectionResult parallel =
        detect_differentiation_parallel(scheduler, trace);

    auto env = dpi::make_environment(environment);
    ReplayRunner runner(*env);
    DetectionResult sequential = detect_differentiation(runner, trace);
    EXPECT_EQ(parallel.differentiation, sequential.differentiation)
        << environment;
    EXPECT_EQ(parallel.content_based, sequential.content_based) << environment;
    EXPECT_EQ(parallel.rounds, sequential.rounds) << environment;
  }
}

TEST(ParallelReplay, ParallelBlindingMatchesSequentialFields) {
  // The kDirect testbed signal is noise-free: the breadth-first parallel
  // search and the sequential recursive search must find the exact same
  // matching fields on the exact same trace.
  auto trace = trace::amazon_video_trace(8 * 1024);

  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  CharacterizationReport sequential = characterize_classifier(
      runner, trace, {.unique_port_per_round = true});

  WorldSpec spec;
  spec.environment = "testbed";
  RoundScheduler scheduler(spec, {.workers = 8});
  CharacterizationReport parallel = characterize_classifier_parallel(
      scheduler, trace, {.unique_port_per_round = true});

  EXPECT_EQ(summarize_fields(sequential), summarize_fields(parallel));
}

TEST(ParallelReplay, AnalyzeParallelFullSession) {
  WorldSpec spec;
  spec.environment = "testbed";
  RoundScheduler scheduler(spec, {.workers = 8});
  auto trace = trace_for(spec.environment);
  SessionReport report = analyze_parallel(scheduler, trace);
  EXPECT_TRUE(report.detection.content_based);
  EXPECT_TRUE(report.ran_characterization);
  EXPECT_TRUE(report.selected_technique.has_value());
  EXPECT_EQ(report.total_rounds,
            report.detection.rounds + report.characterization.replay_rounds +
                report.evaluation.replay_rounds);
  EXPECT_GT(report.total_bytes, 0u);
  EXPECT_GT(report.total_virtual_minutes, 0.0);
}

}  // namespace
}  // namespace liberate::core
