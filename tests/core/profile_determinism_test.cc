// Determinism of the exported profile tree and cost-ledger attribution: the
// collapsed stacks (names, call counts, sim-clock totals) and the per-phase
// round/probe counts must be byte-identical across worker counts and match
// backends, because everything they measure is sim-clock driven. Also the
// span-parent regression for work-stealing wave chunks: a round executed by
// a pool worker nests under the span that submitted the batch, never under
// whatever happens to be open on that worker, and never at the root.
#include "core/parallel_analysis.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/liberate.h"
#include "core/round_scheduler.h"
#include "dpi/match_program.h"
#include "dpi/normalizer.h"
#include "dpi/profiles.h"
#include "obs/level.h"
#include "obs/prof/cost_ledger.h"
#include "obs/prof/export.h"
#include "obs/prof/profiler.h"
#include "obs/span.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

using obs::CostKind;
using obs::CostLedger;
using obs::CostLedgerSnapshot;
using obs::CostPhase;
using obs::prof::CollapsedMetric;
using obs::prof::Profiler;
using obs::prof::ProfileSnapshot;

struct BackendGuard {
  dpi::MatchBackend saved = dpi::match_backend();
  ~BackendGuard() { dpi::set_match_backend(saved); }
};

/// Everything deterministic the profiler + ledger export: collapsed stacks
/// by self sim-time and by call count (covers tree shape, names, counts and
/// sim totals; wall-clock is real time and deliberately excluded), plus the
/// per-phase totals of every backend-independent cost kind (match-op counts
/// are an engine-internal metric, not part of the determinism contract).
std::string obs_signature() {
  const ProfileSnapshot prof = Profiler::instance().snapshot();
  std::string sig = obs::prof::profile_collapsed(prof, CollapsedMetric::kSelfSimUs);
  sig += "--\n";
  sig += obs::prof::profile_collapsed(prof, CollapsedMetric::kCount);
  sig += "--\n";
  const CostLedgerSnapshot cost = CostLedger::instance().snapshot();
  for (std::size_t p = 0; p < obs::kCostPhases; ++p) {
    const auto phase = static_cast<CostPhase>(p);
    sig += obs::cost_phase_name(phase);
    for (CostKind kind : {CostKind::kRounds, CostKind::kProbes,
                          CostKind::kMutatedPackets}) {
      sig += " " + std::string(obs::cost_kind_name(kind)) + "=" +
             std::to_string(cost.at(phase, kind));
    }
    sig += "\n";
  }
  return sig;
}

std::string analyze_and_sign(std::size_t workers, dpi::MatchBackend backend) {
  BackendGuard guard;
  dpi::set_match_backend(backend);
  Profiler::instance().reset();
  CostLedger::instance().reset();
  RoundScheduler scheduler(WorldSpec{},
                           {.workers = workers, .cache_capacity = 8192});
  analyze_parallel(scheduler, trace::make_skype_trace({}));
  return obs_signature();
}

TEST(ProfileDeterminism, TreeAndLedgerIdenticalAcrossWorkersAndBackends) {
#if LIBERATE_OBS_LEVEL < LIBERATE_OBS_LEVEL_FULL
  GTEST_SKIP() << "spans/ticks compiled out below obs level 2";
#else
  const std::string reference =
      analyze_and_sign(0, dpi::MatchBackend::kReference);
  ASSERT_NE(reference.find("core.round"), std::string::npos);
  ASSERT_NE(reference.find("detection rounds="), std::string::npos);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(analyze_and_sign(workers, dpi::MatchBackend::kReference),
              reference)
        << "reference backend, workers=" << workers;
  }
  for (std::size_t workers : {std::size_t{0}, std::size_t{2}, std::size_t{8}}) {
    EXPECT_EQ(analyze_and_sign(workers, dpi::MatchBackend::kCompiled),
              reference)
        << "compiled backend, workers=" << workers;
  }
#endif
}

std::vector<RoundRequest> distinct_requests(int n, std::size_t base_bytes) {
  std::vector<RoundRequest> reqs;
  for (int i = 0; i < n; ++i) {
    RoundRequest req;
    // Distinct sizes → distinct fingerprints → no coalescing/cache hits.
    req.trace = trace::amazon_video_trace(base_bytes + 512 * i);
    reqs.push_back(std::move(req));
  }
  return reqs;
}

/// The PR 6 work-stealing regression: every core.round span of a batch
/// submitted while a span is open must name that span as its parent — on a
/// stealing pool worker exactly as in serial mode.
TEST(ProfileDeterminism, SpanParentNestingSurvivesWaveChunkStealing) {
#if LIBERATE_OBS_LEVEL < LIBERATE_OBS_LEVEL_FULL
  GTEST_SKIP() << "spans compiled out below obs level 2";
#else
  for (std::size_t workers : {std::size_t{0}, std::size_t{2}}) {
    obs::SpanLog::instance().reset();
    Profiler::instance().reset();
    RoundScheduler scheduler(WorldSpec{},
                             {.workers = workers, .cache_capacity = 0});

    std::uint64_t now = 0;
    obs::SimClockFn clock = [&now] { return now; };
    std::uint64_t parent_id = 0;
    {
      obs::ScopedSpan parent("test.parent", clock);
      parent_id = parent.id();
      scheduler.run_batch(distinct_requests(4, 4 * 1024));
    }
    int rounds_seen = 0;
    for (const obs::SpanRecord& s : obs::SpanLog::instance().snapshot()) {
      if (s.name != "core.round") continue;
      ++rounds_seen;
      EXPECT_EQ(s.parent_id, parent_id) << "workers=" << workers;
    }
    EXPECT_EQ(rounds_seen, 4) << "workers=" << workers;

    // Without an open span the rounds are root spans — a worker must not
    // leak a parent from the previous batch either.
    obs::SpanLog::instance().reset();
    scheduler.run_batch(distinct_requests(4, 24 * 1024));
    rounds_seen = 0;
    for (const obs::SpanRecord& s : obs::SpanLog::instance().snapshot()) {
      if (s.name != "core.round") continue;
      ++rounds_seen;
      EXPECT_EQ(s.parent_id, 0u) << "workers=" << workers;
    }
    EXPECT_EQ(rounds_seen, 4) << "workers=" << workers;
  }
#endif
}

/// Acceptance criterion: the readapt ladder's stage rounds always sum to
/// the report's total round count, on the cheap path and the full one.
TEST(ReadaptLadder, StageRoundsSumToTotalRounds) {
  auto env = dpi::make_testbed();
  Liberate lib(*env);
  const trace::ApplicationTrace trace = trace::amazon_video_trace(8 * 1024);
  SessionReport analysis = lib.analyze(trace);
  ASSERT_TRUE(analysis.selected_technique.has_value());

  // Nothing changed: the verification round alone, one ladder stage.
  ReadaptResult cheap = lib.readapt(analysis, trace);
  EXPECT_TRUE(cheap.still_working);
  ASSERT_EQ(cheap.ladder.size(), 1u);
  EXPECT_EQ(cheap.ladder.front().stage, "still-working");
  EXPECT_EQ(cheap.ladder.front().rounds, cheap.report.total_rounds);

  // Countermeasure: a reassembling normalizer kills fragment evasion, so
  // readapt falls through to the full re-analysis.
  dpi::NormalizerConfig cfg;
  cfg.reassemble_fragments = true;
  env->net.emplace_at<dpi::NormalizerElement>(0, cfg);
  ReadaptResult full = lib.readapt(analysis, trace);
  ASSERT_GE(full.ladder.size(), 2u);
  EXPECT_EQ(full.ladder.front().stage, "still-working");
  EXPECT_EQ(full.ladder.back().stage, "full-analysis");
  int sum = 0;
  for (const ReadaptStageCost& stage : full.ladder) {
    EXPECT_GE(stage.rounds, 0);
    sum += stage.rounds;
  }
  EXPECT_EQ(sum, full.report.total_rounds);
}

}  // namespace
}  // namespace liberate::core
