#include "core/replay.h"

#include <gtest/gtest.h>

#include "core/detection.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

TEST(Replay, CompletesCleanTraceOnSprint) {
  auto env = dpi::make_sprint();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::amazon_video_trace(64 * 1024));
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.payload_intact);
  EXPECT_FALSE(outcome.blocked);
  EXPECT_FALSE(runner.differentiated(outcome));
}

TEST(Replay, TestbedClassifiesVideoTrace) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::amazon_video_trace(64 * 1024));
  EXPECT_TRUE(outcome.completed);
  ASSERT_FALSE(outcome.classifications.empty());
  EXPECT_EQ(outcome.classifications[0].traffic_class, "video");
  EXPECT_TRUE(runner.differentiated(outcome));
  // The testbed shapes classified flows to 1.5 Mbps.
  EXPECT_LT(outcome.goodput_mbps, 1.8);
}

TEST(Replay, TestbedDoesNotClassifyPlainTrace) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::plain_web_trace());
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.classifications.empty());
  EXPECT_FALSE(runner.differentiated(outcome));
}

TEST(Replay, TestbedClassifiesSkypeUdp) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::make_skype_trace({}));
  EXPECT_TRUE(outcome.completed);
  ASSERT_FALSE(outcome.classifications.empty());
  EXPECT_EQ(outcome.classifications[0].traffic_class, "voip");
}

TEST(Replay, TmusZeroRatesVideo) {
  auto env = dpi::make_tmus();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::amazon_video_trace(200 * 1024));
  EXPECT_TRUE(outcome.completed);
  // Zero-rated: the usage counter barely moved.
  EXPECT_LT(outcome.usage_delta, outcome.expected_wire_bytes / 2);
  EXPECT_TRUE(runner.differentiated(outcome));

  // An unclassified trace counts fully.
  auto plain = runner.run(trace::plain_web_trace());
  EXPECT_FALSE(runner.differentiated(plain));
}

TEST(Replay, TmusClassifiesYoutubeSni) {
  auto env = dpi::make_tmus();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::youtube_tls_trace(200 * 1024));
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(runner.differentiated(outcome));
}

TEST(Replay, GfcBlocksEconomistWithRsts) {
  auto env = dpi::make_gfc();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::economist_trace());
  EXPECT_FALSE(outcome.completed);
  EXPECT_TRUE(outcome.blocked);
  // "confirmed it is blocked by 3-5 RST packets" (§6.5).
  // 3-5 injected per block event, plus stragglers for retransmissions.
  EXPECT_GE(outcome.rsts_at_client, 3u);
  EXPECT_LE(outcome.rsts_at_client, 14u);
  EXPECT_TRUE(runner.differentiated(outcome));
}

TEST(Replay, GfcEscalatesAfterTwoBlockedReplays) {
  auto env = dpi::make_gfc();
  ReplayRunner runner(*env);
  auto t = trace::economist_trace();
  // Two blocked replays on the same port escalate...
  EXPECT_TRUE(runner.run(t).blocked);
  EXPECT_TRUE(runner.run(t).blocked);
  // ...after which even innocuous content to the same server:port dies.
  auto plain = trace::plain_web_trace();
  plain.server_port = t.server_port;
  auto outcome = runner.run(plain);
  EXPECT_TRUE(outcome.blocked);
  // A different port works.
  ReplayOptions opts;
  opts.server_port_override = 8081;
  auto other = runner.run(trace::plain_web_trace(), opts);
  EXPECT_TRUE(other.completed);
}

TEST(Replay, IranBlocksWith403AndTwoRsts) {
  auto env = dpi::make_iran();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::facebook_trace());
  EXPECT_TRUE(outcome.blocked);
  EXPECT_TRUE(outcome.got_403);
  EXPECT_GE(outcome.rsts_at_client, 2u);
}

TEST(Replay, IranIgnoresNonStandardPort) {
  auto env = dpi::make_iran();
  ReplayRunner runner(*env);
  auto t = trace::facebook_trace();
  t.server_port = 8080;
  auto outcome = runner.run(t);
  EXPECT_TRUE(outcome.completed);
  EXPECT_FALSE(outcome.blocked);
}

TEST(Replay, AttThrottlesPort80Video) {
  auto env = dpi::make_att();
  ReplayRunner runner(*env);
  auto outcome = runner.run(trace::nbcsports_trace(1536 * 1024));
  EXPECT_TRUE(outcome.completed);
  EXPECT_TRUE(outcome.payload_intact);
  EXPECT_LT(outcome.goodput_mbps, 1.8);
  EXPECT_TRUE(runner.differentiated(outcome));
}

TEST(Replay, AttLeavesOtherPortsAlone) {
  auto env = dpi::make_att();
  ReplayRunner runner(*env);
  auto t = trace::nbcsports_trace(1536 * 1024);
  t.server_port = 8443;
  auto outcome = runner.run(t);
  EXPECT_TRUE(outcome.completed);
  EXPECT_GT(outcome.goodput_mbps, 3.0);
  EXPECT_FALSE(runner.differentiated(outcome));
}

TEST(Replay, UdpTraceCompletesEverywhereUnclassified) {
  for (const char* name : {"tmus", "gfc", "iran"}) {
    auto env = dpi::make_environment(name);
    ReplayRunner runner(*env);
    auto outcome = runner.run(trace::make_generic_udp_trace());
    EXPECT_TRUE(outcome.completed) << name;
    EXPECT_FALSE(runner.differentiated(outcome)) << name;
  }
}

TEST(Detection, TestbedContentBasedDifferentiation) {
  auto env = dpi::make_testbed();
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::amazon_video_trace(32 * 1024));
  EXPECT_TRUE(result.differentiation);
  EXPECT_TRUE(result.content_based);
  EXPECT_EQ(result.rounds, 2);
}

TEST(Detection, SprintShowsNoDifferentiation) {
  auto env = dpi::make_sprint();
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::amazon_video_trace(32 * 1024));
  EXPECT_FALSE(result.differentiation);
  EXPECT_FALSE(result.content_based);
}

TEST(Detection, GfcInvertedControlPassesCleanly) {
  auto env = dpi::make_gfc();
  ReplayRunner runner(*env);
  auto result = detect_differentiation(runner, trace::economist_trace());
  EXPECT_TRUE(result.differentiation);
  EXPECT_TRUE(result.content_based);
  EXPECT_TRUE(result.inverted.completed);
}

}  // namespace
}  // namespace liberate::core
