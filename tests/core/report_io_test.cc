#include "core/report_io.h"

#include <gtest/gtest.h>

#include "core/evaluation.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

CharacterizationReport sample_report() {
  CharacterizationReport r;
  r.position_sensitive = true;
  r.packet_limit = 5;
  r.inspects_all_packets = false;
  r.port_sensitive = true;
  r.middlebox_hops = 8;
  r.replay_rounds = 75;
  r.bytes_replayed = 300 * 1024;
  r.virtual_seconds = 600;
  r.fields.push_back(MatchingField{0, 0, 3, to_bytes("GET")});
  r.fields.push_back(MatchingField{0, 22, 12, to_bytes("facebook.com")});
  return r;
}

TEST(ReportIo, RoundTripsEveryField) {
  auto r = sample_report();
  auto back = deserialize_report(serialize_report(r));
  ASSERT_TRUE(back.ok());
  const auto& b = back.value();
  EXPECT_EQ(b.position_sensitive, r.position_sensitive);
  EXPECT_EQ(b.packet_limit, r.packet_limit);
  EXPECT_EQ(b.inspects_all_packets, r.inspects_all_packets);
  EXPECT_EQ(b.port_sensitive, r.port_sensitive);
  EXPECT_EQ(b.middlebox_hops, r.middlebox_hops);
  EXPECT_EQ(b.replay_rounds, r.replay_rounds);
  ASSERT_EQ(b.fields.size(), 2u);
  EXPECT_EQ(to_string(BytesView(b.fields[1].content)), "facebook.com");
  EXPECT_EQ(b.fields[1].offset, 22u);
}

TEST(ReportIo, OptionalAbsenceSurvives) {
  CharacterizationReport r;
  r.inspects_all_packets = true;  // Iran-shaped: no limit, no hops
  auto back = deserialize_report(serialize_report(r));
  ASSERT_TRUE(back.ok());
  EXPECT_FALSE(back.value().packet_limit.has_value());
  EXPECT_FALSE(back.value().middlebox_hops.has_value());
  EXPECT_TRUE(back.value().inspects_all_packets);
}

TEST(ReportIo, RejectsGarbage) {
  EXPECT_FALSE(deserialize_report(BytesView(to_bytes("XXXX"))).ok());
  Bytes blob = serialize_report(sample_report());
  blob.resize(blob.size() - 5);
  EXPECT_FALSE(deserialize_report(blob).ok());
}

TEST(RuleCache, PublishAndLookup) {
  RuleCache cache;
  cache.publish("gfc", "economist", sample_report());
  EXPECT_EQ(cache.entries(), 1u);
  auto entry = cache.lookup("gfc", "economist");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->fields.size(), 2u);
  EXPECT_FALSE(cache.lookup("gfc", "other").has_value());
  // The shared blob is tiny compared to re-running characterization.
  EXPECT_LT(cache.entry_bytes("gfc", "economist").value(), 256u);
}

// The paper's sharing story end-to-end: user A pays the characterization
// cost against the censor, publishes; user B adopts the report and goes
// straight to evasion — zero characterization rounds.
TEST(RuleCache, SecondUserSkipsCharacterization) {
  RuleCache cache;
  auto app = trace::facebook_trace();

  {
    auto env = dpi::make_iran();
    ReplayRunner runner(*env);
    auto report = characterize_classifier(runner, app);
    ASSERT_FALSE(report.fields.empty());
    cache.publish("iran", app.app_name, report);
  }

  {
    auto env = dpi::make_iran();
    ReplayRunner runner(*env);
    auto adopted = cache.lookup("iran", app.app_name);
    ASSERT_TRUE(adopted.has_value());
    const int rounds_before = runner.rounds();
    EvasionEvaluator evaluator(runner, *adopted);
    TcpSegmentSplit split(false);
    auto outcome = evaluator.evaluate_one(split, app);
    EXPECT_TRUE(outcome.evaded);
    // Only the single evasion round ran; no blinding, no probing.
    EXPECT_EQ(runner.rounds() - rounds_before, 1);
  }
}

}  // namespace
}  // namespace liberate::core
