#include "core/evasion/shim.h"

#include <gtest/gtest.h>

#include "core/evasion/registry.h"
#include "netsim/network.h"
#include "stack/host.h"

namespace liberate::core {
namespace {

using namespace netsim;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

struct Rig {
  EventLoop loop;
  Network net{loop};
  std::unique_ptr<EvasionShim> shim;
  std::unique_ptr<Host> client;
  Host server;
  TapElement* tap;

  explicit Rig(Technique* technique, TechniqueContext ctx)
      : server(net.server_port(), ip_addr("10.9.9.9"),
               OsProfile::linux_profile()) {
    tap = &net.emplace<TapElement>("wire");
    shim = std::make_unique<EvasionShim>(net.client_port(), technique,
                                         std::move(ctx));
    client = std::make_unique<Host>(*shim, ip_addr("10.0.0.1"),
                                    OsProfile::linux_profile());
    net.attach_client(client.get());
    net.attach_server(&server);
  }
};

TechniqueContext ctx_with_snippet(std::string snippet) {
  TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes(snippet)};
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 1;
  return ctx;
}

const std::string kRequest =
    "GET /v HTTP/1.1\r\nHost: www.primevideo.com\r\nUA: x\r\n\r\n";

TEST(EvasionShim, PassThroughWithoutTechnique) {
  Rig rig(nullptr, ctx_with_snippet("primevideo"));
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(got, kRequest);
  EXPECT_EQ(rig.shim->packets_injected(), 0u);
}

TEST(EvasionShim, InertInjectionPrecedesFirstPayload) {
  InertInsertion inert(InertVariant::kWrongTcpChecksum);
  Rig rig(&inert, ctx_with_snippet("primevideo"));
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  rig.loop.run_until_idle();

  // The app stream is intact (the inert packet was dropped by the server OS).
  EXPECT_EQ(got, kRequest);
  EXPECT_EQ(rig.shim->packets_injected(), 1u);

  // On the wire: a crafted packet with the decoy payload right before the
  // real request, at the same sequence number.
  std::optional<std::size_t> crafted_at;
  std::optional<std::size_t> real_at;
  for (std::size_t i = 0; i < rig.tap->seen().size(); ++i) {
    auto p = parse_packet(rig.tap->seen()[i].datagram).value();
    if (p.ip.identification == kCraftedIpId) crafted_at = i;
    if (!real_at && to_string(p.app_payload()) == kRequest) real_at = i;
  }
  ASSERT_TRUE(crafted_at.has_value());
  ASSERT_TRUE(real_at.has_value());
  EXPECT_LT(*crafted_at, *real_at);
}

TEST(EvasionShim, SplitRewritesMatchingPacketOnly) {
  TcpSegmentSplit split(/*reversed=*/false);
  auto ctx = ctx_with_snippet("Host: www.primevideo.com");
  Rig rig(&split, std::move(ctx));
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(std::string_view(kRequest));
    conn.send(std::string_view("harmless follow-up"));
  });
  rig.loop.run_until_idle();

  // Reassembled correctly at the server despite the split.
  EXPECT_EQ(got, kRequest + std::string("harmless follow-up"));

  // No packet on the wire carries the full matching field.
  for (const auto& seen : rig.tap->seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (!p.is_tcp() || p.tcp->payload.empty()) continue;
    std::string payload = to_string(p.tcp->payload);
    EXPECT_EQ(payload.find("Host: www.primevideo.com"), std::string::npos);
  }
}

TEST(EvasionShim, ReversedSplitArrivesIntact) {
  TcpSegmentSplit split(/*reversed=*/true);
  Rig rig(&split, ctx_with_snippet("Host: www.primevideo.com"));
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(got, kRequest);  // server reassembles out-of-order segments
}

TEST(EvasionShim, FragmentedMatchingPacketReassembledByServer) {
  IpFragmentSplit frag(/*reversed=*/false);
  Rig rig(&frag, ctx_with_snippet("Host: www.primevideo.com"));
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(got, kRequest);
  // Fragments were on the wire.
  std::size_t fragments = 0;
  for (const auto& seen : rig.tap->seen()) {
    auto p = parse_ipv4(seen.datagram).value();
    if (p.is_fragment()) ++fragments;
  }
  EXPECT_GE(fragments, 2u);
}

TEST(EvasionShim, RstBeforeMatchDoesNotBreakConnection) {
  RstBeforeMatch rst;
  auto ctx = ctx_with_snippet("Host: www.primevideo.com");
  ctx.middlebox_ttl = 1;  // would die at the first router; here: none, so it
                          // reaches the server — the in-window RST must still
                          // not kill the real connection... it would. Use a
                          // router to absorb it instead.
  EventLoop loop;
  Network net{loop};
  net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  auto shim = std::make_unique<EvasionShim>(net.client_port(), &rst, ctx);
  Host client(*shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  loop.run_until_idle();
  EXPECT_EQ(got, kRequest);
  EXPECT_FALSE(conn.was_reset());
}

TEST(EvasionShim, UdpSwapReordersFirstTwoPackets) {
  UdpReorder reorder;
  TechniqueContext ctx;
  Rig rig(&reorder, std::move(ctx));
  std::vector<std::string> order;
  auto& srv = rig.server.udp_bind(3478);
  srv.on_receive([&](const stack::UdpSocket::Incoming& in) {
    order.push_back(to_string(BytesView(in.payload)));
  });
  auto& cli = rig.client->udp_bind(5000);
  cli.send_to(ip_addr("10.9.9.9"), 3478, BytesView(to_bytes("first")));
  cli.send_to(ip_addr("10.9.9.9"), 3478, BytesView(to_bytes("second")));
  cli.send_to(ip_addr("10.9.9.9"), 3478, BytesView(to_bytes("third")));
  rig.loop.run_until_idle();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], "second");
  EXPECT_EQ(order[1], "first");
  EXPECT_EQ(order[2], "third");
}

TEST(EvasionShim, MatchTtlOverrideOnlyHitsMatchingPackets) {
  EventLoop loop;
  Network net{loop};
  auto& tap = net.emplace<TapElement>("wire");
  auto shim = std::make_unique<EvasionShim>(net.client_port(), nullptr,
                                            ctx_with_snippet("SECRET"));
  shim->set_match_packet_ttl(5);
  Host client(*shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  server.tcp_listen(80, [](TcpConnection&) {});
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(std::string_view("innocuous"));
    conn.send(std::string_view("with SECRET inside"));
  });
  loop.run_until_idle();

  bool saw_ttl5_match = false;
  for (const auto& seen : tap.seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (!p.is_tcp() || p.tcp->payload.empty()) continue;
    std::string s = to_string(p.tcp->payload);
    if (s.find("SECRET") != std::string::npos) {
      EXPECT_EQ(p.ip.ttl, 5);
      EXPECT_FALSE(p.ip.bad_checksum);  // checksum kept consistent
      saw_ttl5_match = true;
    } else {
      EXPECT_EQ(p.ip.ttl, 64);
    }
  }
  EXPECT_TRUE(saw_ttl5_match);
}

TEST(EvasionShim, HotSwapMidFlowKeepsTechniqueAlive) {
  EventLoop loop;
  Network net{loop};
  auto& tap = net.emplace<TapElement>("wire");
  auto shim = std::make_unique<EvasionShim>(
      net.client_port(), nullptr,
      ctx_with_snippet("Host: www.primevideo.com"));
  shim->set_technique(std::make_unique<TcpSegmentSplit>(/*reversed=*/false));
  Host client(*shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80, 40001);
  conn.on_established([&] { conn.send(std::string_view(kRequest)); });
  loop.run_until_idle();
  EXPECT_EQ(got, kRequest);
  EXPECT_GT(shim->packets_rewritten(), 0u);  // the split happened

  // Mid-flow the control plane swaps techniques. The old TcpSegmentSplit is
  // destroyed right here; with the previous raw-pointer API the shim would
  // keep using a dangling pointer (caught under ASan).
  shim->set_technique(
      std::make_unique<InertInsertion>(InertVariant::kWrongTcpChecksum));
  const std::string tail = "tail: Host: www.primevideo.com\r\n";
  conn.send(std::string_view(tail));
  loop.run_until_idle();
  EXPECT_EQ(got, kRequest + tail);

  // A fresh flow after the swap sees the new technique's injection.
  auto& conn2 = client.tcp_connect(ip_addr("10.9.9.9"), 80, 40002);
  conn2.on_established([&] { conn2.send(std::string_view(kRequest)); });
  loop.run_until_idle();
  EXPECT_EQ(got, kRequest + tail + kRequest);
  EXPECT_EQ(shim->packets_injected(), 1u);
  bool saw_crafted = false;
  for (const auto& seen : tap.seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (p.ip.identification == kCraftedIpId) saw_crafted = true;
  }
  EXPECT_TRUE(saw_crafted);
}

TEST(EvasionShim, FlowChurnBeyondCapEvictsLru) {
  InertInsertion inert(InertVariant::kWrongTcpChecksum);
  Rig rig(&inert, ctx_with_snippet("Host: www.primevideo.com"));
  rig.shim->set_max_flows(8);
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  for (int i = 0; i < 32; ++i) {
    auto& conn = rig.client->tcp_connect(
        ip_addr("10.9.9.9"), 80, static_cast<std::uint16_t>(41000 + i));
    conn.on_established([&conn] { conn.send(std::string_view(kRequest)); });
    rig.loop.run_until_idle();
  }
  // Every flow completed despite the churn (eviction only forgets state of
  // cold flows), the table stayed bounded, and the overflow was counted.
  EXPECT_EQ(got.size(), 32 * kRequest.size());
  EXPECT_EQ(rig.shim->tracked_flows(), 8u);
  EXPECT_EQ(rig.shim->flows_evicted(), 24u);
  EXPECT_EQ(rig.shim->packets_injected(), 32u);  // one injection per flow
}

// Eviction re-arrival regression: a flow whose shim state was LRU-evicted
// keeps sending. The re-arriving mid-stream packets must get fresh state
// with retransmission semantics — mutated-flow bookkeeping happened in the
// flow's first life, so replaying injections here would double-mutate the
// flow and double-count the technique's work.
TEST(EvasionShim, EvictedFlowReArrivalIsNotMutatedTwice) {
  InertInsertion inert(InertVariant::kWrongTcpChecksum);
  Rig rig(&inert, ctx_with_snippet("Host: www.primevideo.com"));
  rig.shim->set_max_flows(4);
  std::string got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });

  // Flow A completes its request: exactly one injection.
  auto& a = rig.client->tcp_connect(ip_addr("10.9.9.9"), 80, 43000);
  a.on_established([&a] { a.send(std::string_view(kRequest)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.shim->packets_injected(), 1u);

  // Churn 8 more flows through the 4-entry table: A's state is evicted.
  for (int i = 1; i <= 8; ++i) {
    auto& conn = rig.client->tcp_connect(
        ip_addr("10.9.9.9"), 80, static_cast<std::uint16_t>(43000 + i));
    conn.on_established([&conn] { conn.send(std::string_view(kRequest)); });
    rig.loop.run_until_idle();
  }
  EXPECT_EQ(rig.shim->packets_injected(), 9u);
  EXPECT_GE(rig.shim->flows_evicted(), 5u);

  // A re-arrives mid-stream with another matching payload. No SYN, so the
  // shim recognizes the resumed flow: transform-only, no fresh injection.
  const std::string tail = "tail: Host: www.primevideo.com\r\n";
  a.send(std::string_view(tail));
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.shim->packets_injected(), 9u);
  EXPECT_EQ(got.size(), 9 * kRequest.size() + tail.size());

  // Exact-repro check on the wire: flow A (src port 43000) saw exactly one
  // crafted packet, from its first life.
  std::size_t crafted_for_a = 0;
  for (const auto& seen : rig.tap->seen()) {
    auto p = parse_packet(seen.datagram).value();
    if (p.ip.identification == kCraftedIpId && p.tcp &&
        p.tcp->src_port == 43000) {
      ++crafted_for_a;
    }
  }
  EXPECT_EQ(crafted_for_a, 1u);
}

// Hot-swap during eviction churn: swapping the technique while the table
// is churning at max_flows must not attribute evicted flows' traffic to the
// new technique's counters. 16 flows interleave through a 4-entry table; the
// swap lands in the middle; the first cohort's resumed packets afterwards
// are transform-only under the new technique.
TEST(EvasionShim, HotSwapDuringEvictionChurnDoesNotPolluteCounters) {
  EventLoop loop;
  Network net{loop};
  net.emplace<TapElement>("wire");
  auto shim = std::make_unique<EvasionShim>(
      net.client_port(), nullptr,
      ctx_with_snippet("Host: www.primevideo.com"));
  shim->set_max_flows(4);
  shim->set_technique(
      std::make_unique<InertInsertion>(InertVariant::kWrongTcpChecksum));
  Host client(*shim, ip_addr("10.0.0.1"), OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });

  // First cohort: 8 flows under InertInsertion — one injection each, and
  // all but the 4 hottest evicted by the churn.
  std::vector<TcpConnection*> first_cohort;
  for (int i = 0; i < 8; ++i) {
    auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80,
                                    static_cast<std::uint16_t>(44000 + i));
    conn.on_established([&conn] { conn.send(std::string_view(kRequest)); });
    first_cohort.push_back(&conn);
    loop.run_until_idle();
  }
  EXPECT_EQ(shim->packets_injected(), 8u);
  EXPECT_EQ(shim->tracked_flows(), 4u);

  // Swap at max_flows_: the incoming technique starts with clean counters
  // semantics — nothing the evicted flows do later may count against it.
  shim->set_technique(std::make_unique<TcpSegmentSplit>(/*reversed=*/false));

  // Second cohort: 8 flows under the split — these DO count.
  for (int i = 8; i < 16; ++i) {
    auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80,
                                    static_cast<std::uint16_t>(44000 + i));
    conn.on_established([&conn] { conn.send(std::string_view(kRequest)); });
    loop.run_until_idle();
  }
  const std::uint64_t rewritten_after_second = shim->packets_rewritten();
  EXPECT_GT(rewritten_after_second, 0u);

  // Every first-cohort flow re-arrives mid-stream (all were evicted during
  // the second cohort's churn). Their matching tails are transformed so the
  // stream still evades, but neither counter moves: the traffic belongs to
  // flows mutated in a previous technique era.
  const std::string tail = "tail: Host: www.primevideo.com\r\n";
  for (TcpConnection* conn : first_cohort) {
    conn->send(std::string_view(tail));
    loop.run_until_idle();
  }
  EXPECT_EQ(shim->packets_injected(), 8u);
  EXPECT_EQ(shim->packets_rewritten(), rewritten_after_second);
  EXPECT_EQ(got.size(), 16 * kRequest.size() + 8 * tail.size());
}

}  // namespace
}  // namespace liberate::core
