#include <gtest/gtest.h>

#include "core/evasion/registry.h"
#include "netsim/validation.h"

namespace liberate::core {
namespace {

using namespace netsim;

TEST(SplitPlan, CutsEveryFieldAndLeadsWithTinyPieces) {
  // Payload of 100 bytes with a field at [40, 60).
  auto lengths = split_plan(100, {{40, 60}}, 10);
  ASSERT_GE(lengths.size(), 2u);
  std::size_t total = 0;
  for (auto l : lengths) total += l;
  EXPECT_EQ(total, 100u);
  // First pieces are 1 byte each.
  EXPECT_EQ(lengths[0], 1u);
  EXPECT_EQ(lengths[1], 1u);
  // A boundary falls strictly inside the field (at its midpoint, 50).
  std::size_t offset = 0;
  bool cut_inside_field = false;
  for (auto l : lengths) {
    offset += l;
    if (offset > 40 && offset < 60) cut_inside_field = true;
  }
  EXPECT_TRUE(cut_inside_field);
}

TEST(SplitPlan, RespectsPieceCap) {
  auto lengths = split_plan(1000, {{100, 130}, {500, 530}, {900, 930}}, 4);
  EXPECT_LE(lengths.size(), 4u);
  // Field cuts survive the cap.
  std::size_t offset = 0;
  int cuts_in_fields = 0;
  for (auto l : lengths) {
    offset += l;
    if ((offset > 100 && offset < 130) || (offset > 500 && offset < 530) ||
        (offset > 900 && offset < 930)) {
      ++cuts_in_fields;
    }
  }
  EXPECT_EQ(cuts_in_fields, 3);
}

TEST(SplitPlan, TinyPayloadDegradesGracefully) {
  EXPECT_EQ(split_plan(1, {}, 10).size(), 1u);
  auto lengths = split_plan(3, {{0, 3}}, 10);
  std::size_t total = 0;
  for (auto l : lengths) total += l;
  EXPECT_EQ(total, 3u);
}

TEST(MatchingRanges, FindsSnippetOffsets) {
  Bytes payload = to_bytes("GET / HTTP/1.1\r\nHost: example.com\r\n");
  std::vector<Bytes> snippets = {to_bytes("example.com"), to_bytes("GET")};
  auto ranges = matching_ranges(payload, snippets);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_TRUE(contains_matching_field(payload, snippets));
  EXPECT_FALSE(contains_matching_field(to_bytes("nothing here"), snippets));
  EXPECT_FALSE(contains_matching_field({}, snippets));
}

TEST(Registry, FullSuiteCoversTable3Rows) {
  auto suite = build_full_suite();
  // 17 inert + 2 split + 3 reorder + 4 flush = 26 techniques.
  EXPECT_EQ(suite.size(), 26u);
  int inert = 0, split = 0, reorder = 0, flush = 0;
  for (const auto& t : suite) {
    switch (t->category()) {
      case Category::kInertInsertion: ++inert; break;
      case Category::kPayloadSplitting: ++split; break;
      case Category::kPayloadReordering: ++reorder; break;
      case Category::kClassificationFlushing: ++flush; break;
    }
  }
  EXPECT_EQ(inert, 17);
  EXPECT_EQ(split, 2);
  EXPECT_EQ(reorder, 3);
  EXPECT_EQ(flush, 4);
}

TEST(Registry, PruningDropsInertAndFlushForInspectAllClassifiers) {
  auto suite = build_full_suite();
  PruningFacts facts;
  facts.inspects_all_packets = true;
  auto ordered = ordered_suite(suite, facts);
  for (const Technique* t : ordered) {
    EXPECT_NE(t->category(), Category::kInertInsertion) << t->name();
    EXPECT_NE(t->category(), Category::kClassificationFlushing) << t->name();
  }
  EXPECT_FALSE(ordered.empty());  // splitting/reordering remain
}

TEST(Registry, UdpFlowGetsUdpTechniquesOnly) {
  auto suite = build_full_suite();
  PruningFacts facts;
  facts.udp_flow = true;
  auto ordered = ordered_suite(suite, facts);
  EXPECT_FALSE(ordered.empty());
  for (const Technique* t : ordered) {
    EXPECT_TRUE(t->applies_to_udp()) << t->name();
  }
}

TEST(Registry, OrderingPutsCheapReorderingFirst) {
  auto suite = build_full_suite();
  auto ordered = ordered_suite(suite, PruningFacts{});
  ASSERT_FALSE(ordered.empty());
  EXPECT_EQ(ordered.front()->category(), Category::kPayloadReordering);
}

TEST(Inert, EachTcpVariantProducesItsAnomaly) {
  // Craft a reference flow packet, then check the inert packet for each
  // variant carries the right anomaly (or low TTL).
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.seq = 5000;
  tcp.flags = TcpFlags::kAck | TcpFlags::kPsh;
  Bytes real = make_tcp_datagram(ip, tcp, to_bytes("GET /real HTTP/1.1"));
  auto pkt = parse_packet(real).value();

  TechniqueContext ctx;
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 3;

  struct Expect {
    InertVariant variant;
    Anomaly anomaly;
  };
  const Expect cases[] = {
      {InertVariant::kInvalidIpVersion, Anomaly::kBadIpVersion},
      {InertVariant::kInvalidIpHeaderLength, Anomaly::kBadIpHeaderLength},
      {InertVariant::kIpTotalLengthLong, Anomaly::kIpTotalLengthLong},
      {InertVariant::kIpTotalLengthShort, Anomaly::kIpTotalLengthShort},
      {InertVariant::kWrongIpProtocol, Anomaly::kUnknownIpProtocol},
      {InertVariant::kWrongIpChecksum, Anomaly::kBadIpChecksum},
      {InertVariant::kInvalidIpOptions, Anomaly::kInvalidIpOptions},
      {InertVariant::kDeprecatedIpOptions, Anomaly::kDeprecatedIpOptions},
      {InertVariant::kWrongTcpChecksum, Anomaly::kBadTcpChecksum},
      {InertVariant::kTcpNoAckFlag, Anomaly::kTcpDataNoAck},
      {InertVariant::kInvalidTcpDataOffset, Anomaly::kBadTcpDataOffset},
      {InertVariant::kInvalidTcpFlagCombo, Anomaly::kInvalidTcpFlagCombo},
  };
  for (const auto& c : cases) {
    InertInsertion t(c.variant);
    FlowShimState state;
    auto out = t.inject_before_first_payload(pkt, state, ctx);
    ASSERT_EQ(out.size(), 1u) << t.name();
    auto crafted = parse_packet(out[0].datagram).value();
    EXPECT_TRUE(has_anomaly(anomalies_of(crafted), c.anomaly)) << t.name();
    // Stamped for RS? tracking.
    EXPECT_EQ(crafted.ip.identification, kCraftedIpId) << t.name();
  }
}

TEST(Inert, LowTtlVariantUsesMiddleboxTtl) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  tcp.seq = 777;
  Bytes real = make_tcp_datagram(ip, tcp, to_bytes("data"));
  auto pkt = parse_packet(real).value();

  TechniqueContext ctx;
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 7;
  InertInsertion t(InertVariant::kLowTtl);
  FlowShimState state;
  auto out = t.inject_before_first_payload(pkt, state, ctx);
  ASSERT_EQ(out.size(), 1u);
  auto crafted = parse_packet(out[0].datagram).value();
  EXPECT_EQ(crafted.ip.ttl, 7);
  EXPECT_EQ(anomalies_of(crafted), 0u);  // perfectly valid otherwise
  EXPECT_EQ(crafted.tcp->seq, 777u);     // sits at the real payload's seq
}

TEST(Inert, InjectsOnlyOnce) {
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes real = make_tcp_datagram(ip, tcp, to_bytes("x"));
  auto pkt = parse_packet(real).value();
  TechniqueContext ctx;
  ctx.decoy_payload = decoy_request_payload();
  InertInsertion t(InertVariant::kLowTtl);
  FlowShimState state;
  EXPECT_EQ(t.inject_before_first_payload(pkt, state, ctx).size(), 1u);
  EXPECT_EQ(t.inject_before_first_payload(pkt, state, ctx).size(), 0u);
}

TEST(Flush, TimingPlansMatchParameters) {
  TechniqueContext ctx;
  ctx.pause_seconds = 130;
  PauseBeforeMatch before;
  EXPECT_DOUBLE_EQ(before.timing(ctx).pause_before_match_s, 130.0);
  EXPECT_DOUBLE_EQ(before.timing(ctx).pause_after_match_s, 0.0);
  PauseAfterMatch after;
  EXPECT_DOUBLE_EQ(after.timing(ctx).pause_after_match_s, 130.0);
  RstAfterMatch rst;
  EXPECT_GT(rst.timing(ctx).pause_after_match_s, 10.0);
}

TEST(Decoy, PayloadMatchesBenignRuleShape) {
  Bytes d = decoy_request_payload();
  std::string s = to_string(d);
  EXPECT_EQ(s.rfind("GET ", 0), 0u);  // anchored-GET classifiers accept it
  EXPECT_NE(s.find("news-decoy.example.net"), std::string::npos);
}

}  // namespace
}  // namespace liberate::core
