// Control-plane unit tests: drift hysteresis, the adaptation state machine's
// legal edge set, and the fingerprint cache's JSON persistence.
#include <gtest/gtest.h>

#include <cstdio>
#include <limits>

#include "deploy/drift.h"
#include "deploy/fingerprint.h"
#include "deploy/policy.h"

namespace liberate::deploy {
namespace {

WaveStats wave(std::size_t flows, std::size_t differentiated,
               std::size_t blocked = 0, std::size_t incomplete = 0) {
  WaveStats w;
  w.flows = flows;
  w.differentiated = differentiated;
  w.blocked = blocked;
  w.incomplete = incomplete;
  return w;
}

DriftThresholds tight() {
  DriftThresholds t;
  t.waves_to_confirm = 2;
  t.waves_to_clear = 2;
  t.min_flows = 8;
  return t;
}

TEST(DriftMonitor, FirstAdequateWaveBecomesBaseline) {
  DriftMonitor monitor(tight());
  EXPECT_FALSE(monitor.has_baseline());
  EXPECT_FALSE(monitor.observe(wave(4, 4)).has_value());  // too small: ignored
  EXPECT_FALSE(monitor.has_baseline());
  EXPECT_FALSE(monitor.observe(wave(32, 0)).has_value());
  ASSERT_TRUE(monitor.has_baseline());
  EXPECT_EQ(monitor.baseline().flows, 32u);
}

TEST(DriftMonitor, ConfirmsAfterConsecutiveSuspectWaves) {
  DriftMonitor monitor(tight());
  monitor.observe(wave(32, 0));  // baseline
  EXPECT_FALSE(monitor.observe(wave(32, 16)).has_value());  // suspect #1
  EXPECT_EQ(monitor.suspect_streak(), 1);
  auto signal = monitor.observe(wave(32, 20));  // suspect #2 -> fire
  ASSERT_TRUE(signal.has_value());
  EXPECT_EQ(signal->kind, DriftKind::kDifferentiationReappeared);
  EXPECT_DOUBLE_EQ(signal->rate, 20.0 / 32.0);
  EXPECT_DOUBLE_EQ(signal->baseline, 0.0);
  EXPECT_EQ(signal->suspect_waves, 2);
  // One signal per confirmation: the streak reset with the signal.
  EXPECT_EQ(monitor.suspect_streak(), 0);
}

TEST(DriftMonitor, SuspicionSurvivesOneCleanWave) {
  DriftMonitor monitor(tight());
  monitor.observe(wave(32, 0));                             // baseline
  EXPECT_FALSE(monitor.observe(wave(32, 16)).has_value());  // suspect #1
  EXPECT_FALSE(monitor.observe(wave(32, 0)).has_value());   // clean (1 < 2)
  EXPECT_EQ(monitor.suspect_streak(), 1);                   // not reset yet
  EXPECT_TRUE(monitor.observe(wave(32, 16)).has_value());   // suspect #2
}

TEST(DriftMonitor, TransientSuspicionClearsAfterCleanStreak) {
  DriftMonitor monitor(tight());
  monitor.observe(wave(32, 0));                             // baseline
  EXPECT_FALSE(monitor.observe(wave(32, 16)).has_value());  // suspect #1
  monitor.observe(wave(32, 0));                             // clean #1
  monitor.observe(wave(32, 0));                             // clean #2: reset
  EXPECT_EQ(monitor.suspect_streak(), 0);
  EXPECT_FALSE(monitor.observe(wave(32, 16)).has_value());  // suspect anew
}

TEST(DriftMonitor, SlackAbsorbsNoiseAboveNonzeroBaseline) {
  DriftMonitor monitor(tight());
  monitor.observe(wave(32, 8));  // baseline rate 0.25
  // 0.40 < 0.25 + 0.20 slack: not suspect.
  EXPECT_FALSE(monitor.observe(wave(32, 13)).has_value());
  EXPECT_EQ(monitor.suspect_streak(), 0);
}

TEST(DriftMonitor, TypedKindsForBlockingAndCompletion) {
  DriftMonitor blocking(tight());
  blocking.observe(wave(32, 0));
  blocking.observe(wave(32, 0, /*blocked=*/16, /*incomplete=*/16));
  auto sig = blocking.observe(wave(32, 0, 16, 16));
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->kind, DriftKind::kBlockingSurge);  // stronger than collapse

  DriftMonitor collapse(tight());
  collapse.observe(wave(32, 0));
  collapse.observe(wave(32, 0, 0, /*incomplete=*/20));
  sig = collapse.observe(wave(32, 0, 0, 20));
  ASSERT_TRUE(sig.has_value());
  EXPECT_EQ(sig->kind, DriftKind::kCompletionCollapse);
}

TEST(DriftMonitor, RebaselineForgetsHistory) {
  DriftMonitor monitor(tight());
  monitor.observe(wave(32, 0));
  monitor.observe(wave(32, 16));
  monitor.rebaseline();
  EXPECT_FALSE(monitor.has_baseline());
  EXPECT_EQ(monitor.suspect_streak(), 0);
  // The elevated rate is the new normal after re-deployment.
  EXPECT_FALSE(monitor.observe(wave(32, 16)).has_value());  // new baseline
  EXPECT_FALSE(monitor.observe(wave(32, 18)).has_value());  // within slack
}

TEST(AdaptationPolicy, RejectsIllegalEdges) {
  AdaptationPolicy policy;
  EXPECT_EQ(policy.state(), DeployState::kDeployed);
  // deployed can only go suspect.
  EXPECT_FALSE(policy.transition(DeployState::kReVerifying, 0, "skip", 0));
  EXPECT_FALSE(policy.transition(DeployState::kReDeployed, 0, "skip", 0));
  EXPECT_EQ(policy.state(), DeployState::kDeployed);
  EXPECT_TRUE(policy.transitions().empty());

  EXPECT_TRUE(policy.transition(DeployState::kSuspect, 1, "drift", 0));
  // suspect cannot jump straight to re-analyzing.
  EXPECT_FALSE(policy.transition(DeployState::kReAnalyzing, 1, "skip", 0));
  EXPECT_TRUE(policy.transition(DeployState::kReVerifying, 1, "confirmed", 0));
  EXPECT_TRUE(policy.transition(DeployState::kReAnalyzing, 1, "mismatch", 0));
  // re-analyzing only settles via re-deployed.
  EXPECT_FALSE(policy.transition(DeployState::kDeployed, 1, "skip", 0));
  EXPECT_TRUE(policy.transition(DeployState::kReDeployed, 1, "fresh", 0));
  EXPECT_TRUE(policy.transition(DeployState::kDeployed, 2, "settled", 0));
  EXPECT_EQ(policy.transitions().size(), 5u);
}

TEST(AdaptationPolicy, DescribeRendersOneLinePerEdge) {
  AdaptationPolicy policy;
  policy.transition(DeployState::kSuspect, 3, "drift-suspect", 0);
  policy.transition(DeployState::kDeployed, 4, "cleared", 0);
  EXPECT_EQ(policy.describe(),
            "deployed->suspect@3 drift-suspect\n"
            "suspect->deployed@4 cleared\n");
}

CachedCharacterization sample_entry() {
  CachedCharacterization e;
  e.environment = "testbed";
  e.app = "AmazonPrimeVideo";
  e.digest = Fingerprint{0x0123456789abcdefull, 0xfedcba9876543210ull};
  core::MatchingField f;
  f.message_index = 0;
  f.offset = 4;
  f.length = 5;
  f.content = Bytes{'H', 'o', 's', 't', 0xff};  // non-ASCII survives hex
  e.fields.push_back(f);
  e.position_sensitive = true;
  e.inspects_all_packets = false;
  e.port_sensitive = false;
  e.packet_limit = 5;
  e.middlebox_hops = 1;
  e.ranking.push_back({"reorder/ip-fragments-out-of-order", 1, 20, 0.0});
  e.ranking.push_back({"split/tcp-segmentation", 9, 360, 0.25});
  return e;
}

TEST(FingerprintCache, JsonRoundTripPreservesEverything) {
  ClassifierFingerprintCache cache;
  cache.store(sample_entry());

  auto parsed = ClassifierFingerprintCache::from_json(cache.to_json());
  ASSERT_TRUE(parsed.has_value());
  const CachedCharacterization* e =
      parsed->lookup("testbed", "AmazonPrimeVideo");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->digest.lo, 0x0123456789abcdefull);
  EXPECT_EQ(e->digest.hi, 0xfedcba9876543210ull);
  ASSERT_EQ(e->fields.size(), 1u);
  EXPECT_EQ(e->fields[0].message_index, 0u);
  EXPECT_EQ(e->fields[0].offset, 4u);
  EXPECT_EQ(e->fields[0].length, 5u);
  EXPECT_EQ(e->fields[0].content, (Bytes{'H', 'o', 's', 't', 0xff}));
  EXPECT_TRUE(e->position_sensitive);
  ASSERT_TRUE(e->packet_limit.has_value());
  EXPECT_EQ(*e->packet_limit, 5u);
  ASSERT_TRUE(e->middlebox_hops.has_value());
  EXPECT_EQ(*e->middlebox_hops, 1);
  ASSERT_EQ(e->ranking.size(), 2u);
  EXPECT_EQ(e->ranking[0].name, "reorder/ip-fragments-out-of-order");
  EXPECT_EQ(e->ranking[1].extra_packets, 9u);
  EXPECT_DOUBLE_EQ(e->ranking[1].extra_seconds, 0.25);

  // Determinism: a round-tripped cache re-serializes byte-identically.
  EXPECT_EQ(parsed->to_json(), cache.to_json());
}

TEST(FingerprintCache, NulloptOptionalsRoundTrip) {
  CachedCharacterization e = sample_entry();
  e.packet_limit.reset();
  e.middlebox_hops.reset();
  ClassifierFingerprintCache cache;
  cache.store(e);
  auto parsed = ClassifierFingerprintCache::from_json(cache.to_json());
  ASSERT_TRUE(parsed.has_value());
  const CachedCharacterization* got =
      parsed->lookup("testbed", "AmazonPrimeVideo");
  ASSERT_NE(got, nullptr);
  EXPECT_FALSE(got->packet_limit.has_value());
  EXPECT_FALSE(got->middlebox_hops.has_value());
}

TEST(FingerprintCache, RejectsMalformedJson) {
  EXPECT_FALSE(ClassifierFingerprintCache::from_json("").has_value());
  EXPECT_FALSE(ClassifierFingerprintCache::from_json("[]").has_value());
  EXPECT_FALSE(
      ClassifierFingerprintCache::from_json("{\"version\":2}").has_value());
  // Digest must be the 33-char hex form.
  EXPECT_FALSE(ClassifierFingerprintCache::from_json(
                   "{\"version\":1,\"entries\":[{\"environment\":\"e\","
                   "\"app\":\"a\",\"digest\":\"nope\"}]}")
                   .has_value());
}

TEST(FingerprintCache, SaveAndLoadFile) {
  ClassifierFingerprintCache cache;
  cache.store(sample_entry());
  const std::string path =
      testing::TempDir() + "/liberate_fingerprint_cache_test.json";
  ASSERT_TRUE(cache.save(path));
  auto loaded = ClassifierFingerprintCache::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
  EXPECT_EQ(loaded->to_json(), cache.to_json());
  EXPECT_FALSE(
      ClassifierFingerprintCache::load(path + ".missing").has_value());
}

fingerprint::AmbiguityDigest sample_digest(std::uint32_t tcp_bits) {
  fingerprint::AmbiguityDigest d;
  d.add({"frag-overlap", 0xaa, 4});
  d.add({"tcp-overlap", tcp_bits, 3});
  return d;
}

TEST(FingerprintCache, AmbiguityDigestRoundTrips) {
  CachedCharacterization e = sample_entry();
  e.ambiguity = sample_digest(0x39);
  ClassifierFingerprintCache cache;
  cache.store(e);

  auto parsed = ClassifierFingerprintCache::from_json(cache.to_json());
  ASSERT_TRUE(parsed.has_value());
  const CachedCharacterization* got =
      parsed->lookup("testbed", "AmazonPrimeVideo");
  ASSERT_NE(got, nullptr);
  ASSERT_TRUE(got->ambiguity.has_value());
  EXPECT_EQ(*got->ambiguity, *e.ambiguity);
  EXPECT_EQ(got->ambiguity->fingerprint_hex(),
            e.ambiguity->fingerprint_hex());
  EXPECT_EQ(parsed->to_json(), cache.to_json());
}

TEST(FingerprintCache, PreAmbiguityCachesInvalidateCleanly) {
  // Positive control: the minimal v2 shape parses.
  EXPECT_TRUE(ClassifierFingerprintCache::from_json(
                  "{\"version\":2,\"digest_format\":\"ambiguity/v1\","
                  "\"entries\":[]}")
                  .has_value());
  // A v1 file (pre-ambiguity schema) degrades to a cold start.
  EXPECT_FALSE(ClassifierFingerprintCache::from_json(
                   "{\"version\":1,\"digest_format\":\"ambiguity/v1\","
                   "\"entries\":[]}")
                   .has_value());
  // Missing or mismatched digest format: entries were probed with a
  // different digest revision and must not feed nearest-fingerprint matching.
  EXPECT_FALSE(
      ClassifierFingerprintCache::from_json("{\"version\":2,\"entries\":[]}")
          .has_value());
  ClassifierFingerprintCache cache;
  CachedCharacterization e = sample_entry();
  e.ambiguity = sample_digest(0x39);
  cache.store(e);
  std::string stale = cache.to_json();
  const std::size_t at = stale.find("ambiguity/v1");
  ASSERT_NE(at, std::string::npos);
  stale.replace(at, 12, "ambiguity/v0");
  EXPECT_FALSE(ClassifierFingerprintCache::from_json(stale).has_value());
}

TEST(FingerprintCache, NearestByAmbiguitySelectsClosestWithinBound) {
  ClassifierFingerprintCache cache;
  CachedCharacterization a = sample_entry();
  a.environment = "alpha";
  a.ambiguity = sample_digest(0x39);
  CachedCharacterization b = sample_entry();
  b.environment = "beta";
  b.ambiguity = sample_digest(0x3f);
  CachedCharacterization c = sample_entry();
  c.environment = "gamma";  // no digest: never a nearest-match candidate
  cache.store(a);
  cache.store(b);
  cache.store(c);

  // 0x38 is 1 bit from alpha's tcp-overlap bits, 3 from beta's.
  auto [hit, dist] =
      cache.nearest_by_ambiguity(sample_digest(0x38), "AmazonPrimeVideo", 8);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->environment, "alpha");
  EXPECT_EQ(dist, 1u);

  // The bound is strict: distance 1 does not match max_distance 0.
  auto [miss, miss_dist] =
      cache.nearest_by_ambiguity(sample_digest(0x38), "AmazonPrimeVideo", 0);
  EXPECT_EQ(miss, nullptr);
  EXPECT_EQ(miss_dist, std::numeric_limits<std::size_t>::max());

  // Matching is per-app: another app's traffic never adopts this ranking.
  auto [other, other_dist] =
      cache.nearest_by_ambiguity(sample_digest(0x39), "OtherApp", 8);
  EXPECT_EQ(other, nullptr);
  (void)other_dist;
}

TEST(FingerprintDigest, SensitiveToFieldsAndQuirks) {
  core::CharacterizationReport a;
  core::MatchingField f;
  f.message_index = 0;
  f.offset = 4;
  f.length = 5;
  f.content = Bytes{'H', 'o', 's', 't', ':'};
  a.fields.push_back(f);
  a.position_sensitive = true;

  core::CharacterizationReport b = a;
  EXPECT_EQ(characterization_digest(a).lo, characterization_digest(b).lo);
  EXPECT_EQ(characterization_digest(a).hi, characterization_digest(b).hi);

  b.fields[0].offset = 5;
  EXPECT_NE(characterization_digest(a).lo, characterization_digest(b).lo);

  core::CharacterizationReport c = a;
  c.packet_limit = 5;
  EXPECT_NE(characterization_digest(a).lo, characterization_digest(c).lo);
}

}  // namespace
}  // namespace liberate::deploy
