// Snapshot-delta merge layer: sparse publishes must reconstruct per-wave
// stats exactly (the fleet's byte-identity contract rests on this), and the
// merger must reject malformed delta streams without mutating state.
#include "deploy/delta.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace liberate::deploy {
namespace {

ShardCounters counters_at(std::uint64_t flows, std::uint64_t diff,
                          std::uint64_t lat_sum, std::uint64_t lat_n) {
  ShardCounters c;
  c[ShardCounter::kFlows] = flows;
  c[ShardCounter::kDifferentiated] = diff;
  c[ShardCounter::kLatencyUsSum] = lat_sum;
  c[ShardCounter::kLatencySamples] = lat_n;
  return c;
}

TEST(FleetDelta, PublisherEmitsOnlyChangedSlots) {
  DeltaPublisher pub;
  FleetDelta first = pub.publish(0, 0, counters_at(8, 2, 1000, 6));
  EXPECT_EQ(first.changed.size(), 4u);  // four slots moved from zero

  // Same counters again: nothing moved, nothing shipped.
  FleetDelta second = pub.publish(0, 1, counters_at(8, 2, 1000, 6));
  EXPECT_TRUE(second.changed.empty());

  // One slot moves -> one entry, ascending slot order preserved.
  FleetDelta third = pub.publish(0, 2, counters_at(16, 2, 1000, 6));
  ASSERT_EQ(third.changed.size(), 1u);
  EXPECT_EQ(third.changed[0].first,
            static_cast<std::uint8_t>(ShardCounter::kFlows));
  EXPECT_EQ(third.changed[0].second, 16u);
}

TEST(FleetDelta, SparseStreamReconstructsWaveStatsExactly) {
  // A healthy-fleet counter walk: flows and latency move every wave, the
  // failure slots only sometimes. The sparse stream must reconstruct the
  // same per-wave WaveStats a dense merge would.
  DeltaPublisher pub;
  DeltaMerger sparse(1);
  DeltaMerger dense(1);

  ShardCounters cum;
  std::vector<ShardCounters> history{cum};
  for (std::uint32_t wave = 0; wave < 10; ++wave) {
    cum[ShardCounter::kFlows] += 8;
    cum[ShardCounter::kLatencyUsSum] += 100000 + wave * 7;
    cum[ShardCounter::kLatencySamples] += 8;
    if (wave % 3 == 0) cum[ShardCounter::kDifferentiated] += 2;
    if (wave % 4 == 1) cum[ShardCounter::kBlocked] += 1;

    WaveStats from_sparse;
    ASSERT_TRUE(sparse.apply(pub.publish(0, wave, cum), &from_sparse));

    FleetDelta full;
    full.shard = 0;
    full.wave = wave;
    for (std::size_t s = 0; s < kShardCounterCount; ++s) {
      full.changed.emplace_back(static_cast<std::uint8_t>(s), cum.v[s]);
    }
    WaveStats from_dense;
    ASSERT_TRUE(dense.apply(full, &from_dense));

    const WaveStats expect = wave_stats_between(history.back(), cum);
    EXPECT_EQ(from_sparse.flows, expect.flows);
    EXPECT_EQ(from_sparse.differentiated, expect.differentiated);
    EXPECT_EQ(from_sparse.blocked, expect.blocked);
    EXPECT_EQ(from_sparse.incomplete, expect.incomplete);
    EXPECT_EQ(from_sparse.latency_us_sum, expect.latency_us_sum);
    EXPECT_EQ(from_sparse.latency_samples, expect.latency_samples);
    EXPECT_EQ(from_dense.flows, from_sparse.flows);
    EXPECT_EQ(from_dense.latency_us_sum, from_sparse.latency_us_sum);
    history.push_back(cum);
  }

  // Totals agree with the final cumulative block, and the sparse stream
  // shipped strictly fewer entries than the dense one.
  EXPECT_EQ(sparse.total(0, ShardCounter::kFlows), 80u);
  EXPECT_EQ(sparse.total(0, ShardCounter::kFlows),
            dense.total(0, ShardCounter::kFlows));
  EXPECT_LT(sparse.entries_shipped(), dense.entries_shipped());
  EXPECT_EQ(dense.entries_shipped(), dense.entries_full_equivalent());
}

TEST(FleetDelta, WaveDeltaExposesPerWaveMovement) {
  DeltaPublisher pub;
  DeltaMerger merger(2);
  ShardCounters cum;
  cum[ShardCounter::kFaultsInjected] = 5;
  cum[ShardCounter::kFlowsEvicted] = 2;
  ASSERT_TRUE(merger.apply(pub.publish(1, 0, cum), nullptr));
  EXPECT_EQ(merger.wave_delta(1, ShardCounter::kFaultsInjected), 5u);
  cum[ShardCounter::kFaultsInjected] = 9;
  ASSERT_TRUE(merger.apply(pub.publish(1, 1, cum), nullptr));
  EXPECT_EQ(merger.wave_delta(1, ShardCounter::kFaultsInjected), 4u);
  EXPECT_EQ(merger.wave_delta(1, ShardCounter::kFlowsEvicted), 0u);
  EXPECT_EQ(merger.total(1, ShardCounter::kFaultsInjected), 9u);
  // The untouched shard stays at zero.
  EXPECT_EQ(merger.total(0, ShardCounter::kFaultsInjected), 0u);
}

TEST(FleetDelta, MalformedDeltasAreRejectedWithoutMutation) {
  DeltaMerger merger(2);
  DeltaPublisher pub;
  ShardCounters cum = counters_at(10, 1, 500, 9);
  ASSERT_TRUE(merger.apply(pub.publish(0, 0, cum), nullptr));

  auto entry = [](ShardCounter c, std::uint64_t v) {
    return std::pair<std::uint8_t, std::uint64_t>(
        static_cast<std::uint8_t>(c), v);
  };

  // Unknown shard.
  FleetDelta bad;
  bad.shard = 7;
  bad.changed = {entry(ShardCounter::kFlows, 11)};
  EXPECT_FALSE(merger.apply(bad, nullptr));

  // Slot out of range.
  bad.shard = 0;
  bad.changed = {{static_cast<std::uint8_t>(kShardCounterCount), 1}};
  EXPECT_FALSE(merger.apply(bad, nullptr));

  // Unordered (and duplicate) slots.
  bad.changed = {entry(ShardCounter::kBlocked, 2),
                 entry(ShardCounter::kFlows, 11)};
  EXPECT_FALSE(merger.apply(bad, nullptr));
  bad.changed = {entry(ShardCounter::kFlows, 11),
                 entry(ShardCounter::kFlows, 12)};
  EXPECT_FALSE(merger.apply(bad, nullptr));

  // Non-monotone cumulative value — even when a later entry is valid, the
  // whole delta is rejected atomically.
  bad.changed = {entry(ShardCounter::kFlows, 9),
                 entry(ShardCounter::kBlocked, 3)};
  EXPECT_FALSE(merger.apply(bad, nullptr));
  EXPECT_EQ(merger.total(0, ShardCounter::kFlows), 10u);
  EXPECT_EQ(merger.total(0, ShardCounter::kBlocked), 0u);
  EXPECT_EQ(merger.deltas_applied(), 1u);
}

TEST(FleetDelta, CounterNamesCoverEverySlot) {
  for (std::size_t s = 0; s < kShardCounterCount; ++s) {
    EXPECT_STRNE(shard_counter_name(static_cast<ShardCounter>(s)), "?");
  }
}

}  // namespace
}  // namespace liberate::deploy
