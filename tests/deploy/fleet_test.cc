// Fleet soak: thousands of live flows across sharded worlds under
// adversarial path faults, with a scripted classifier change mid-run — the
// control plane must detect the drift, re-characterize incrementally, and
// hot-swap every shard's shim, all byte-identically for any worker count.
#include <gtest/gtest.h>

#include <set>

#include "deploy/fleet.h"
#include "dpi/match_program.h"
#include "dpi/normalizer.h"
#include "obs/snapshot.h"
#include "trace/generators.h"

namespace liberate::deploy {
namespace {

FleetOptions soak_options() {
  FleetOptions opts;
  opts.shards = 8;
  opts.flows_per_wave = 16;
  opts.waves = 8;
  opts.faults = netsim::FaultPolicy::adversarial();
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  return opts;
}

std::vector<std::pair<DeployState, DeployState>> edges(
    const FleetReport& report) {
  std::vector<std::pair<DeployState, DeployState>> out;
  for (const StateTransition& t : report.transitions) {
    out.emplace_back(t.from, t.to);
  }
  return out;
}

TEST(FleetSoak, AdversarialDriftTriggersIncrementalReadapt) {
  obs::reset_all();
  FleetOptions opts = soak_options();
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

  // Scale: >= 1k flows actually ran, through a hostile path.
  EXPECT_EQ(report.totals.flows, 8u * 16u * 8u);
  EXPECT_GE(report.totals.flows, 1000u);
  EXPECT_GT(report.faults_injected, 0u);

  // The deployed technique worked until the countermeasure landed.
  EXPECT_FALSE(report.technique_initial.empty());
  EXPECT_GT(report.initial_analysis_rounds, 10);

  // Drift confirmed, exactly one re-adaptation, on the cheap path: the rule
  // set did not change, only fragment handling did, so the cached
  // fingerprint verifies and the ranking yields the next technique.
  EXPECT_EQ(report.readapts, 1u);
  bool saw_verified_cached = false;
  for (const FleetWaveReport& w : report.waves) {
    if (w.readapt_path) {
      EXPECT_EQ(*w.readapt_path, ReadaptPath::kVerifiedCached);
      saw_verified_cached = true;
    }
  }
  EXPECT_TRUE(saw_verified_cached);
  EXPECT_NE(report.technique_final, report.technique_initial);
  EXPECT_FALSE(report.technique_final.empty());

  // Acceptance criterion: incremental re-characterization at < 25% of the
  // full-analysis probe cost.
  EXPECT_LT(report.readapt_rounds * 4, report.initial_analysis_rounds);

  // Full state-machine walk, in order: deployed -> suspect -> re-verifying
  // -> re-deployed -> deployed (and nothing through re-analyzing).
  const auto got = edges(report);
  const std::vector<std::pair<DeployState, DeployState>> want = {
      {DeployState::kDeployed, DeployState::kSuspect},
      {DeployState::kSuspect, DeployState::kReVerifying},
      {DeployState::kReVerifying, DeployState::kReDeployed},
      {DeployState::kReDeployed, DeployState::kDeployed},
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(report.waves.back().state_after, DeployState::kDeployed);

#if LIBERATE_OBS_LEVEL >= 2
  // The adaptation story is in the flight recorder: event log...
  const auto events = obs::EventLog::instance().snapshot();
  auto total = [&](const std::string& key) {
    auto it = events.totals.find(key);
    return it == events.totals.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(total("deploy.state_transition"), 4u);
  EXPECT_EQ(total("deploy.readapt"), 1u);
  EXPECT_GT(total("deploy.wave_done"), 0u);

  // ...and the provenance ledger, under the synthetic control-plane flow.
  obs::prov::FlowKey control;
  control.ip_a = 0x0a000001;
  control.valid = true;
  const auto ledgers =
      obs::prov::ProvenanceRecorder::instance().ledgers_for(control);
  std::size_t transitions_recorded = 0;
  for (const auto& ledger : ledgers) {
    for (const auto& rec : ledger.records) {
      if (rec.kind == "deploy-transition") ++transitions_recorded;
    }
  }
  EXPECT_EQ(transitions_recorded, 4u);
#endif
}

TEST(FleetSoak, TransientFaultsNeverTriggerReadapt) {
  // Same hostile path, no classifier change: hysteresis and slack must keep
  // the fleet out of re-characterization entirely.
  FleetOptions opts = soak_options();
  opts.shards = 4;
  opts.waves = 6;
  opts.change_at_wave = static_cast<std::size_t>(-1);
  opts.classifier_change = nullptr;
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

  EXPECT_EQ(report.readapts, 0u);
  EXPECT_EQ(report.technique_final, report.technique_initial);
  for (const StateTransition& t : report.transitions) {
    EXPECT_NE(t.to, DeployState::kReVerifying)
        << "fault noise escalated to verification probes";
  }
}

TEST(FleetSoak, WarmCacheSkipsInitialAnalysis) {
  ClassifierFingerprintCache cache;
  FleetOptions opts;
  opts.shards = 2;
  opts.flows_per_wave = 8;
  opts.waves = 2;
  opts.cache = &cache;

  FleetEngine cold(opts);
  FleetReport first = cold.run(trace::amazon_video_trace(8 * 1024));
  EXPECT_FALSE(first.initial_from_cache);
  EXPECT_GT(first.initial_analysis_rounds, 0);
  EXPECT_EQ(cache.size(), 1u);

  FleetEngine warm(opts);
  FleetReport second = warm.run(trace::amazon_video_trace(8 * 1024));
  EXPECT_TRUE(second.initial_from_cache);
  EXPECT_EQ(second.initial_analysis_rounds, 0);
  EXPECT_EQ(second.technique_initial, first.technique_initial);
  // The cached knowledge deploys just as well: clean waves throughout.
  EXPECT_EQ(second.totals.differentiated, 0u);
}

TEST(FleetSoak, FlowTableCapEvictsAcrossWaves) {
  FleetOptions opts;
  opts.shards = 1;
  opts.flows_per_wave = 8;
  opts.waves = 8;
  opts.max_flows_per_shim = 8;
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(4 * 1024));
  // 64 distinct flows through an 8-entry table: each wave's cohort evicts
  // the previous wave's, and the churn must not disturb treatment.
  EXPECT_EQ(report.flows_evicted, 64u - 8u);
  EXPECT_EQ(report.totals.differentiated, 0u);
  EXPECT_EQ(report.totals.incomplete, 0u);
}

TEST(FleetDeterminism, SummaryByteIdenticalAcrossWorkerCounts) {
  auto run_with = [](std::size_t workers) {
    FleetOptions opts = soak_options();
    opts.shards = 4;
    opts.flows_per_wave = 8;
    opts.waves = 6;
    opts.workers = workers;
    FleetEngine engine(opts);
    return engine.run(trace::amazon_video_trace(8 * 1024)).summary();
  };
  const std::string serial = run_with(0);
  EXPECT_NE(serial.find("FLEET transition"), std::string::npos);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

// Fleet leg of the compiled-matcher equivalence contract: the summary is
// byte-identical across {reference, compiled} backends x {serial, 2, 8}
// workers — shards share compiled programs via the compile cache, and none
// of that sharing may leak into results.
TEST(FleetDeterminism, SummaryIdenticalAcrossMatchBackends) {
  struct BackendGuard {
    ~BackendGuard() { dpi::set_match_backend(dpi::MatchBackend::kCompiled); }
  } guard;
  auto run_with = [](std::size_t workers) {
    FleetOptions opts = soak_options();
    opts.shards = 4;
    opts.flows_per_wave = 8;
    opts.waves = 4;
    opts.workers = workers;
    FleetEngine engine(opts);
    return engine.run(trace::amazon_video_trace(8 * 1024)).summary();
  };
  dpi::set_match_backend(dpi::MatchBackend::kReference);
  const std::string reference = run_with(0);
  EXPECT_NE(reference.find("FLEET transition"), std::string::npos);
  EXPECT_EQ(reference, run_with(2));
  EXPECT_EQ(reference, run_with(8));
  dpi::set_match_backend(dpi::MatchBackend::kCompiled);
  EXPECT_EQ(reference, run_with(0));
  EXPECT_EQ(reference, run_with(2));
  EXPECT_EQ(reference, run_with(8));
}

}  // namespace
}  // namespace liberate::deploy
