// Fleet soak: thousands of live flows across sharded worlds under
// adversarial path faults, with a scripted classifier change mid-run — the
// control plane must detect the drift, re-characterize incrementally, and
// hot-swap every shard's shim, all byte-identically for any worker count.
#include <gtest/gtest.h>

#include <set>

#include "deploy/fleet.h"
#include "dpi/classifier.h"
#include "dpi/match_program.h"
#include "dpi/normalizer.h"
#include "dpi/profiles.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "trace/generators.h"

namespace liberate::deploy {
namespace {

FleetOptions soak_options() {
  FleetOptions opts;
  opts.shards = 8;
  opts.flows_per_wave = 16;
  opts.waves = 8;
  opts.faults = netsim::FaultPolicy::adversarial();
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  return opts;
}

std::vector<std::pair<DeployState, DeployState>> edges(
    const FleetReport& report) {
  std::vector<std::pair<DeployState, DeployState>> out;
  for (const StateTransition& t : report.transitions) {
    out.emplace_back(t.from, t.to);
  }
  return out;
}

TEST(FleetSoak, AdversarialDriftTriggersIncrementalReadapt) {
  obs::reset_all();
  FleetOptions opts = soak_options();
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

  // Scale: >= 1k flows actually ran, through a hostile path.
  EXPECT_EQ(report.totals.flows, 8u * 16u * 8u);
  EXPECT_GE(report.totals.flows, 1000u);
  EXPECT_GT(report.faults_injected, 0u);

  // The deployed technique worked until the countermeasure landed.
  EXPECT_FALSE(report.technique_initial.empty());
  EXPECT_GT(report.initial_analysis_rounds, 10);

  // Drift confirmed, exactly one re-adaptation, on the cheap path: the rule
  // set did not change, only fragment handling did, so the cached
  // fingerprint verifies and the ranking yields the next technique.
  EXPECT_EQ(report.readapts, 1u);
  bool saw_verified_cached = false;
  for (const FleetWaveReport& w : report.waves) {
    if (w.readapt_path) {
      EXPECT_EQ(*w.readapt_path, ReadaptPath::kVerifiedCached);
      saw_verified_cached = true;
    }
  }
  EXPECT_TRUE(saw_verified_cached);
  EXPECT_NE(report.technique_final, report.technique_initial);
  EXPECT_FALSE(report.technique_final.empty());

  // Acceptance criterion: incremental re-characterization at < 25% of the
  // full-analysis probe cost.
  EXPECT_LT(report.readapt_rounds * 4, report.initial_analysis_rounds);

  // Full state-machine walk, in order: deployed -> suspect -> re-verifying
  // -> re-deployed -> deployed (and nothing through re-analyzing).
  const auto got = edges(report);
  const std::vector<std::pair<DeployState, DeployState>> want = {
      {DeployState::kDeployed, DeployState::kSuspect},
      {DeployState::kSuspect, DeployState::kReVerifying},
      {DeployState::kReVerifying, DeployState::kReDeployed},
      {DeployState::kReDeployed, DeployState::kDeployed},
  };
  EXPECT_EQ(got, want);
  EXPECT_EQ(report.waves.back().state_after, DeployState::kDeployed);

#if LIBERATE_OBS_LEVEL >= 2
  // The adaptation story is in the flight recorder: event log...
  const auto events = obs::EventLog::instance().snapshot();
  auto total = [&](const std::string& key) {
    auto it = events.totals.find(key);
    return it == events.totals.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_EQ(total("deploy.state_transition"), 4u);
  EXPECT_EQ(total("deploy.readapt"), 1u);
  EXPECT_GT(total("deploy.wave_done"), 0u);

  // ...and the provenance ledger, under the synthetic control-plane flow.
  obs::prov::FlowKey control;
  control.ip_a = 0x0a000001;
  control.valid = true;
  const auto ledgers =
      obs::prov::ProvenanceRecorder::instance().ledgers_for(control);
  std::size_t transitions_recorded = 0;
  for (const auto& ledger : ledgers) {
    for (const auto& rec : ledger.records) {
      if (rec.kind == "deploy-transition") ++transitions_recorded;
    }
  }
  EXPECT_EQ(transitions_recorded, 4u);
#endif
}

TEST(FleetSoak, TransientFaultsNeverTriggerReadapt) {
  // Same hostile path, no classifier change: hysteresis and slack must keep
  // the fleet out of re-characterization entirely.
  FleetOptions opts = soak_options();
  opts.shards = 4;
  opts.waves = 6;
  opts.change_at_wave = static_cast<std::size_t>(-1);
  opts.classifier_change = nullptr;
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));

  EXPECT_EQ(report.readapts, 0u);
  EXPECT_EQ(report.technique_final, report.technique_initial);
  for (const StateTransition& t : report.transitions) {
    EXPECT_NE(t.to, DeployState::kReVerifying)
        << "fault noise escalated to verification probes";
  }
}

TEST(FleetSoak, WarmCacheSkipsInitialAnalysis) {
  ClassifierFingerprintCache cache;
  FleetOptions opts;
  opts.shards = 2;
  opts.flows_per_wave = 8;
  opts.waves = 2;
  opts.cache = &cache;

  FleetEngine cold(opts);
  FleetReport first = cold.run(trace::amazon_video_trace(8 * 1024));
  EXPECT_FALSE(first.initial_from_cache);
  EXPECT_GT(first.initial_analysis_rounds, 0);
  EXPECT_EQ(cache.size(), 1u);

  FleetEngine warm(opts);
  FleetReport second = warm.run(trace::amazon_video_trace(8 * 1024));
  EXPECT_TRUE(second.initial_from_cache);
  EXPECT_EQ(second.initial_analysis_rounds, 0);
  EXPECT_EQ(second.technique_initial, first.technique_initial);
  // The cached knowledge deploys just as well: clean waves throughout.
  EXPECT_EQ(second.totals.differentiated, 0u);
}

/// The fleet_deploy act-3 scenario: deployed on the testbed, the live
/// classifier is swapped mid-run to the nDPI-style engine behind a
/// reassembling normalizer — the rule set survives, but fragment handling
/// and the ambiguity resolutions change together.
FleetOptions fingerprint_swap_options(ClassifierFingerprintCache* cache,
                                      bool ambiguity_probes) {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.cache = cache;
  opts.ambiguity_probes = ambiguity_probes;
  opts.ambiguity_max_distance = 8;
  opts.change_at_wave = 2;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
    env.dpi->engine().set_config(dpi::ambiguity_profile_config("ndpi"));
  };
  return opts;
}

int rounds_on_path(const FleetReport& report, ReadaptPath path) {
  for (const FleetWaveReport& w : report.waves) {
    if (w.readapt_path && *w.readapt_path == path) return w.readapt_rounds;
  }
  return -1;
}

// Acceptance criterion (docs/fingerprinting.md): a swap to a previously
// fingerprinted classifier re-deploys via the nearest-fingerprint warm match
// in FEWER replay rounds than the verified-cached ladder walk spends on the
// identical swap without probes.
TEST(FleetFingerprint, NearestMatchRedeploysInFewerRoundsThanVerifiedCached) {
  const auto trace = trace::amazon_video_trace(8 * 1024);

  // Baseline, probes off: drift falls through to field verification and the
  // stale ranking walk.
  ClassifierFingerprintCache cache_off;
  FleetReport off =
      FleetEngine(fingerprint_swap_options(&cache_off, false)).run(trace);
  const int verified = rounds_on_path(off, ReadaptPath::kVerifiedCached);
  ASSERT_GT(verified, 0);
  EXPECT_TRUE(off.fingerprint_source.empty());
  EXPECT_EQ(off.summary().find("FLEET fingerprint"), std::string::npos);

  // Learn the nDPI implementation's fingerprint once (cold deploy against
  // that profile with probes on stores digest + ranking in the cache).
  ClassifierFingerprintCache cache;
  FleetOptions learn = fingerprint_swap_options(&cache, true);
  learn.environment = "ndpi";
  learn.waves = 1;
  learn.change_at_wave = static_cast<std::size_t>(-1);
  learn.classifier_change = nullptr;
  FleetReport learned = FleetEngine(learn).run(trace);
  EXPECT_EQ(learned.fingerprint_source, "probed");
  EXPECT_FALSE(learned.fingerprint_digest.empty());
  EXPECT_EQ(learned.fingerprint_dims, 10u);
  ASSERT_NE(cache.lookup("ndpi", learned.app), nullptr);
  EXPECT_TRUE(cache.lookup("ndpi", learned.app)->ambiguity.has_value());

  // The same swap with probes on: the post-change digest nearest-matches
  // the learned nDPI entry at the fingerprint-verify ladder stage.
  FleetReport on =
      FleetEngine(fingerprint_swap_options(&cache, true)).run(trace);
  const int matched = rounds_on_path(on, ReadaptPath::kFingerprintMatched);
  ASSERT_GT(matched, 0);
  EXPECT_EQ(on.fingerprint_source, "nearest");
  EXPECT_EQ(on.fingerprint_profile, "ndpi");
  EXPECT_GT(on.fingerprint_probe_flows, 0u);
  EXPECT_NE(on.technique_final, on.technique_initial);
  EXPECT_NE(on.summary().find("FLEET fingerprint"), std::string::npos);

  EXPECT_LT(matched, verified);
}

TEST(FleetSoak, FlowTableCapEvictsAcrossWaves) {
  FleetOptions opts;
  opts.shards = 1;
  opts.flows_per_wave = 8;
  opts.waves = 8;
  opts.max_flows_per_shim = 8;
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(4 * 1024));
  // 64 distinct flows through an 8-entry table: each wave's cohort evicts
  // the previous wave's, and the churn must not disturb treatment.
  EXPECT_EQ(report.flows_evicted, 64u - 8u);
  EXPECT_EQ(report.totals.differentiated, 0u);
  EXPECT_EQ(report.totals.incomplete, 0u);
}

TEST(FleetDeterminism, SummaryByteIdenticalAcrossWorkerCounts) {
  auto run_with = [](std::size_t workers) {
    FleetOptions opts = soak_options();
    opts.shards = 4;
    opts.flows_per_wave = 8;
    opts.waves = 6;
    opts.workers = workers;
    FleetEngine engine(opts);
    return engine.run(trace::amazon_video_trace(8 * 1024)).summary();
  };
  const std::string serial = run_with(0);
  EXPECT_NE(serial.find("FLEET transition"), std::string::npos);
  EXPECT_EQ(serial, run_with(2));
  EXPECT_EQ(serial, run_with(8));
}

// Fleet leg of the compiled-matcher equivalence contract: the summary is
// byte-identical across {reference, compiled} backends x {serial, 2, 8}
// workers — shards share compiled programs via the compile cache, and none
// of that sharing may leak into results.
TEST(FleetDeterminism, SummaryIdenticalAcrossMatchBackends) {
  struct BackendGuard {
    ~BackendGuard() { dpi::set_match_backend(dpi::MatchBackend::kCompiled); }
  } guard;
  auto run_with = [](std::size_t workers) {
    FleetOptions opts = soak_options();
    opts.shards = 4;
    opts.flows_per_wave = 8;
    opts.waves = 4;
    opts.workers = workers;
    FleetEngine engine(opts);
    return engine.run(trace::amazon_video_trace(8 * 1024)).summary();
  };
  dpi::set_match_backend(dpi::MatchBackend::kReference);
  const std::string reference = run_with(0);
  EXPECT_NE(reference.find("FLEET transition"), std::string::npos);
  EXPECT_EQ(reference, run_with(2));
  EXPECT_EQ(reference, run_with(8));
  dpi::set_match_backend(dpi::MatchBackend::kCompiled);
  EXPECT_EQ(reference, run_with(0));
  EXPECT_EQ(reference, run_with(2));
  EXPECT_EQ(reference, run_with(8));
}

// The tentpole merge contract: snapshot-delta merging reconstructs the
// FleetReport byte-identically to the dense full-snapshot baseline, at any
// worker count and either match backend — and actually ships fewer counter
// entries while doing it.
TEST(FleetDeterminism, DeltaMergeIdenticalToFullMergeBaseline) {
  struct BackendGuard {
    ~BackendGuard() { dpi::set_match_backend(dpi::MatchBackend::kCompiled); }
  } guard;
  struct Run {
    std::string summary;
    std::string telemetry;
    std::uint64_t shipped = 0;
    std::uint64_t full = 0;
  };
  auto run_with = [](MergeMode mode, std::size_t workers) {
    obs::reset_all();
    // reset_all covers counters/events but not the telemetry hub's series
    // store; stale points would leak into telemetry_json across runs.
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts = soak_options();
    opts.shards = 4;
    opts.flows_per_wave = 8;
    opts.waves = 4;
    opts.workers = workers;
    opts.merge_mode = mode;
    FleetEngine engine(opts);
    FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));
    return Run{report.summary(), report.telemetry_json,
               report.delta_entries_shipped, report.delta_entries_full};
  };

  dpi::set_match_backend(dpi::MatchBackend::kCompiled);
  const Run baseline = run_with(MergeMode::kFull, 0);
  EXPECT_NE(baseline.summary.find("FLEET transition"), std::string::npos);
  // Dense mode ships the whole counter block every wave.
  EXPECT_EQ(baseline.shipped, baseline.full);

  for (auto backend :
       {dpi::MatchBackend::kReference, dpi::MatchBackend::kCompiled}) {
    dpi::set_match_backend(backend);
    for (std::size_t workers : {std::size_t{0}, std::size_t{2},
                                std::size_t{8}}) {
      const Run delta = run_with(MergeMode::kDelta, workers);
      EXPECT_EQ(delta.summary, baseline.summary);
      EXPECT_EQ(delta.telemetry, baseline.telemetry);
      // The sparse encoding must actually compress the stream.
      EXPECT_LT(delta.shipped, delta.full);
    }
  }
}

// Packet-level flow mode: crafted SYN/payload/RST flows through the shim
// scale the same control plane to fleet-sized waves, deterministically at
// any worker count.
TEST(FleetPacketLevel, CraftedFlowsCompleteAndMergeDeterministically) {
  auto run_with = [](std::size_t workers) {
    obs::reset_all();
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts;
    opts.shards = 4;
    opts.flows_per_wave = 256;
    opts.waves = 3;
    opts.workers = workers;
    opts.flow_mode = FlowMode::kPacketLevel;
    opts.max_flows_per_shim = 1 << 14;
    FleetEngine engine(opts);
    return engine.run(trace::amazon_video_trace(4 * 1024));
  };
  const FleetReport report = run_with(0);
  // Exact fleet totals despite shard-affine (uneven per-shard) admission.
  EXPECT_EQ(report.totals.flows, 4u * 256u * 3u);
  // The deployed technique evades: no differentiation, and the crafted
  // uploads complete (checksum-valid in-window bytes all arrived).
  EXPECT_EQ(report.totals.differentiated, 0u);
  EXPECT_EQ(report.totals.incomplete, 0u);
  EXPECT_GT(report.totals.latency_samples, 0u);
  // Byte-identical merge at any worker count, like the full-stack path.
  EXPECT_EQ(report.summary(), run_with(2).summary());
  EXPECT_EQ(report.summary(), run_with(8).summary());
}

// Degenerate inputs must surface as zero rates, never NaN: zero-flow
// shard-waves (shard-affine admission legitimately assigns a shard nothing),
// zero waves, and zero flows per wave.
TEST(FleetRates, DegenerateInputsProduceZeroRatesNotNan) {
  {
    // flows_per_wave=1 over 8 shards: most shards admit zero flows each
    // wave. Their per-shard stats must read as 0.0 rates.
    obs::reset_all();
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts;
    opts.shards = 8;
    opts.flows_per_wave = 1;
    opts.waves = 2;
    std::size_t zero_flow_shard_waves = 0;
    opts.on_wave = [&](const FleetWaveReport& w) {
      for (const WaveStats& s : w.shard_stats) {
        if (s.flows != 0) continue;
        ++zero_flow_shard_waves;
        EXPECT_EQ(s.differentiated_rate(), 0.0);
        EXPECT_EQ(s.blocked_rate(), 0.0);
        EXPECT_EQ(s.incomplete_rate(), 0.0);
        EXPECT_EQ(s.mean_latency_us(), 0.0);
      }
    };
    FleetEngine engine(opts);
    FleetReport report = engine.run(trace::amazon_video_trace(2 * 1024));
    EXPECT_EQ(report.totals.flows, 8u * 1u * 2u);
    EXPECT_GT(zero_flow_shard_waves, 0u);
    EXPECT_EQ(report.summary().find("nan"), std::string::npos);
    EXPECT_EQ(report.telemetry_json.find("nan"), std::string::npos);
  }
  {
    // waves == 0: a deploy with no traffic at all.
    obs::reset_all();
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts;
    opts.shards = 2;
    opts.waves = 0;
    FleetEngine engine(opts);
    FleetReport report = engine.run(trace::amazon_video_trace(2 * 1024));
    EXPECT_EQ(report.totals.flows, 0u);
    EXPECT_EQ(report.totals.differentiated_rate(), 0.0);
    EXPECT_EQ(report.totals.mean_latency_us(), 0.0);
    EXPECT_EQ(report.summary().find("nan"), std::string::npos);
    EXPECT_EQ(report.telemetry_json.find("nan"), std::string::npos);
  }
  {
    // flows_per_wave == 0: waves run, every shard admits nothing.
    obs::reset_all();
    obs::TimeSeriesStore::instance().reset();
    FleetOptions opts;
    opts.shards = 2;
    opts.flows_per_wave = 0;
    opts.waves = 2;
    FleetEngine engine(opts);
    FleetReport report = engine.run(trace::amazon_video_trace(2 * 1024));
    EXPECT_EQ(report.totals.flows, 0u);
    for (const FleetWaveReport& w : report.waves) {
      EXPECT_EQ(w.stats.differentiated_rate(), 0.0);
      EXPECT_EQ(w.stats.blocked_rate(), 0.0);
      EXPECT_EQ(w.stats.incomplete_rate(), 0.0);
    }
    EXPECT_EQ(report.summary().find("nan"), std::string::npos);
    EXPECT_EQ(report.telemetry_json.find("nan"), std::string::npos);
  }
}

}  // namespace
}  // namespace liberate::deploy
