// Incremental re-characterization: each level of the verification pyramid
// exercised against a live testbed world, with the cost-accounting claims
// (O(verification), not O(analysis)) asserted from the runner's counters.
#include <gtest/gtest.h>

#include "deploy/recharacterize.h"
#include "dpi/normalizer.h"
#include "dpi/profiles.h"
#include "trace/generators.h"

namespace liberate::deploy {
namespace {

struct Rig {
  std::unique_ptr<dpi::Environment> env = dpi::make_testbed();
  core::Liberate lib{*env};
  trace::ApplicationTrace trace = trace::amazon_video_trace(8 * 1024);
  core::SessionReport analysis;
  CachedCharacterization cached;

  Rig() {
    analysis = lib.analyze(trace);
    cached = make_cached_characterization("testbed", trace.app_name, analysis);
  }
};

TEST(Recharacterize, CacheEntryRanksSelectedTechniqueFirst) {
  Rig rig;
  ASSERT_TRUE(rig.analysis.selected_technique.has_value());
  ASSERT_FALSE(rig.cached.ranking.empty());
  EXPECT_EQ(rig.cached.ranking.front().name,
            *rig.analysis.selected_technique);
  EXPECT_FALSE(rig.cached.fields.empty());
  EXPECT_GT(rig.cached.ranking.size(), 3u);  // testbed has many evaders
}

TEST(Recharacterize, StillWorkingCostsOneRound) {
  Rig rig;
  ReadaptOutcome out =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  EXPECT_EQ(out.path, ReadaptPath::kStillWorking);
  EXPECT_EQ(out.technique, rig.cached.ranking.front().name);
  EXPECT_EQ(out.report.total_rounds, 1);
  EXPECT_GT(out.report.total_bytes, 0u);
}

TEST(Recharacterize, PolicyRemovalDetectedInTwoRounds) {
  Rig rig;
  // Operator removes every rule: nothing is differentiated anymore. The
  // deployed-technique probe can't distinguish "technique works" from
  // "policy gone", so this costs the level-1 probe plus one plain round.
  rig.env->dpi->engine().set_rules({});
  ReadaptOutcome out =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  EXPECT_EQ(out.path, ReadaptPath::kStillWorking);

  // Force past level 1: a ranking whose front no longer exists models a
  // deployment whose technique registry rotated underneath it.
  CachedCharacterization gone = rig.cached;
  gone.ranking.front().name = "no-such-technique";
  out = incremental_readapt(rig.lib, rig.trace, gone, nullptr);
  EXPECT_EQ(out.path, ReadaptPath::kPolicyGone);
  EXPECT_TRUE(out.technique.empty());
  EXPECT_LE(out.report.total_rounds, 2);
  EXPECT_FALSE(out.report.detection.differentiation);
}

TEST(Recharacterize, VerifiedCachedWalksRankingWhenFingerprintHolds) {
  Rig rig;
  ASSERT_EQ(rig.cached.ranking.front().name,
            "reorder/ip-fragments-out-of-order");

  // Countermeasure deployment: a normalizer reassembling IP fragments in
  // front of the classifier. Fragment-based evasion dies; the rule set (and
  // therefore the fingerprint) is unchanged.
  dpi::NormalizerConfig cfg;
  cfg.reassemble_fragments = true;
  rig.env->net.emplace_at<dpi::NormalizerElement>(0, cfg);

  ReadaptOutcome out =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  EXPECT_EQ(out.path, ReadaptPath::kVerifiedCached);
  EXPECT_TRUE(out.fingerprint_verified);
  EXPECT_FALSE(out.technique.empty());
  EXPECT_NE(out.technique, rig.cached.ranking.front().name);
  // The whole point: re-adaptation at a fraction of the analysis cost.
  EXPECT_LT(out.report.total_rounds, rig.analysis.total_rounds / 4);
  EXPECT_EQ(out.report.selected_technique, out.technique);
}

TEST(Recharacterize, RuleChangeForcesFullAnalysisAndRefreshesCache) {
  Rig rig;
  ClassifierFingerprintCache cache;
  cache.store(rig.cached);
  const Fingerprint before = rig.cached.digest;

  // The rule moves to the server response's Content-Type: blinding the old
  // client-side field no longer kills classification, so the fingerprint
  // verification fails and a full re-analysis runs.
  auto rules = rig.env->dpi->engine().rules();
  for (auto& r : rules) {
    if (r.name == "testbed-http-video") {
      r.keywords = {"Content-Type: video/mp4"};
    }
  }
  rig.env->dpi->engine().set_rules(rules);

  ReadaptOutcome out =
      incremental_readapt(rig.lib, rig.trace, rig.cached, &cache);
  EXPECT_EQ(out.path, ReadaptPath::kFullAnalysis);
  EXPECT_FALSE(out.fingerprint_verified);
  EXPECT_FALSE(out.technique.empty());
  EXPECT_GT(out.report.total_rounds, 10);

  const CachedCharacterization* refreshed =
      cache.lookup("testbed", rig.trace.app_name);
  ASSERT_NE(refreshed, nullptr);
  EXPECT_FALSE(before.lo == refreshed->digest.lo &&
               before.hi == refreshed->digest.hi);
  EXPECT_EQ(refreshed->ranking.front().name, out.technique);
}

int ladder_sum(const ReadaptOutcome& out) {
  int sum = 0;
  for (const core::ReadaptStageCost& stage : out.ladder) sum += stage.rounds;
  return sum;
}

TEST(Recharacterize, LadderStageRoundsSumToTotalOnEveryPath) {
  Rig rig;

  // Level 1 only: one still-working stage covering the whole cost.
  ReadaptOutcome cheap =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  ASSERT_EQ(cheap.path, ReadaptPath::kStillWorking);
  ASSERT_FALSE(cheap.ladder.empty());
  EXPECT_EQ(cheap.ladder.front().stage, "still-working");
  EXPECT_EQ(ladder_sum(cheap), cheap.report.total_rounds);

  // Ranking walk: the normalizer countermeasure pushes past levels 1-3.
  dpi::NormalizerConfig cfg;
  cfg.reassemble_fragments = true;
  rig.env->net.emplace_at<dpi::NormalizerElement>(0, cfg);
  ReadaptOutcome walked =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  ASSERT_EQ(walked.path, ReadaptPath::kVerifiedCached);
  EXPECT_EQ(ladder_sum(walked), walked.report.total_rounds);
  ASSERT_GE(walked.ladder.size(), 4u);
  EXPECT_EQ(walked.ladder.back().stage, "ranking-walk");

  // Full analysis: rotate the rule so the fingerprint verification fails.
  auto rules = rig.env->dpi->engine().rules();
  for (auto& r : rules) {
    if (r.name == "testbed-http-video") {
      r.keywords = {"Content-Type: video/mp4"};
    }
  }
  rig.env->dpi->engine().set_rules(rules);
  ReadaptOutcome full =
      incremental_readapt(rig.lib, rig.trace, rig.cached, nullptr);
  ASSERT_EQ(full.path, ReadaptPath::kFullAnalysis);
  EXPECT_EQ(ladder_sum(full), full.report.total_rounds);
  EXPECT_EQ(full.ladder.back().stage, "full-analysis");
}

}  // namespace
}  // namespace liberate::deploy
