// The telemetry hub on a live fleet: the exported time series and the FLEET
// summary are byte-identical across worker counts and match backends, the
// mid-soak classifier change is visible in the series, the anomaly detector
// corroborates (never causes) drift confirmation, and FaultyLink chaos
// never buys a probe round through the anomaly path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "deploy/fleet.h"
#include "dpi/match_program.h"
#include "dpi/normalizer.h"
#include "obs/level.h"
#include "obs/snapshot.h"
#include "obs/timeseries.h"
#include "trace/generators.h"

namespace liberate::deploy {
namespace {

FleetOptions telemetry_soak_options() {
  FleetOptions opts;
  opts.shards = 4;
  opts.flows_per_wave = 8;
  opts.waves = 6;
  opts.faults = netsim::FaultPolicy::reorder_heavy();
  opts.change_at_wave = 3;
  opts.classifier_change = [](dpi::Environment& env) {
    dpi::NormalizerConfig cfg;
    cfg.reassemble_fragments = true;
    env.net.emplace_at<dpi::NormalizerElement>(0, cfg);
  };
  return opts;
}

struct RunResult {
  std::string summary;
  std::string telemetry_json;
  FleetReport report;
};

RunResult run_soak(std::size_t workers, FleetOptions opts) {
  // Fresh sinks per run: the store and registry are process-global.
  obs::reset_all();
  obs::TimeSeriesStore::instance().reset();
  opts.workers = workers;
  FleetEngine engine(opts);
  RunResult r;
  r.report = engine.run(trace::amazon_video_trace(8 * 1024));
  r.summary = r.report.summary();
  r.telemetry_json = r.report.telemetry_json;
  return r;
}

TEST(TelemetryDeterminism, ByteIdenticalAcrossWorkerCounts) {
  const RunResult serial = run_soak(0, telemetry_soak_options());
  EXPECT_NE(serial.summary.find("lat_us="), std::string::npos);
  for (std::size_t workers : {std::size_t{2}, std::size_t{8}}) {
    const RunResult parallel = run_soak(workers, telemetry_soak_options());
    EXPECT_EQ(serial.summary, parallel.summary) << "workers=" << workers;
    EXPECT_EQ(serial.telemetry_json, parallel.telemetry_json)
        << "workers=" << workers;
  }
}

TEST(TelemetryDeterminism, ByteIdenticalAcrossMatchBackends) {
  struct BackendGuard {
    ~BackendGuard() { dpi::set_match_backend(dpi::MatchBackend::kCompiled); }
  } guard;
  dpi::set_match_backend(dpi::MatchBackend::kReference);
  const RunResult reference = run_soak(2, telemetry_soak_options());
  dpi::set_match_backend(dpi::MatchBackend::kCompiled);
  const RunResult compiled = run_soak(2, telemetry_soak_options());
  EXPECT_EQ(reference.summary, compiled.summary);
  EXPECT_EQ(reference.telemetry_json, compiled.telemetry_json);
}

TEST(TelemetryDeterminism, SamplingOffDoesNotChangeControlFlow) {
  FleetOptions on = telemetry_soak_options();
  FleetOptions off = telemetry_soak_options();
  off.sample_telemetry = false;
  const RunResult with = run_soak(0, on);
  const RunResult without = run_soak(0, off);
  // Telemetry is an observer: switching it off must not move a single
  // decision (summary covers states, techniques, anomalies, signals).
  EXPECT_EQ(with.summary, without.summary);
  EXPECT_TRUE(without.telemetry_json.empty());
}

#if LIBERATE_OBS_LEVEL >= 1
TEST(TelemetryDeterminism, MidSoakChangeVisibleInExportedSeries) {
  const RunResult r = run_soak(0, telemetry_soak_options());
  ASSERT_FALSE(r.telemetry_json.empty());
  EXPECT_NE(r.telemetry_json.find("\"fleet.diff_rate\""), std::string::npos);
  EXPECT_NE(r.telemetry_json.find("\"fleet.latency_us\""), std::string::npos);

  // The merged differentiation-rate series must show the countermeasure:
  // flat near zero before change_at_wave, a spike at/after it.
  const obs::TimeSeriesSnapshot snap =
      obs::TimeSeriesStore::instance().snapshot("fleet.diff_rate");
  bool found = false;
  for (const obs::SeriesSnapshot& s : snap.series) {
    if (s.key.shard != -1) continue;
    found = true;
    ASSERT_EQ(s.points.size(), 6u);  // one point per wave
    EXPECT_LT(s.points[0].value, 0.25);  // deployed technique working
    double peak = 0;
    for (const obs::SeriesPoint& p : s.points) {
      if (p.t_us >= 3'000'000) peak = std::max(peak, p.value);
    }
    EXPECT_GT(peak, 0.5) << "countermeasure not visible in the series";
  }
  EXPECT_TRUE(found);
}

TEST(TelemetryDeterminism, PerShardSeriesAndWaveTimestamps) {
  FleetOptions opts = telemetry_soak_options();
  const RunResult r = run_soak(2, opts);
  (void)r;
  const obs::TimeSeriesSnapshot snap =
      obs::TimeSeriesStore::instance().snapshot("fleet.");
  // Per-shard keys 0..3 plus the merged -1 for each rate series.
  std::size_t diff_series = 0;
  for (const obs::SeriesSnapshot& s : snap.series) {
    if (s.key.name == "fleet.diff_rate") ++diff_series;
    for (const obs::SeriesPoint& p : s.points) {
      EXPECT_EQ(p.t_us % 1'000'000u, 0u) << "non-wave-boundary timestamp";
    }
  }
  EXPECT_EQ(diff_series, 5u);
}
#endif

TEST(AnomalyCorroboration, FlagsWithinTwoWavesOfRateSignal) {
  const RunResult r = run_soak(0, telemetry_soak_options());
  std::size_t signal_wave = 0;
  bool saw_signal = false;
  std::size_t first_anomaly_wave = 0;
  bool saw_anomaly = false;
  for (const FleetWaveReport& w : r.report.waves) {
    if (w.signal && !saw_signal) {
      signal_wave = w.wave;
      saw_signal = true;
    }
    if (!w.anomalies.empty() && !saw_anomaly) {
      first_anomaly_wave = w.wave;
      saw_anomaly = true;
    }
  }
  ASSERT_TRUE(saw_signal) << "scripted countermeasure was not confirmed";
  ASSERT_TRUE(saw_anomaly) << "anomaly detector never flagged the change";
  // Acceptance: the detector flags within 2 waves of the rate-based signal
  // (in practice it flags the change wave itself, i.e. at or before).
  EXPECT_LE(first_anomaly_wave, signal_wave + 2);
  EXPECT_GE(first_anomaly_wave + 2, signal_wave);
}

TEST(AnomalyCorroboration, CorroboratedConfirmationNeverSlower) {
  // Synthetic waves: clean baseline, then a persistent breach. The
  // corroborated monitor must confirm at least as early as the rate-only
  // monitor, and strictly earlier with the default one-wave bonus.
  WaveStats clean;
  clean.flows = 100;
  WaveStats breached = clean;
  breached.differentiated = 60;

  DriftThresholds thresholds;  // waves_to_confirm=2, corroboration_bonus=1
  DriftMonitor rate_only(thresholds);
  DriftMonitor corroborated(thresholds);

  rate_only.observe(clean);  // baseline
  corroborated.observe(clean);

  std::size_t rate_only_wave = 0;
  std::size_t corroborated_wave = 0;
  for (std::size_t wave = 1; wave <= 4; ++wave) {
    if (rate_only_wave == 0 && rate_only.observe(breached, false)) {
      rate_only_wave = wave;
    }
    if (corroborated_wave == 0) {
      auto signal = corroborated.observe(breached, true);
      if (signal) {
        corroborated_wave = wave;
        EXPECT_TRUE(signal->corroborated);
      }
    }
  }
  ASSERT_GT(rate_only_wave, 0u);
  ASSERT_GT(corroborated_wave, 0u);
  EXPECT_LE(corroborated_wave, rate_only_wave);
  EXPECT_EQ(corroborated_wave, 1u);
  EXPECT_EQ(rate_only_wave, 2u);
}

TEST(AnomalyCorroboration, AnomalyAloneNeverConfirms) {
  // Corroboration without a rate breach must never produce a signal — the
  // hub can speed a confirmation up, never cause one.
  WaveStats clean;
  clean.flows = 100;
  DriftMonitor monitor;
  monitor.observe(clean);  // baseline
  for (int wave = 0; wave < 20; ++wave) {
    EXPECT_FALSE(monitor.observe(clean, true).has_value());
  }
}

TEST(AnomalyCorroboration, BonusNeverDropsBelowOneBreachWave) {
  DriftThresholds thresholds;
  thresholds.waves_to_confirm = 1;
  thresholds.corroboration_bonus = 5;  // absurd bonus still needs a breach
  DriftMonitor monitor(thresholds);
  WaveStats clean;
  clean.flows = 100;
  monitor.observe(clean);
  EXPECT_FALSE(monitor.observe(clean, true).has_value());
  WaveStats breached = clean;
  breached.differentiated = 60;
  EXPECT_TRUE(monitor.observe(breached, true).has_value());
}

TEST(AnomalyCorroboration, FaultBurstsNeverBuyProbeRounds) {
  // Hostile path, no classifier change: whatever the anomaly detectors do
  // with fault noise, the fleet must not spend a single probe round.
  FleetOptions opts = telemetry_soak_options();
  opts.faults = netsim::FaultPolicy::adversarial();
  opts.change_at_wave = static_cast<std::size_t>(-1);
  opts.classifier_change = nullptr;
  const RunResult r = run_soak(0, opts);
  EXPECT_EQ(r.report.readapts, 0u);
  EXPECT_EQ(r.report.readapt_rounds, 0);
  for (const StateTransition& t : r.report.transitions) {
    EXPECT_NE(t.to, DeployState::kReVerifying)
        << "anomaly corroboration escalated fault noise to probes";
  }
}

TEST(AnomalyCorroboration, WaveReportsCarryShardStats) {
  const RunResult r = run_soak(0, telemetry_soak_options());
  for (const FleetWaveReport& w : r.report.waves) {
    ASSERT_EQ(w.shard_stats.size(), 4u);
    std::size_t flows = 0;
    for (const WaveStats& s : w.shard_stats) flows += s.flows;
    EXPECT_EQ(flows, w.stats.flows);
  }
  // Completed flows carry latency: the soak completes most flows, so the
  // merged wave must have samples and a positive mean.
  EXPECT_GT(r.report.waves.front().stats.latency_samples, 0u);
  EXPECT_GT(r.report.waves.front().stats.mean_latency_us(), 0.0);
}

TEST(FleetTelemetryHooks, OnWaveHookFiresPerWaveInOrder) {
  FleetOptions opts = telemetry_soak_options();
  std::vector<std::size_t> seen;
  opts.on_wave = [&seen](const FleetWaveReport& w) { seen.push_back(w.wave); };
  obs::reset_all();
  obs::TimeSeriesStore::instance().reset();
  FleetEngine engine(opts);
  FleetReport report = engine.run(trace::amazon_video_trace(8 * 1024));
  ASSERT_EQ(seen.size(), report.waves.size());
  for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace liberate::deploy
