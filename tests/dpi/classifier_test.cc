#include "dpi/classifier.h"

#include <gtest/gtest.h>

#include "dpi/stun_parser.h"

namespace liberate::dpi {
namespace {

using namespace netsim;

constexpr auto kC2S = Direction::kClientToServer;
constexpr auto kS2C = Direction::kServerToClient;

// Small harness that crafts flow packets with coherent sequence numbers.
struct FlowSim {
  std::uint32_t client_ip = ip_addr("10.0.0.1");
  std::uint32_t server_ip = ip_addr("10.9.9.9");
  std::uint16_t client_port = 40000;
  std::uint16_t server_port = 80;
  std::uint32_t cseq = 1000;
  std::uint32_t sseq = 9000;

  Bytes packet(Direction dir, std::uint8_t flags, BytesView payload,
               std::optional<std::uint32_t> seq_override = std::nullopt) {
    TcpHeader h;
    Ipv4Header ip;
    if (dir == kC2S) {
      h.src_port = client_port;
      h.dst_port = server_port;
      h.seq = seq_override.value_or(cseq);
      h.ack = sseq;
      ip.src = client_ip;
      ip.dst = server_ip;
      if (!seq_override) {
        cseq += static_cast<std::uint32_t>(payload.size()) +
                ((flags & TcpFlags::kSyn) ? 1 : 0);
      }
    } else {
      h.src_port = server_port;
      h.dst_port = client_port;
      h.seq = seq_override.value_or(sseq);
      h.ack = cseq;
      ip.src = server_ip;
      ip.dst = client_ip;
      if (!seq_override) {
        sseq += static_cast<std::uint32_t>(payload.size()) +
                ((flags & TcpFlags::kSyn) ? 1 : 0);
      }
    }
    h.flags = flags;
    return make_tcp_datagram(ip, h, payload);
  }

  Bytes syn() { return packet(kC2S, TcpFlags::kSyn, {}); }
  Bytes synack() { return packet(kS2C, TcpFlags::kSyn | TcpFlags::kAck, {}); }
  Bytes data(std::string_view s) {
    return packet(kC2S, TcpFlags::kAck | TcpFlags::kPsh, to_bytes(s));
  }
  Bytes rst() { return packet(kC2S, TcpFlags::kRst, {}); }
};

Inspection feed(DpiEngine& eng, const Bytes& dgram, Direction dir,
                TimePoint now = 0) {
  return eng.inspect(parse_packet(dgram).value(), dir, now);
}

std::vector<MatchRule> video_rules(bool anchored = false) {
  MatchRule r;
  r.name = "video";
  r.traffic_class = "video";
  r.keywords = {"Host: www.primevideo.com"};
  r.anchored = anchored;
  return {r};
}

const std::string kRequest =
    "GET /v HTTP/1.1\r\nHost: www.primevideo.com\r\nUA: x\r\n\r\n";

TEST(DpiEngine, PerPacketMatchesAndSticks) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kPerPacket;
  c.packet_inspection_limit = 5;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  feed(eng, f.synack(), kS2C);
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_TRUE(insp.processed);
  EXPECT_TRUE(insp.newly_classified);
  EXPECT_EQ(insp.traffic_class.value(), "video");
  ASSERT_EQ(eng.log().size(), 1u);
  EXPECT_EQ(eng.log()[0].traffic_class, "video");

  // Sticky: subsequent innocuous packets carry the class.
  auto insp2 = feed(eng, f.data("innocuous"), kC2S);
  EXPECT_FALSE(insp2.newly_classified);
  EXPECT_EQ(insp2.traffic_class.value(), "video");
}

TEST(DpiEngine, PerPacketLimitStopsInspection) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kPerPacket;
  c.packet_inspection_limit = 5;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  for (int i = 0; i < 5; ++i) feed(eng, f.data("padding-padding"), kC2S);
  // The matching packet is now the 6th payload packet: beyond the window.
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_FALSE(insp.traffic_class.has_value());
}

TEST(DpiEngine, PerPacketMatcherMissesSplitKeyword) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kPerPacket;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  // Keyword split mid-field across two packets.
  std::string part1 = "GET /v HTTP/1.1\r\nHost: www.prime";
  std::string part2 = "video.com\r\nUA: x\r\n\r\n";
  EXPECT_FALSE(feed(eng, f.data(part1), kC2S).traffic_class.has_value());
  EXPECT_FALSE(feed(eng, f.data(part2), kC2S).traffic_class.has_value());
}

TEST(DpiEngine, StreamModeReassemblesSplitKeyword) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  std::string part1 = "GET /v HTTP/1.1\r\nHost: www.prime";
  std::string part2 = "video.com\r\nUA: x\r\n\r\n";
  EXPECT_FALSE(feed(eng, f.data(part1), kC2S).traffic_class.has_value());
  auto insp = feed(eng, f.data(part2), kC2S);
  EXPECT_EQ(insp.traffic_class.value(), "video");
}

TEST(DpiEngine, StreamWithoutOooLosesReorderedBytes) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = false;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  std::string part1 = kRequest.substr(0, 20);
  std::string part2 = kRequest.substr(20);
  std::uint32_t base = f.cseq;
  // Send the SECOND half first (out of order), then the first half.
  Bytes p2 = f.packet(kC2S, TcpFlags::kAck, to_bytes(part2),
                      base + static_cast<std::uint32_t>(part1.size()));
  Bytes p1 = f.packet(kC2S, TcpFlags::kAck, to_bytes(part1), base);
  feed(eng, p2, kC2S);
  auto insp = feed(eng, p1, kC2S);
  EXPECT_FALSE(insp.traffic_class.has_value());  // T-Mobile evaded
}

TEST(DpiEngine, StreamWithOooReassemblesReordered) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  std::string part1 = kRequest.substr(0, 20);
  std::string part2 = kRequest.substr(20);
  std::uint32_t base = f.cseq;
  Bytes p2 = f.packet(kC2S, TcpFlags::kAck, to_bytes(part2),
                      base + static_cast<std::uint32_t>(part1.size()));
  Bytes p1 = f.packet(kC2S, TcpFlags::kAck, to_bytes(part1), base);
  feed(eng, p2, kC2S);
  auto insp = feed(eng, p1, kC2S);
  EXPECT_EQ(insp.traffic_class.value(), "video");  // GFC not evaded
}

TEST(DpiEngine, GetAnchorDefeatedByDummyByte) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_anchor_prefixes = {"GET", std::string("\x16\x03", 2)};
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  EXPECT_FALSE(feed(eng, f.data("X"), kC2S).traffic_class.has_value());
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_FALSE(insp.traffic_class.has_value());

  // Control: without the dummy byte the same engine classifies.
  DpiEngine eng2(c, video_rules());
  FlowSim f2;
  feed(eng2, f2.syn(), kC2S);
  EXPECT_TRUE(feed(eng2, f2.data(kRequest), kC2S).traffic_class.has_value());
}

TEST(DpiEngine, RequiresSynIgnoresMidFlowPackets) {
  ClassifierConfig c;
  c.requires_syn = true;
  DpiEngine eng(c, video_rules());
  FlowSim f;
  // No SYN seen: the matching data packet is invisible.
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_FALSE(insp.processed);
  EXPECT_FALSE(insp.traffic_class.has_value());
}

TEST(DpiEngine, ResultTimeoutExpires) {
  ClassifierConfig c;
  c.result_timeout = seconds(120);
  c.idle_eviction_threshold = [](TimePoint) { return seconds(120); };
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S, 0);
  feed(eng, f.data(kRequest), kC2S, seconds(1));
  auto mid = feed(eng, f.data("x"), kC2S, seconds(60));
  EXPECT_EQ(mid.traffic_class.value(), "video");
  // At +130 s the flow state itself was idle-evicted (>120 s idle), and the
  // mid-flow packet can't recreate it (requires_syn).
  auto late = feed(eng, f.data("x"), kC2S, seconds(190));
  EXPECT_FALSE(late.traffic_class.has_value());
}

TEST(DpiEngine, RstFlushCachesResultBriefly) {
  // Testbed semantics: a RST tears down the flow's inspection state but the
  // classification result lingers for 10 s in a side cache (§6.1).
  ClassifierConfig c;
  c.result_timeout = seconds(120);
  c.flush_flow_on_rst = true;
  c.result_cache_after_rst = seconds(10);
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S, 0);
  feed(eng, f.data(kRequest), kC2S, seconds(1));
  feed(eng, f.rst(), kC2S, seconds(2));
  EXPECT_EQ(eng.tracked_flows(), 0u);
  // Within the 10 s cache window the policy still applies...
  EXPECT_TRUE(
      feed(eng, f.data("x"), kC2S, seconds(5)).traffic_class.has_value());
  // ...and afterwards the flow is unclassified for good (requires_syn: the
  // flushed flow cannot re-form mid-stream).
  EXPECT_FALSE(
      feed(eng, f.data("x"), kC2S, seconds(13)).traffic_class.has_value());
  EXPECT_FALSE(
      feed(eng, f.data(kRequest), kC2S, seconds(14)).traffic_class.has_value());
}

TEST(DpiEngine, RstBeforeMatchKillsFutureClassification) {
  // RST arriving BEFORE any match (TTL-limited RST (b), Table 3): the flow
  // state is flushed, there is no result to cache, and the later matching
  // packet lands on an unknown flow.
  ClassifierConfig c;
  c.flush_flow_on_rst = true;
  c.result_cache_after_rst = seconds(10);
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S, 0);
  feed(eng, f.rst(), kC2S, seconds(1));
  auto insp = feed(eng, f.data(kRequest), kC2S, seconds(2));
  EXPECT_FALSE(insp.processed);
  EXPECT_FALSE(insp.traffic_class.has_value());
}

TEST(DpiEngine, FlushOnRstDropsFlowEntirely) {
  ClassifierConfig c;
  c.flush_flow_on_rst = true;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  feed(eng, f.data(kRequest), kC2S);
  EXPECT_EQ(eng.tracked_flows(), 1u);
  feed(eng, f.rst(), kC2S);
  EXPECT_EQ(eng.tracked_flows(), 0u);
  // Subsequent packets on the flow are mid-flow packets of an unknown flow.
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_FALSE(insp.processed);
}

TEST(DpiEngine, BlockedMarkSurvivesRstFlush) {
  ClassifierConfig c;
  c.flush_flow_on_rst = true;
  c.block_survives_flush = true;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  auto insp = feed(eng, f.data(kRequest), kC2S);
  ASSERT_TRUE(insp.newly_classified);
  eng.mark_blocked(insp.flow);
  feed(eng, f.rst(), kC2S);
  auto later = feed(eng, f.data("anything"), kC2S);
  EXPECT_TRUE(later.flow_blocked);
}

TEST(DpiEngine, ValidatedAnomaliesAreSkipped) {
  ClassifierConfig c;
  c.validated_anomalies = anomaly_bit(Anomaly::kBadTcpChecksum);
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  TcpHeader h;
  h.src_port = f.client_port;
  h.dst_port = f.server_port;
  h.seq = f.cseq;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  h.checksum_override = 0xbad1;
  Ipv4Header ip;
  ip.src = f.client_ip;
  ip.dst = f.server_ip;
  auto insp =
      feed(eng, make_tcp_datagram(ip, h, to_bytes(kRequest)), kC2S);
  EXPECT_TRUE(insp.skipped_invalid);
  EXPECT_FALSE(insp.traffic_class.has_value());

  // A naive engine (validating nothing) classifies the same packet.
  ClassifierConfig naive;
  DpiEngine eng2(naive, video_rules());
  FlowSim f2;
  feed(eng2, f2.syn(), kC2S);
  TcpHeader h2 = h;
  h2.seq = f2.cseq;
  auto insp2 =
      feed(eng2, make_tcp_datagram(ip, h2, to_bytes(kRequest)), kC2S);
  EXPECT_TRUE(insp2.traffic_class.has_value());
}

TEST(DpiEngine, SeqValidationSkipsOutOfWindow) {
  ClassifierConfig c;
  c.validate_tcp_seq = true;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  Bytes wild = f.packet(kC2S, TcpFlags::kAck | TcpFlags::kPsh,
                        to_bytes(kRequest), 0xdead0000);
  auto insp = feed(eng, wild, kC2S);
  EXPECT_TRUE(insp.skipped_invalid);
  EXPECT_FALSE(insp.traffic_class.has_value());
}

TEST(DpiEngine, WrongProtocolQuirkParsesAnyway) {
  ClassifierConfig with_quirk;
  with_quirk.parse_transport_despite_wrong_protocol = true;
  with_quirk.requires_syn = true;
  DpiEngine eng(with_quirk, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S);
  TcpHeader h;
  h.src_port = f.client_port;
  h.dst_port = f.server_port;
  h.seq = f.cseq;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  Ipv4Header ip;
  ip.src = f.client_ip;
  ip.dst = f.server_ip;
  ip.protocol = 143;  // not TCP
  auto insp = feed(eng, make_tcp_datagram(ip, h, to_bytes(kRequest)), kC2S);
  EXPECT_TRUE(insp.traffic_class.has_value());

  ClassifierConfig strict;
  strict.validated_anomalies = anomaly_bit(Anomaly::kUnknownIpProtocol);
  DpiEngine eng2(strict, video_rules());
  FlowSim f2;
  feed(eng2, f2.syn(), kC2S);
  TcpHeader h2 = h;
  h2.seq = f2.cseq;
  auto insp2 = feed(eng2, make_tcp_datagram(ip, h2, to_bytes(kRequest)), kC2S);
  EXPECT_FALSE(insp2.traffic_class.has_value());
}

TEST(DpiEngine, UdpInspectionAndPacketPosition) {
  ClassifierConfig c;
  c.inspect_udp = true;
  MatchRule r;
  r.traffic_class = "voip";
  r.udp = true;
  r.stun_attribute = kStunAttrMsServiceQuality;
  r.only_packet_index = 1;
  DpiEngine eng(c, {r});

  StunMessage msg;
  msg.message_type = 1;
  msg.transaction_id = Bytes(12, 7);
  msg.attributes.push_back(StunAttribute{kStunAttrMsServiceQuality, {1}});
  Bytes stun = serialize_stun(msg);

  UdpHeader u;
  u.src_port = 5000;
  u.dst_port = 3478;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  Bytes pkt = make_udp_datagram(ip, u, stun);

  // As the first packet: classified.
  auto insp = feed(eng, pkt, kC2S);
  EXPECT_EQ(insp.traffic_class.value(), "voip");

  // Fresh engine, dummy first (reordered): not classified.
  DpiEngine eng2(c, {r});
  Bytes dummy = make_udp_datagram(ip, u, to_bytes("x"));
  feed(eng2, dummy, kC2S);
  auto insp2 = feed(eng2, pkt, kC2S);
  EXPECT_FALSE(insp2.traffic_class.has_value());
}

TEST(DpiEngine, OnlyPortsRestrictsInspection) {
  ClassifierConfig c;
  c.only_ports = {80};
  c.requires_syn = false;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  f.server_port = 8080;
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_FALSE(insp.processed);
  EXPECT_FALSE(insp.traffic_class.has_value());

  FlowSim g;
  g.server_port = 80;
  EXPECT_TRUE(feed(eng, g.data(kRequest), kC2S).traffic_class.has_value());
}

TEST(DpiEngine, InspectEveryPacketWhenNotMatchAndForget) {
  ClassifierConfig c;
  c.match_and_forget = false;
  c.requires_syn = false;
  DpiEngine eng(c, video_rules());

  FlowSim f;
  // Prepending many packets does not change anything for Iran-style
  // inspect-everything classifiers.
  for (int i = 0; i < 50; ++i) feed(eng, f.data("padding"), kC2S);
  auto insp = feed(eng, f.data(kRequest), kC2S);
  EXPECT_TRUE(insp.newly_classified);
  // And no sticky result is kept.
  auto next = feed(eng, f.data("innocuous"), kC2S);
  EXPECT_FALSE(next.traffic_class.has_value());
}

TEST(DpiEngine, IdleEvictionUsesThresholdFunction) {
  ClassifierConfig c;
  c.idle_eviction_threshold = [](TimePoint) { return seconds(40); };
  DpiEngine eng(c, video_rules());

  FlowSim f;
  feed(eng, f.syn(), kC2S, 0);
  // 41 s of idle: state evicted; the GET arrives on an unknown flow.
  auto insp = feed(eng, f.data(kRequest), kC2S, seconds(41));
  EXPECT_FALSE(insp.processed);
  EXPECT_FALSE(insp.traffic_class.has_value());

  // Under the threshold the flow survives.
  DpiEngine eng2(c, video_rules());
  FlowSim f2;
  feed(eng2, f2.syn(), kC2S, 0);
  auto insp2 = feed(eng2, f2.data(kRequest), kC2S, seconds(39));
  EXPECT_TRUE(insp2.traffic_class.has_value());
}

TEST(DpiEngine, RuleChangeAtRuntime) {
  ClassifierConfig c;
  DpiEngine eng(c, video_rules());
  FlowSim f;
  feed(eng, f.syn(), kC2S);
  EXPECT_TRUE(feed(eng, f.data(kRequest), kC2S).traffic_class.has_value());

  MatchRule other;
  other.name = "other";
  other.traffic_class = "music";
  other.keywords = {"spotify.com"};
  eng.set_rules({other});

  FlowSim f2;
  f2.client_port = 41000;  // a fresh flow, not the already-classified one
  feed(eng, f2.syn(), kC2S);
  EXPECT_FALSE(feed(eng, f2.data(kRequest), kC2S).traffic_class.has_value());
}

}  // namespace
}  // namespace liberate::dpi
