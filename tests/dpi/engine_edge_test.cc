// Edge coverage for the DPI engine and middlebox: stream buffer caps,
// escalation expiry, split-plan properties under random inputs.
#include <gtest/gtest.h>

#include "core/evasion/split.h"
#include "dpi/classifier.h"
#include "dpi/middlebox.h"
#include "dpi/profiles.h"
#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::dpi {
namespace {

using namespace netsim;

TEST(EngineEdge, StreamBufferCapBoundsMemoryNotCorrectness) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  c.requires_syn = false;
  c.stream_buffer_cap = 256;  // tiny cap
  MatchRule late;
  late.traffic_class = "x";
  late.keywords = {"way-past-the-cap-keyword"};
  MatchRule early;
  early.traffic_class = "y";
  early.keywords = {"early-keyword"};
  DpiEngine eng(c, {late, early});

  // Early keyword inside the cap: matched. Late keyword beyond: not seen.
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  std::uint32_t seq = 1000;
  auto send = [&](const std::string& payload) {
    TcpHeader h;
    h.src_port = 5;
    h.dst_port = 80;
    h.seq = seq;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    seq += static_cast<std::uint32_t>(payload.size());
    Bytes d = make_tcp_datagram(ip, h, to_bytes(payload));
    return eng.inspect(parse_packet(d).value(),
                       Direction::kClientToServer, 0);
  };
  std::string filler(300, 'z');
  auto first = send(filler + "early-keyword");
  // "early-keyword" starts past the 256-byte cap: not assembled either.
  EXPECT_FALSE(first.traffic_class.has_value());
  auto second = send("way-past-the-cap-keyword");
  EXPECT_FALSE(second.traffic_class.has_value());

  // A fresh flow with the keyword inside the cap matches.
  ip.src = 7;
  seq = 50;
  auto hit = send("xx early-keyword yy");
  EXPECT_EQ(hit.traffic_class.value_or(""), "y");
}

TEST(EngineEdge, EscalationExpiresAfterConfiguredDuration) {
  auto env = make_gfc();
  EventLoop& loop = env->loop;
  stack::Host client(env->net.client_port(), ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(env->net.server_port(), ip_addr("198.51.100.20"),
                     stack::OsProfile::linux_profile());
  env->net.attach_client(&client);
  env->net.attach_server(&server);
  server.tcp_listen(80, [](stack::TcpConnection& c) {
    c.on_data([&c](BytesView) { c.send(std::string_view("OK")); });
  });

  auto censored_fetch = [&](std::uint16_t sport) {
    auto& conn = client.tcp_connect(ip_addr("198.51.100.20"), 80, sport);
    bool reset = false;
    conn.on_reset([&] { reset = true; });
    conn.on_established([&] {
      conn.send(std::string_view(
          "GET / HTTP/1.1\r\nHost: www.economist.com\r\n\r\n"));
    });
    loop.run_for(seconds(10));
    return reset;
  };
  auto innocuous_fetch = [&](std::uint16_t sport) {
    auto& conn = client.tcp_connect(ip_addr("198.51.100.20"), 80, sport);
    bool reset = false;
    std::string got;
    conn.on_reset([&] { reset = true; });
    conn.on_data([&](BytesView d) { got += to_string(d); });
    conn.on_established([&] {
      conn.send(std::string_view("GET / HTTP/1.1\r\nHost: ok.example\r\n\r\n"));
    });
    loop.run_for(seconds(10));
    return !reset && got == "OK";
  };

  EXPECT_TRUE(censored_fetch(41001));
  EXPECT_TRUE(censored_fetch(41002));
  EXPECT_EQ(env->dpi->blocked_endpoints(), 1u);
  EXPECT_FALSE(innocuous_fetch(41003));  // escalated: everything dies

  // After escalation_duration (120 s) the endpoint block lapses.
  loop.run_for(seconds(130));
  EXPECT_TRUE(innocuous_fetch(41004));
}

// split_plan property sweep over random payload sizes, field layouts and
// piece caps: total length preserved, every field cut, cap honored.
class SplitPlanProperty : public ::testing::TestWithParam<int> {};

TEST_P(SplitPlanProperty, InvariantsHold) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1337 + 11);
  for (int trial = 0; trial < 40; ++trial) {
    std::size_t payload = 20 + rng.below(2000);
    std::size_t nfields = rng.below(4);
    std::vector<std::pair<std::size_t, std::size_t>> fields;
    for (std::size_t f = 0; f < nfields; ++f) {
      std::size_t begin = rng.below(payload > 4 ? payload - 4 : 1);
      std::size_t len = 2 + rng.below(30);
      fields.emplace_back(begin, std::min(payload, begin + len));
    }
    std::size_t cap = 2 + rng.below(12);
    auto lengths = liberate::core::split_plan(payload, fields, cap);

    std::size_t total = 0;
    for (auto l : lengths) {
      EXPECT_GT(l, 0u);
      total += l;
    }
    EXPECT_EQ(total, payload);
    EXPECT_LE(lengths.size(), std::max<std::size_t>(cap, fields.size() + 1));

    // Each field midpoint is a boundary (they survive the cap).
    std::size_t offset = 0;
    std::vector<std::size_t> cuts;
    for (auto l : lengths) {
      offset += l;
      cuts.push_back(offset);
    }
    for (const auto& [begin, end] : fields) {
      std::size_t mid = begin + (end - begin) / 2;
      if (mid == 0 || mid >= payload) continue;
      EXPECT_NE(std::find(cuts.begin(), cuts.end(), mid), cuts.end())
          << "field midpoint " << mid << " not a cut";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SplitPlanProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace liberate::dpi
