// match_program_diff_test.cc — the compiled matcher's equivalence proof.
//
// dpi/match_program.h promises: for every (rules, content, ctx), run()
// returns the same RuleHit and emits byte-identical RuleStep/ContentTrace
// sequences as match_rules_reference_traced(). This suite enforces the
// contract two ways:
//
//   * a seed-driven differential sweep (the src/fuzz match campaign
//     generator): randomized rule sets × adversarial contents × contexts,
//     >= 100k cases per run, traced AND verdict-only paths. Any divergence
//     prints the one-line seed repro.
//   * targeted deterministic cases for every edge the compiler special-cases
//     (anchors at offsets 0/±1, empty payloads, empty keywords, single-byte
//     keywords, overlapping keywords, STUN guards, node-budget fallback,
//     the compile cache, the backend toggle).
#include "dpi/match_program.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "dpi/stun_parser.h"
#include "fuzz/fuzz.h"

namespace liberate::dpi {
namespace {

std::uint64_t sweep_iterations(std::uint64_t fallback) {
  const char* env = std::getenv("LIBERATE_FUZZ_ITERATIONS");
  if (!env) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

// --- the big sweep --------------------------------------------------------

constexpr std::uint64_t kDiffBaseSeed = 0xD1FF;

TEST(MatchProgramDiff, HundredThousandRandomCasesByteIdentical) {
  // Each iteration checks 12-13 (rules, content, ctx) triples, each on the
  // traced and the verdict-only path; 9000 iterations clear 100k triples.
  const std::uint64_t iterations = sweep_iterations(9000);
  fuzz::FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = fuzz::iteration_seed(kDiffBaseSeed, i);
    fuzz::run_match_program_iteration(seed, stats);
    ASSERT_EQ(stats.match_divergences, 0u)
        << "repro: liberate::fuzz::run_match_program_iteration(0x" << std::hex
        << seed << "ULL, stats)";
  }
  EXPECT_GE(stats.match_cases_checked, 100000u);
  // Coverage telemetry: the sweep must exercise the fallback path too.
  EXPECT_EQ(stats.match_programs_compiled, iterations);
  EXPECT_GT(stats.match_fallback_programs, 0u);
  EXPECT_LT(stats.match_fallback_programs, iterations / 10);
}

TEST(MatchProgramDiff, SweepIsDeterministic) {
  fuzz::FuzzStats a = fuzz::run_match_program_campaign(11, 40);
  fuzz::FuzzStats b = fuzz::run_match_program_campaign(11, 40);
  EXPECT_EQ(a.match_cases_checked, b.match_cases_checked);
  EXPECT_EQ(a.match_divergences, 0u);
  EXPECT_EQ(b.match_divergences, 0u);
}

// --- targeted deterministic cases -----------------------------------------

/// Assert full equivalence (verdict + steps) for one case, with readable
/// failure output.
void expect_identical(const std::vector<MatchRule>& rules, BytesView content,
                      const RuleContext& ctx) {
  MatchProgram prog = MatchProgram::compile(rules);
  MatchProgram::Scratch scratch;
  std::vector<RuleStep> ref_steps;
  std::vector<RuleStep> prog_steps;
  RuleHit ref = match_rules_reference_traced(rules, content, ctx, &ref_steps);
  RuleHit got = prog.run(rules, content, ctx, &prog_steps, scratch);
  RuleHit verdict = prog.run(rules, content, ctx, nullptr, scratch);
  EXPECT_EQ(ref.rule, got.rule);
  EXPECT_EQ(ref.rule, verdict.rule);
  ASSERT_EQ(ref_steps.size(), prog_steps.size());
  for (std::size_t i = 0; i < ref_steps.size(); ++i) {
    SCOPED_TRACE("step " + std::to_string(i));
    EXPECT_EQ(ref_steps[i].rule, prog_steps[i].rule);
    EXPECT_EQ(static_cast<int>(ref_steps[i].outcome),
              static_cast<int>(prog_steps[i].outcome));
    EXPECT_EQ(ref_steps[i].content.keyword_offsets,
              prog_steps[i].content.keyword_offsets);
    EXPECT_EQ(ref_steps[i].content.failed_keyword,
              prog_steps[i].content.failed_keyword);
    EXPECT_EQ(ref_steps[i].content.anchor_failed,
              prog_steps[i].content.anchor_failed);
    EXPECT_EQ(ref_steps[i].content.stun_failed,
              prog_steps[i].content.stun_failed);
  }
}

std::vector<MatchRule> anchored_rule() {
  MatchRule r;
  r.name = "anchored-get";
  r.traffic_class = "web";
  r.keywords = {"GET ", "youtube"};
  r.anchored = true;
  return {r};
}

TEST(MatchProgramDiff, AnchorAtOffsetZeroMatches) {
  Bytes c = to_bytes("GET /watch youtube HTTP/1.1");
  expect_identical(anchored_rule(), BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, AnchorDefeatedByOneLeadingByte) {
  Bytes c = to_bytes("\nGET /watch youtube HTTP/1.1");
  expect_identical(anchored_rule(), BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, AnchorKeywordMissingEntirely) {
  Bytes c = to_bytes("POST /watch youtube HTTP/1.1");
  expect_identical(anchored_rule(), BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, CaseFoldIsAsciiOnly) {
  // 0xE9 is 'é' in latin-1; ifind never folds bytes >= 0x80, so the compiled
  // fold table must not either.
  std::vector<MatchRule> rules(1);
  rules[0].name = "high";
  rules[0].traffic_class = "web";
  rules[0].keywords = {std::string("\xc9video")};
  Bytes hit = to_bytes("xx\xc9VIDEOzz");
  Bytes miss = to_bytes("xx\xe9VIDEOzz");  // 0xE9 != 0xC9 without folding
  expect_identical(rules, BytesView(hit), RuleContext{});
  expect_identical(rules, BytesView(miss), RuleContext{});
}

TEST(MatchProgramDiff, EmptyContentAndEmptyKeyword) {
  std::vector<MatchRule> rules(2);
  rules[0].name = "empty-kw";
  rules[0].traffic_class = "web";
  rules[0].keywords = {""};
  rules[1].name = "no-kw";
  rules[1].traffic_class = "web";
  expect_identical(rules, BytesView{}, RuleContext{});
  Bytes c = to_bytes("anything");
  expect_identical(rules, BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, OverlappingKeywordsFirstOccurrence) {
  std::vector<MatchRule> rules(1);
  rules[0].name = "overlap";
  rules[0].traffic_class = "video";
  rules[0].keywords = {"googlevideo", "video", "google", "o"};
  Bytes c = to_bytes("x googlegooglevideo trailer");
  expect_identical(rules, BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, StunGuardAndOffsets) {
  std::vector<MatchRule> rules(1);
  rules[0].name = "skype";
  rules[0].traffic_class = "voip";
  rules[0].udp = true;
  rules[0].stun_attribute = kStunAttrMsServiceQuality;
  StunMessage msg;
  msg.message_type = 0x0001;
  msg.transaction_id = Bytes(12, 0x42);
  StunAttribute pad;  // 3-byte value: offset walk must honor padding
  pad.type = 0x1234;
  pad.value = Bytes(3, 0x01);
  msg.attributes.push_back(pad);
  StunAttribute sq;
  sq.type = kStunAttrMsServiceQuality;
  sq.value = Bytes(5, 0x02);
  msg.attributes.push_back(sq);
  Bytes stun = serialize_stun(msg);
  RuleContext udp_ctx;
  udp_ctx.udp = true;
  expect_identical(rules, BytesView(stun), udp_ctx);
  // Same bytes on TCP: transport guard must skip before any STUN work.
  expect_identical(rules, BytesView(stun), RuleContext{});
  // Truncated STUN: parse fails, stun_failed must be reported identically.
  Bytes cut(stun.begin(), stun.begin() + 10);
  expect_identical(rules, BytesView(cut), udp_ctx);
}

TEST(MatchProgramDiff, GuardOrderPortPacketIndexTransport) {
  std::vector<MatchRule> rules(1);
  rules[0].name = "guards";
  rules[0].traffic_class = "web";
  rules[0].keywords = {"x"};
  rules[0].dst_port = 80;
  rules[0].only_packet_index = 2;
  rules[0].udp = false;
  Bytes c = to_bytes("x");
  for (std::uint16_t port : {std::uint16_t{80}, std::uint16_t{81}}) {
    for (bool udp : {false, true}) {
      for (int idx = 0; idx <= 3; ++idx) {
        RuleContext ctx;
        ctx.dst_port = port;
        ctx.udp = udp;
        if (idx > 0) ctx.packet_index = static_cast<std::size_t>(idx);
        expect_identical(rules, BytesView(c), ctx);
      }
    }
  }
}

TEST(MatchProgramDiff, NodeBudgetFallbackStaysIdentical) {
  std::vector<MatchRule> rules(1);
  rules[0].name = "budget-buster";
  rules[0].traffic_class = "bulk";
  std::string big(8000, 'q');
  rules[0].keywords = {big, "needle"};
  MatchProgram prog = MatchProgram::compile(rules);
  EXPECT_FALSE(prog.compiled());
  Bytes c = to_bytes("haystack with a needle in it");
  expect_identical(rules, BytesView(c), RuleContext{});
}

TEST(MatchProgramDiff, CompileCacheReturnsSameProgramForIdenticalRules) {
  auto rules = anchored_rule();
  auto a = MatchProgram::compile_cached(rules);
  auto b = MatchProgram::compile_cached(rules);
  EXPECT_EQ(a.get(), b.get());
  auto different = anchored_rule();
  different[0].keywords.push_back("extra");
  auto c = MatchProgram::compile_cached(different);
  EXPECT_NE(a.get(), c.get());
  EXPECT_NE(a->fingerprint(), c->fingerprint());
}

TEST(MatchProgramDiff, BackendToggleSwitchesImplementations) {
  EXPECT_EQ(match_backend(), MatchBackend::kCompiled);  // the default
  set_match_backend(MatchBackend::kReference);
  EXPECT_EQ(match_backend(), MatchBackend::kReference);
  set_match_backend(MatchBackend::kCompiled);
  EXPECT_EQ(match_backend(), MatchBackend::kCompiled);
}

}  // namespace
}  // namespace liberate::dpi
