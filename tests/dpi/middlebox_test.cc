#include "dpi/middlebox.h"

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::dpi {
namespace {

using namespace netsim;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

MiddleboxConfig blocker_config(bool drop_packet, bool send_403,
                               bool escalation = false) {
  ClassifierConfig c;
  c.requires_syn = true;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  MatchRule r;
  r.name = "censor";
  r.traffic_class = "censored";
  r.keywords = {"forbidden-topic"};
  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = {r};
  PolicyAction block;
  block.block = true;
  block.rst_count_min = 3;
  block.rst_count_max = 5;
  block.send_403 = send_403;
  block.drop_matching_packet = drop_packet;
  mc.actions["censored"] = block;
  mc.endpoint_escalation = escalation;
  mc.escalation_threshold = 2;
  mc.escalation_duration = seconds(120);
  return mc;
}

struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;
  DpiMiddlebox* dpi = nullptr;

  explicit Rig(MiddleboxConfig mc)
      : client(net.client_port(), ip_addr("10.0.0.1"),
               OsProfile::linux_profile()),
        server(net.server_port(), ip_addr("10.9.9.9"),
               OsProfile::linux_profile()) {
    net.attach_client(&client);
    net.attach_server(&server);
    net.emplace<RouterHop>(ip_addr("10.1.0.1"));
    dpi = &net.emplace<DpiMiddlebox>(std::move(mc));
    net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  }
};

TEST(DpiMiddlebox, BlocksFlowWithRstsBothWays) {
  Rig rig(blocker_config(/*drop_packet=*/false, /*send_403=*/false));
  std::string server_got;
  bool client_reset = false, server_reset = false;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { server_got += to_string(d); });
    c.on_reset([&] { server_reset = true; });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_reset([&] { client_reset = true; });
  conn.on_established(
      [&] { conn.send(std::string_view("about the forbidden-topic now")); });
  rig.loop.run_until_idle();

  EXPECT_TRUE(client_reset);
  EXPECT_TRUE(server_reset);
  EXPECT_GE(rig.dpi->rsts_injected(), 6u);  // >= 3 toward each side
  // The matching packet itself was forwarded (on-path injector).
  EXPECT_EQ(server_got, "about the forbidden-topic now");
}

TEST(DpiMiddlebox, Iran403AndDrop) {
  Rig rig(blocker_config(/*drop_packet=*/true, /*send_403=*/true));
  std::string client_got;
  std::string server_got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { server_got += to_string(d); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_data([&](BytesView d) { client_got += to_string(d); });
  conn.on_established(
      [&] { conn.send(std::string_view("GET forbidden-topic HTTP/1.1")); });
  rig.loop.run_until_idle();

  // The unsolicited 403 impersonating the server reached the client.
  EXPECT_NE(client_got.find("403 Forbidden"), std::string::npos);
  // In-path censor: the offending request never reached the server.
  EXPECT_EQ(server_got.find("forbidden-topic"), std::string::npos);
}

TEST(DpiMiddlebox, BlockedFlowStaysDead) {
  Rig rig(blocker_config(false, false));
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  conn.on_established(
      [&] { conn.send(std::string_view("forbidden-topic here")); });
  rig.loop.run_until_idle();
  auto rsts_before = rig.dpi->rsts_injected();
  ASSERT_GT(rsts_before, 0u);

  // Try to keep using the (now dead) flow at the raw level: still RST'd.
  TcpHeader h;
  h.src_port = conn.tuple().src_port;
  h.dst_port = 80;
  h.seq = 424242;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("more data")));
  rig.loop.run_until_idle();
  EXPECT_GT(rig.dpi->rsts_injected(), rsts_before);
  EXPECT_GT(rig.dpi->packets_dropped(), 0u);
}

TEST(DpiMiddlebox, EndpointEscalationBlocksWholeServerPort) {
  Rig rig(blocker_config(false, false, /*escalation=*/true));
  rig.server.tcp_listen(80, [](TcpConnection&) {});

  // Two censored flows to the same server:port trigger escalation.
  for (int i = 0; i < 2; ++i) {
    auto& c = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
    c.on_established(
        [&c] { c.send(std::string_view("forbidden-topic request")); });
    rig.loop.run_until_idle();
  }
  EXPECT_EQ(rig.dpi->blocked_endpoints(), 1u);

  // A third, entirely innocuous connection to the same endpoint is killed.
  bool reset = false;
  bool established = false;
  auto& c3 = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  c3.on_reset([&] { reset = true; });
  c3.on_established([&] { established = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(reset);
  EXPECT_FALSE(established);  // even the SYN is answered with RSTs

  // A different port is unaffected.
  rig.server.tcp_listen(8080, [](TcpConnection&) {});
  bool ok = false;
  auto& c4 = rig.client.tcp_connect(ip_addr("10.9.9.9"), 8080);
  c4.on_established([&] { ok = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(ok);
}

TEST(DpiMiddlebox, ThrottleLimitsGoodput) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  c.stream_handles_out_of_order = true;
  MatchRule r;
  r.name = "video";
  r.traffic_class = "video";
  r.keywords = {"primevideo.com"};
  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = {r};
  PolicyAction throttle;
  throttle.throttle_bytes_per_sec = 1.5e6 / 8;  // 1.5 Mbps
  mc.actions["video"] = throttle;
  Rig rig(std::move(mc));

  // Server pushes 1 MB after seeing the request.
  Rng rng(5);
  Bytes blob = rng.bytes(1 << 20);
  rig.server.tcp_listen(80, [&](TcpConnection& conn) {
    conn.on_data([&, pc = &conn](BytesView) { pc->send(BytesView(blob)); });
  });
  Bytes received;
  TimePoint done_at = 0;
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_data([&](BytesView d) {
    received.insert(received.end(), d.begin(), d.end());
    done_at = rig.loop.now();
  });
  conn.on_established([&] {
    conn.send(std::string_view("GET /v HTTP/1.1\r\nHost: primevideo.com\r\n\r\n"));
  });
  rig.loop.run_until_idle();

  ASSERT_EQ(received.size(), blob.size());
  double seconds_taken = to_seconds(done_at);
  double mbps = 8.0 * static_cast<double>(received.size()) / seconds_taken / 1e6;
  // Goodput pinned near the 1.5 Mbps shaping rate.
  EXPECT_LT(mbps, 1.7);
  EXPECT_GT(mbps, 0.9);
}

TEST(DpiMiddlebox, ZeroRatingAccountsBytes) {
  ClassifierConfig c;
  c.mode = ClassifierConfig::Mode::kStream;
  MatchRule r;
  r.name = "video";
  r.traffic_class = "video";
  r.keywords = {"primevideo.com"};
  MiddleboxConfig mc;
  mc.classifier = c;
  mc.rules = {r};
  PolicyAction zr;
  zr.zero_rate = true;
  mc.actions["video"] = zr;
  Rig rig(std::move(mc));

  Rng rng(6);
  Bytes blob = rng.bytes(100 * 1024);
  rig.server.tcp_listen(80, [&](TcpConnection& conn) {
    conn.on_data([&, pc = &conn](BytesView) { pc->send(BytesView(blob)); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  std::size_t got = 0;
  conn.on_data([&](BytesView d) { got += d.size(); });
  conn.on_established([&] {
    conn.send(std::string_view("GET /v HTTP/1.1\r\nHost: primevideo.com\r\n\r\n"));
  });
  rig.loop.run_until_idle();
  ASSERT_EQ(got, blob.size());

  // Virtually all bytes were zero-rated; only the handshake (pre-match)
  // hit the usage counter.
  EXPECT_GT(rig.dpi->zero_rated_bytes(), 100u * 1024);
  EXPECT_LT(rig.dpi->usage_counter_bytes(), 1024u);
}

TEST(ConntrackFilter, DropsOutOfWindowButPassesNormal) {
  EventLoop loop;
  Network net{loop};
  Host client(net.client_port(), ip_addr("10.0.0.1"),
              OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  net.emplace<ConntrackFilter>(ValidationPolicy::none(), true);

  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got += to_string(d); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    // Out-of-window crafted segment, then normal data.
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0xdead0000;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    client.send_raw(make_tcp_datagram(ip, h, to_bytes("EVIL")));
    conn.send(std::string_view("fine"));
  });
  loop.run_until_idle();
  EXPECT_EQ(got, "fine");
  // The crafted packet never even reached the server's wire.
  bool evil_seen = false;
  for (const auto& d : server.raw_received()) {
    auto p = parse_packet(d).value();
    if (to_string(p.app_payload()) == "EVIL") evil_seen = true;
  }
  EXPECT_FALSE(evil_seen);
}

}  // namespace
}  // namespace liberate::dpi
