#include "dpi/normalizer.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"

namespace liberate::dpi {
namespace {

using namespace netsim;

struct RecordingHost : HostIface {
  std::vector<Bytes> received;
  void receive(Bytes d) override { received.push_back(std::move(d)); }
};

struct Rig {
  EventLoop loop;
  Network net{loop};
  RecordingHost client, server;
  NormalizerElement* norm;

  explicit Rig(NormalizerConfig cfg) {
    net.attach_client(&client);
    net.attach_server(&server);
    norm = &net.emplace<NormalizerElement>(cfg);
  }
};

Bytes tcp_packet(std::uint8_t ttl, std::optional<std::uint16_t> bad_checksum =
                                       std::nullopt) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  ip.ttl = ttl;
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  tcp.checksum_override = bad_checksum;
  return make_tcp_datagram(ip, tcp, to_bytes("payload"));
}

TEST(Normalizer, DropMalformedFiltersInertPackets) {
  NormalizerConfig cfg;
  cfg.drop_malformed = true;
  Rig rig(cfg);
  rig.net.send_from_client(tcp_packet(64, 0x0bad));  // bad checksum
  rig.net.send_from_client(tcp_packet(64));          // clean
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 1u);
  EXPECT_EQ(rig.norm->dropped(), 1u);
}

TEST(Normalizer, TtlFloorDefeatsTtlLimitedProbes) {
  NormalizerConfig cfg;
  cfg.ttl_floor = 32;
  Rig rig(cfg);
  rig.net.send_from_client(tcp_packet(3));   // TTL-limited probe
  rig.net.send_from_client(tcp_packet(64));  // normal
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 2u);
  auto probe = parse_packet(rig.server.received[0]).value();
  EXPECT_EQ(probe.ip.ttl, 32);  // raised: it now survives to the server
  EXPECT_FALSE(probe.ip.bad_checksum);
  auto normal = parse_packet(rig.server.received[1]).value();
  EXPECT_EQ(normal.ip.ttl, 64);  // untouched
  EXPECT_EQ(rig.norm->ttl_raised(), 1u);
}

TEST(Normalizer, ReassemblesFragmentsBeforeForwarding) {
  NormalizerConfig cfg;
  cfg.reassemble_fragments = true;
  Rig rig(cfg);
  Bytes whole = tcp_packet(64);
  // Make the payload big enough to fragment.
  {
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    TcpHeader tcp;
    tcp.flags = TcpFlags::kAck;
    whole = make_tcp_datagram(ip, tcp, Bytes(600, 0x61));
  }
  for (auto& f : fragment_datagram(whole, 3)) {
    rig.net.send_from_client(std::move(f));
  }
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 1u);
  auto got = parse_packet(rig.server.received[0]).value();
  EXPECT_FALSE(got.ip.is_fragment());
  EXPECT_EQ(got.app_payload().size(), 600u);
}

TEST(Normalizer, DisabledConfigIsTransparent) {
  Rig rig(NormalizerConfig{});
  rig.net.send_from_client(tcp_packet(3, 0x0bad));
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 1u);
  auto got = parse_packet(rig.server.received[0]).value();
  EXPECT_EQ(got.ip.ttl, 3);
  EXPECT_TRUE(
      has_anomaly(anomalies_of(got), Anomaly::kBadTcpChecksum));
}

}  // namespace
}  // namespace liberate::dpi
