// Fuzz-style property sweeps: every parser in the DPI path must consume
// arbitrary bytes without crashing, and almost always reject them — a
// middlebox (and lib·erate's own inspection of hostile traffic) lives on
// garbage input.
#include <gtest/gtest.h>

#include "dpi/http_parser.h"
#include "dpi/stun_parser.h"
#include "dpi/tls_parser.h"
#include "netsim/packet.h"
#include "netsim/validation.h"
#include "util/rng.h"

namespace liberate::dpi {
namespace {

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, RandomBytesNeverCrashAnyParser) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761u + 1);
  for (int i = 0; i < 50; ++i) {
    Bytes junk = rng.bytes(rng.below(300));
    (void)parse_http_request(junk);
    (void)parse_http_response(junk);
    (void)extract_sni(junk);
    (void)parse_stun(junk);
    (void)netsim::parse_ipv4(junk);
    (void)netsim::parse_tcp(junk);
    (void)netsim::parse_udp(junk);
    (void)netsim::parse_icmp(junk);
    auto pkt = netsim::parse_packet(junk);
    if (pkt.ok()) {
      (void)netsim::anomalies_of(pkt.value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Range(0, 8));

// Mutated REAL packets: flip random bytes of a valid datagram and push the
// result through the whole inspection path. Anomalies may appear; crashes
// and false "clean" verdicts on a corrupted header checksum must not.
class MutationFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MutationFuzz, BitFlippedDatagramsSurviveInspection) {
  using namespace netsim;
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck | TcpFlags::kPsh;
  Bytes base = make_tcp_datagram(
      ip, tcp, to_bytes("GET / HTTP/1.1\r\nHost: fuzz.example\r\n\r\n"));

  for (int i = 0; i < 100; ++i) {
    Bytes mutated = base;
    int flips = 1 + static_cast<int>(rng.below(4));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.below(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
    }
    auto pkt = parse_packet(mutated);
    if (!pkt.ok()) continue;
    AnomalySet anomalies = anomalies_of(pkt.value());
    // A SINGLE bit flip is always caught (the IP header checksum covers the
    // header, the TCP checksum the rest). Multiple flips can legitimately
    // cancel in the one's-complement sum — the classic weakness of the
    // internet checksum — so they only assert no-crash above.
    if (flips == 1 && mutated != base) {
      EXPECT_NE(anomalies, 0u) << "undetected single-bit flip, trial " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationFuzz, ::testing::Range(0, 6));

// Truncation sweep: every prefix of a valid datagram parses without UB.
TEST(TruncationFuzz, EveryPrefixHandled) {
  using namespace netsim;
  Ipv4Header ip;
  ip.src = 1;
  ip.dst = 2;
  ip.options.push_back(Ipv4Option::stream_id(7));
  TcpHeader tcp;
  tcp.flags = TcpFlags::kSyn;
  tcp.options.push_back(TcpOption::mss(1460));
  Bytes dgram = make_tcp_datagram(ip, tcp, to_bytes("prefix-sweep-payload"));
  for (std::size_t n = 0; n <= dgram.size(); ++n) {
    BytesView prefix(dgram.data(), n);
    auto pkt = parse_packet(prefix);
    if (pkt.ok()) {
      (void)anomalies_of(pkt.value());
    }
  }
}

}  // namespace
}  // namespace liberate::dpi
