#include <gtest/gtest.h>

#include "dpi/http_parser.h"
#include "dpi/stun_parser.h"
#include "dpi/tls_parser.h"
#include "util/rng.h"

namespace liberate::dpi {
namespace {

TEST(HttpParser, ParsesRequestLineAndHeaders) {
  std::string raw =
      "GET /video/1.mp4 HTTP/1.1\r\n"
      "Host: www.primevideo.com\r\n"
      "User-Agent: AmazonVideo/5.0\r\n"
      "\r\n";
  auto req = parse_http_request(BytesView(to_bytes(raw)));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->method, "GET");
  EXPECT_EQ(req->target, "/video/1.mp4");
  EXPECT_EQ(req->version, "HTTP/1.1");
  EXPECT_EQ(req->host().value(), "www.primevideo.com");
  EXPECT_EQ(req->header("user-agent").value(), "AmazonVideo/5.0");
  EXPECT_FALSE(req->header("Cookie").has_value());
}

TEST(HttpParser, RejectsNonHttp) {
  EXPECT_FALSE(parse_http_request(BytesView(to_bytes("NOPE x y\r\n\r\n")))
                   .has_value());
  Rng rng(1);
  Bytes junk = rng.bytes(64);
  EXPECT_FALSE(parse_http_request(junk).has_value());
}

TEST(HttpParser, ParsesResponseWithContentType) {
  std::string raw =
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: video/mp4\r\n"
      "Content-Length: 1000\r\n"
      "\r\n";
  auto resp = parse_http_response(BytesView(to_bytes(raw)));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->reason, "OK");
  EXPECT_EQ(resp->content_type().value(), "video/mp4");
}

TEST(HttpParser, Parses403) {
  auto resp = parse_http_response(
      BytesView(to_bytes("HTTP/1.1 403 Forbidden\r\n\r\n")));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 403);
  EXPECT_EQ(resp->reason, "Forbidden");
}

TEST(HttpParser, LooksLikeHttp) {
  EXPECT_TRUE(looks_like_http_request(BytesView(to_bytes("GET / HTTP/1.1"))));
  EXPECT_TRUE(looks_like_http_request(BytesView(to_bytes("POST /x HTTP/1.1"))));
  EXPECT_FALSE(looks_like_http_request(BytesView(to_bytes("XGET /"))));
  EXPECT_FALSE(looks_like_http_request(BytesView(to_bytes("GE"))));
}

// --- TLS -------------------------------------------------------------------

Bytes build_client_hello(const std::string& sni) {
  // Build a ClientHello with an SNI extension, the same way tls_gen does —
  // but constructed by hand here so the parser test is independent.
  ByteWriter ext;
  ext.u16(0);                                        // extension: server_name
  ext.u16(static_cast<std::uint16_t>(sni.size() + 5));
  ext.u16(static_cast<std::uint16_t>(sni.size() + 3));  // list length
  ext.u8(0);                                            // host_name
  ext.u16(static_cast<std::uint16_t>(sni.size()));
  ext.raw(sni);

  ByteWriter body;
  body.u16(0x0303);  // client_version TLS1.2
  body.fill(0xaa, 32);
  body.u8(0);        // session id
  body.u16(2);       // cipher suites length
  body.u16(0x1301);
  body.u8(1);        // compression methods
  body.u8(0);
  body.u16(static_cast<std::uint16_t>(ext.size()));
  body.raw(ext.bytes());

  ByteWriter hs;
  hs.u8(1);  // ClientHello
  hs.u24(static_cast<std::uint32_t>(body.size()));
  hs.raw(body.bytes());

  ByteWriter record;
  record.u8(22);  // handshake
  record.u16(0x0301);
  record.u16(static_cast<std::uint16_t>(hs.size()));
  record.raw(hs.bytes());
  return std::move(record).take();
}

TEST(TlsParser, ExtractsSni) {
  Bytes hello = build_client_hello("r3---sn.googlevideo.com");
  EXPECT_TRUE(looks_like_tls_client_hello(hello));
  auto sni = extract_sni(hello);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "r3---sn.googlevideo.com");
}

TEST(TlsParser, RejectsGarbageAndBlindedBytes) {
  Bytes hello = build_client_hello("example.com");
  // Bit-inverted hello (the characterization "control"): must not parse.
  Bytes inverted = hello;
  for (auto& b : inverted) b = static_cast<std::uint8_t>(~b);
  EXPECT_FALSE(extract_sni(inverted).has_value());
  EXPECT_FALSE(extract_sni(BytesView(to_bytes("GET / HTTP/1.1"))).has_value());
  Bytes tiny{22, 3};
  EXPECT_FALSE(extract_sni(tiny).has_value());
}

// --- STUN ------------------------------------------------------------------

TEST(StunParser, RoundTripWithAttributes) {
  StunMessage msg;
  msg.message_type = 0x0001;  // Binding Request
  msg.transaction_id = Bytes(12, 0x42);
  msg.attributes.push_back(
      StunAttribute{kStunAttrMsServiceQuality, {0x00, 0x01, 0x00, 0x02}});
  msg.attributes.push_back(StunAttribute{0x0006, to_bytes("user")});

  Bytes wire = serialize_stun(msg);
  auto parsed = parse_stun(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->message_type, 0x0001);
  EXPECT_TRUE(parsed->has_attribute(kStunAttrMsServiceQuality));
  EXPECT_TRUE(parsed->has_attribute(0x0006));
  EXPECT_FALSE(parsed->has_attribute(0x9999));
}

TEST(StunParser, AttributePaddingHandled) {
  StunMessage msg;
  msg.message_type = 0x0001;
  msg.transaction_id = Bytes(12, 1);
  msg.attributes.push_back(StunAttribute{0x0006, to_bytes("abc")});  // pad 1
  msg.attributes.push_back(StunAttribute{0x8055, to_bytes("xy")});   // pad 2
  auto parsed = parse_stun(serialize_stun(msg));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->attributes.size(), 2u);
  EXPECT_EQ(to_string(BytesView(parsed->attributes[0].value)), "abc");
  EXPECT_TRUE(parsed->has_attribute(0x8055));
}

TEST(StunParser, RejectsWrongMagicAndBlinded) {
  StunMessage msg;
  msg.message_type = 0x0001;
  msg.transaction_id = Bytes(12, 1);
  Bytes wire = serialize_stun(msg);
  Bytes inverted = wire;
  for (auto& b : inverted) b = static_cast<std::uint8_t>(~b);
  EXPECT_FALSE(parse_stun(inverted).has_value());
  wire[4] ^= 0xff;  // corrupt the magic cookie
  EXPECT_FALSE(parse_stun(wire).has_value());
  Bytes tiny{0, 1};
  EXPECT_FALSE(parse_stun(tiny).has_value());
}

}  // namespace
}  // namespace liberate::dpi
