#include "dpi/profiles.h"

#include <gtest/gtest.h>

namespace liberate::dpi {
namespace {

TEST(Profiles, AllEnvironmentsConstruct) {
  for (const auto& name : environment_names()) {
    auto env = make_environment(name);
    ASSERT_NE(env, nullptr) << name;
    EXPECT_EQ(env->name, name);
    EXPECT_GT(env->net.element_count(), 0u) << name;
  }
  EXPECT_EQ(make_environment("nonsense"), nullptr);
}

TEST(Profiles, MiddleboxPresenceMatchesPaper) {
  EXPECT_NE(make_testbed()->dpi, nullptr);
  EXPECT_NE(make_tmus()->dpi, nullptr);
  EXPECT_NE(make_gfc()->dpi, nullptr);
  EXPECT_NE(make_iran()->dpi, nullptr);
  EXPECT_EQ(make_att()->dpi, nullptr);
  EXPECT_NE(make_att()->proxy, nullptr);
  EXPECT_EQ(make_sprint()->dpi, nullptr);
  EXPECT_FALSE(make_sprint()->differentiates);
}

TEST(Profiles, MiddleboxHopCountsMatchPaper) {
  EXPECT_EQ(make_tmus()->hops_before_middlebox, 2);  // TTL=3 evades (§6.2)
  EXPECT_EQ(make_gfc()->hops_before_middlebox, 9);   // TTL=10 (§6.5)
  EXPECT_EQ(make_iran()->hops_before_middlebox, 7);  // 8 hops away (§6.6)
}

TEST(Profiles, ClassifierQuirksMatchPaper) {
  auto testbed = make_testbed();
  EXPECT_EQ(testbed->dpi->engine().config().mode,
            ClassifierConfig::Mode::kPerPacket);
  EXPECT_TRUE(testbed->dpi->engine().config().inspect_udp);
  EXPECT_EQ(testbed->dpi->engine().config().packet_inspection_limit, 5u);

  auto tmus = make_tmus();
  EXPECT_EQ(tmus->dpi->engine().config().mode, ClassifierConfig::Mode::kStream);
  EXPECT_FALSE(tmus->dpi->engine().config().stream_handles_out_of_order);
  EXPECT_FALSE(tmus->dpi->engine().config().inspect_udp);
  EXPECT_TRUE(tmus->dpi->engine().config().flush_flow_on_rst);
  EXPECT_FALSE(tmus->dpi->engine().config().result_timeout.has_value());

  auto gfc = make_gfc();
  EXPECT_TRUE(gfc->dpi->engine().config().stream_handles_out_of_order);
  EXPECT_FALSE(gfc->dpi->engine().config().validated_anomalies &
               netsim::anomaly_bit(netsim::Anomaly::kBadTcpChecksum));
  EXPECT_TRUE(gfc->dpi->engine().config().idle_eviction_threshold != nullptr);
  EXPECT_TRUE(gfc->dpi->config().endpoint_escalation);

  auto iran = make_iran();
  EXPECT_FALSE(iran->dpi->engine().config().match_and_forget);
  EXPECT_TRUE(iran->dpi->engine().config().only_ports.contains(80));
  EXPECT_EQ(iran->dpi->engine().config().packet_inspection_limit, 0u);
}

TEST(Profiles, DiurnalLoadShape) {
  // Trough at 4am, peak at 4pm.
  EXPECT_NEAR(diurnal_load(4.0), 0.0, 1e-9);
  EXPECT_NEAR(diurnal_load(16.0), 1.0, 1e-9);
  EXPECT_GT(diurnal_load(20.0), 0.5);
  EXPECT_LT(diurnal_load(2.0), 0.2);
}

TEST(Profiles, GfcEvictionFastWhenBusySlowWhenQuiet) {
  using netsim::hours;
  using netsim::seconds;
  // 16:00 virtual: busy -> threshold near 40 s.
  auto busy = gfc_eviction_threshold(hours(16));
  EXPECT_LT(busy, seconds(60));
  // 04:00 virtual: quiet -> threshold far above the 240 s test ceiling.
  auto quiet = gfc_eviction_threshold(hours(4));
  EXPECT_GT(quiet, seconds(240));
}

}  // namespace
}  // namespace liberate::dpi
