#include <gtest/gtest.h>

#include "dpi/middlebox.h"
#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::dpi {
namespace {

using namespace netsim;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;
  TransparentHttpProxy* proxy = nullptr;

  Rig() : client(net.client_port(), ip_addr("10.0.0.1"),
                 OsProfile::linux_profile()),
          server(net.server_port(), ip_addr("10.9.9.9"),
                 OsProfile::linux_profile()) {
    net.attach_client(&client);
    net.attach_server(&server);
    net.emplace<RouterHop>(ip_addr("10.5.0.1"));
    proxy = &net.emplace<TransparentHttpProxy>(TransparentHttpProxy::Config{});
    net.emplace<RouterHop>(ip_addr("10.5.0.2"));
  }
};

void serve_video(Host& server, std::size_t bytes, std::uint16_t port = 80) {
  server.tcp_listen(port, [bytes](TcpConnection& c) {
    c.on_data([&c, bytes](BytesView) {
      std::string head =
          "HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n";
      Bytes body(bytes, 0x33);
      c.send(std::string_view(head));
      c.send(BytesView(body));
    });
  });
}

TEST(TransparentProxy, RelaysHttpEndToEnd) {
  Rig rig;
  serve_video(rig.server, 10 * 1024);
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  std::string got;
  conn.on_data([&](BytesView d) { got += to_string(d); });
  conn.on_established([&] {
    conn.send(std::string_view(
        "GET /clip.mp4 HTTP/1.1\r\nHost: video.nbcsports.com\r\n\r\n"));
  });
  rig.loop.run_until_idle();
  EXPECT_NE(got.find("200 OK"), std::string::npos);
  EXPECT_GE(got.size(), 10u * 1024);
  EXPECT_EQ(rig.proxy->sessions_opened(), 1u);
  EXPECT_EQ(rig.proxy->throttled_sessions(), 1u);
}

TEST(TransparentProxy, ThrottlesVideoToConfiguredRate) {
  Rig rig;
  serve_video(rig.server, 512 * 1024);
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  std::size_t got = 0;
  TimePoint done = 0;
  conn.on_data([&](BytesView d) {
    got += d.size();
    done = rig.loop.now();
  });
  conn.on_established([&] {
    conn.send(std::string_view("GET /c HTTP/1.1\r\nHost: x\r\n\r\n"));
  });
  rig.loop.run_until_idle();
  ASSERT_GT(got, 512u * 1024);
  double mbps = 8.0 * static_cast<double>(got) / to_seconds(done) / 1e6;
  EXPECT_LT(mbps, 1.7);  // Stream Saver: ~1.5 Mbps
  EXPECT_GT(mbps, 1.0);
}

TEST(TransparentProxy, NonVideoContentNotThrottled) {
  Rig rig;
  rig.server.tcp_listen(80, [](TcpConnection& c) {
    c.on_data([&c](BytesView) {
      std::string head =
          "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n";
      Bytes body(256 * 1024, 'a');
      c.send(std::string_view(head));
      c.send(BytesView(body));
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  std::size_t got = 0;
  TimePoint done = 0;
  conn.on_data([&](BytesView d) {
    got += d.size();
    done = rig.loop.now();
  });
  conn.on_established([&] {
    conn.send(std::string_view("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
  });
  rig.loop.run_until_idle();
  ASSERT_GT(got, 256u * 1024);
  double mbps = 8.0 * static_cast<double>(got) / to_seconds(done) / 1e6;
  EXPECT_GT(mbps, 5.0);  // effectively unthrottled
  EXPECT_EQ(rig.proxy->throttled_sessions(), 0u);
}

TEST(TransparentProxy, NonProxiedPortPassesThrough) {
  Rig rig;
  serve_video(rig.server, 128 * 1024, /*port=*/8080);
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 8080);
  std::size_t got = 0;
  TimePoint done = 0;
  conn.on_data([&](BytesView d) {
    got += d.size();
    done = rig.loop.now();
  });
  conn.on_established([&] {
    conn.send(std::string_view("GET /c HTTP/1.1\r\nHost: x\r\n\r\n"));
  });
  rig.loop.run_until_idle();
  ASSERT_GT(got, 128u * 1024);
  EXPECT_EQ(rig.proxy->sessions_opened(), 0u);
  double mbps = 8.0 * static_cast<double>(got) / to_seconds(done) / 1e6;
  EXPECT_GT(mbps, 5.0);  // video on a non-80 port evades Stream Saver (§6.3)
}

TEST(TransparentProxy, AbsorbsCraftedInvalidPackets) {
  Rig rig;
  serve_video(rig.server, 1024);
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    // Inert packet with a bad TCP checksum: a terminating proxy eats it.
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 1;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    h.checksum_override = 0x0bad;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("inert")));
  });
  rig.loop.run_until_idle();
  EXPECT_GE(rig.proxy->crafted_packets_absorbed(), 1u);
  // Nothing crafted reached the server's wire: every packet the server saw
  // has the proxy's regenerated (valid) form.
  for (const auto& d : rig.server.raw_received()) {
    auto p = parse_packet(d);
    ASSERT_TRUE(p.ok());
    EXPECT_FALSE(has_anomaly(anomalies_of(p.value()),
                             Anomaly::kBadTcpChecksum));
  }
}

TEST(TransparentProxy, ClientCloseReachesServer) {
  Rig rig;
  bool server_closed = false;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_closed([&] { server_closed = true; });
    c.on_data([&c](BytesView) { c.close(); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(std::string_view("GET / HTTP/1.1\r\n\r\n"));
    conn.close();
  });
  rig.loop.run_until_idle();
  EXPECT_TRUE(server_closed);
}

}  // namespace
}  // namespace liberate::dpi
