#include "dpi/rules.h"

#include <gtest/gtest.h>

#include "dpi/stun_parser.h"

namespace liberate::dpi {
namespace {

MatchRule http_rule() {
  MatchRule r;
  r.name = "r";
  r.traffic_class = "video";
  r.keywords = {"GET", "primevideo.com"};
  return r;
}

TEST(Rules, AllKeywordsMustMatch) {
  MatchRule r = http_rule();
  EXPECT_TRUE(r.matches_content(
      BytesView(to_bytes("GET / HTTP/1.1\r\nHost: primevideo.com\r\n\r\n"))));
  EXPECT_FALSE(
      r.matches_content(BytesView(to_bytes("GET / HTTP/1.1\r\nHost: x\r\n"))));
  EXPECT_FALSE(r.matches_content(BytesView(to_bytes("primevideo.com only"))));
}

TEST(Rules, MatchingIsCaseInsensitive) {
  MatchRule r = http_rule();
  EXPECT_TRUE(r.matches_content(
      BytesView(to_bytes("get / http/1.1\r\nhost: PRIMEVIDEO.COM\r\n"))));
}

TEST(Rules, AnchoredRequiresKeywordAtOffsetZero) {
  MatchRule r = http_rule();
  r.anchored = true;
  EXPECT_TRUE(r.matches_content(
      BytesView(to_bytes("GET /x HTTP/1.1\r\nHost: primevideo.com\r\n"))));
  // One prepended byte defeats the anchored matcher (the T-Mobile/GFC trick).
  EXPECT_FALSE(r.matches_content(
      BytesView(to_bytes("XGET /x HTTP/1.1\r\nHost: primevideo.com\r\n"))));
}

TEST(Rules, BlindedContentNeverMatches) {
  MatchRule r = http_rule();
  std::string payload = "GET / HTTP/1.1\r\nHost: primevideo.com\r\n\r\n";
  Bytes inverted = to_bytes(payload);
  for (auto& b : inverted) b = static_cast<std::uint8_t>(~b);
  EXPECT_FALSE(r.matches_content(inverted));
}

TEST(Rules, StunAttributeRule) {
  MatchRule r;
  r.traffic_class = "voip";
  r.udp = true;
  r.stun_attribute = kStunAttrMsServiceQuality;

  StunMessage msg;
  msg.message_type = 0x0001;
  msg.transaction_id = Bytes(12, 3);
  msg.attributes.push_back(StunAttribute{kStunAttrMsServiceQuality, {1, 2}});
  EXPECT_TRUE(r.matches_content(serialize_stun(msg)));

  StunMessage no_attr;
  no_attr.message_type = 0x0001;
  no_attr.transaction_id = Bytes(12, 3);
  EXPECT_FALSE(r.matches_content(serialize_stun(no_attr)));

  // Raw bytes containing 0x80 0x55 but not a valid STUN message: no match
  // (the rule parses, it doesn't grep).
  Bytes fake{0x80, 0x55, 0x80, 0x55, 0x80, 0x55};
  EXPECT_FALSE(r.matches_content(fake));
}

TEST(Rules, PortAndUdpConstraints) {
  std::vector<MatchRule> rules;
  MatchRule r = http_rule();
  r.dst_port = 80;
  rules.push_back(r);

  Bytes content = to_bytes("GET / HTTP/1.1\r\nHost: primevideo.com\r\n");
  RuleContext ctx;
  ctx.dst_port = 80;
  ctx.udp = false;
  EXPECT_TRUE(match_rules_reference(rules, content, ctx));
  ctx.dst_port = 8080;
  EXPECT_FALSE(match_rules_reference(rules, content, ctx));
  ctx.dst_port = 80;
  ctx.udp = true;  // TCP rule never matches UDP content
  EXPECT_FALSE(match_rules_reference(rules, content, ctx));
}

TEST(Rules, PacketIndexConstraint) {
  std::vector<MatchRule> rules;
  MatchRule r;
  r.traffic_class = "voip";
  r.udp = true;
  r.keywords = {"probe"};
  r.only_packet_index = 1;
  rules.push_back(r);

  Bytes content = to_bytes("probe");
  RuleContext ctx;
  ctx.udp = true;
  ctx.packet_index = 1;
  EXPECT_TRUE(match_rules_reference(rules, content, ctx));
  ctx.packet_index = 2;  // reordered to second place: no match
  EXPECT_FALSE(match_rules_reference(rules, content, ctx));
  ctx.packet_index.reset();
  EXPECT_FALSE(match_rules_reference(rules, content, ctx));
}

TEST(Rules, FirstMatchingRuleWins) {
  std::vector<MatchRule> rules(2, http_rule());
  rules[0].name = "first";
  rules[1].name = "second";
  Bytes content = to_bytes("GET / HTTP/1.1\r\nHost: primevideo.com\r\n");
  auto hit = match_rules_reference(rules, content, RuleContext{80, false, {}});
  ASSERT_TRUE(hit);
  EXPECT_EQ(hit.rule->name, "first");
}

}  // namespace
}  // namespace liberate::dpi
