// AmbiguityDigest unit tests: ordering invariance, distance semantics, and
// the strict JSON codec (docs/fingerprinting.md).
#include "fingerprint/ambiguity.h"

#include <gtest/gtest.h>

namespace liberate::fingerprint {
namespace {

AmbiguityDigest digest_of(std::initializer_list<DimensionResult> dims) {
  AmbiguityDigest d;
  for (const DimensionResult& r : dims) d.add(r);
  return d;
}

TEST(AmbiguityDigest, DimensionsSortRegardlessOfInsertionOrder) {
  AmbiguityDigest forward = digest_of({{"alpha", 1, 2}, {"beta", 2, 2}});
  AmbiguityDigest reversed = digest_of({{"beta", 2, 2}, {"alpha", 1, 2}});
  EXPECT_EQ(forward, reversed);
  EXPECT_EQ(forward.fingerprint_hex(), reversed.fingerprint_hex());
  ASSERT_EQ(forward.dims.size(), 2u);
  EXPECT_EQ(forward.dims[0].dimension, "alpha");
  EXPECT_EQ(forward.dims[1].dimension, "beta");
}

TEST(AmbiguityDigest, FindLocatesDimensions) {
  AmbiguityDigest d = digest_of({{"tcp-overlap", 0x39, 3}});
  ASSERT_NE(d.find("tcp-overlap"), nullptr);
  EXPECT_EQ(d.find("tcp-overlap")->bits, 0x39u);
  EXPECT_EQ(d.find("missing"), nullptr);
  EXPECT_FALSE(d.empty());
  EXPECT_TRUE(AmbiguityDigest{}.empty());
}

TEST(AmbiguityDigest, FingerprintSensitiveToBitsAndDimensions) {
  AmbiguityDigest a = digest_of({{"tcp-overlap", 0x39, 3}});
  AmbiguityDigest bits = digest_of({{"tcp-overlap", 0x3a, 3}});
  AmbiguityDigest name = digest_of({{"tcp-underlap", 0x39, 3}});
  EXPECT_NE(a.fingerprint_hex(), bits.fingerprint_hex());
  EXPECT_NE(a.fingerprint_hex(), name.fingerprint_hex());
}

TEST(AmbiguityDistance, HammingOverSharedDimensions) {
  AmbiguityDigest a = digest_of({{"x", 0b0110, 2}, {"y", 0b01, 1}});
  AmbiguityDigest b = digest_of({{"x", 0b0101, 2}, {"y", 0b01, 1}});
  EXPECT_EQ(ambiguity_distance(a, a), 0u);
  EXPECT_EQ(ambiguity_distance(a, b), 2u);  // bits 0 and 1 of "x" differ
  EXPECT_EQ(ambiguity_distance(b, a), 2u);
}

TEST(AmbiguityDistance, UnsharedDimensionsPayFullWidth) {
  AmbiguityDigest a = digest_of({{"x", 0b01, 1}});
  AmbiguityDigest b = digest_of({{"x", 0b01, 1}, {"z", 0b1010, 2}});
  // "z" is probed on one side only: 2 * variant_count = 4 penalty.
  EXPECT_EQ(ambiguity_distance(a, b), 4u);
  EXPECT_EQ(ambiguity_distance(b, a), 4u);
}

TEST(AmbiguityDigest, JsonRoundTripIsExact) {
  AmbiguityDigest d =
      digest_of({{"frag-overlap", 0xaa, 4}, {"tcp-overlap", 0x39, 3}});
  auto parsed = AmbiguityDigest::from_json(d.to_json());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, d);
  EXPECT_EQ(parsed->to_json(), d.to_json());
}

TEST(AmbiguityDigest, JsonRejectsMalformedAndWrongVersion) {
  EXPECT_FALSE(AmbiguityDigest::from_json("").has_value());
  EXPECT_FALSE(AmbiguityDigest::from_json("[]").has_value());
  EXPECT_FALSE(AmbiguityDigest::from_json("{\"version\":1}").has_value());
  AmbiguityDigest d = digest_of({{"x", 1, 1}});
  std::string text = d.to_json();
  const std::size_t at = text.find(":1");
  ASSERT_NE(at, std::string::npos);
  std::string wrong = text;
  wrong.replace(at, 2, ":9");
  EXPECT_FALSE(AmbiguityDigest::from_json(wrong).has_value());
}

TEST(AmbiguityDigest, ResolutionLabelRendersHexBits) {
  EXPECT_EQ(resolution_label({"tcp-overlap", 0x25, 3}), "tcp-overlap:25");
}

}  // namespace
}  // namespace liberate::fingerprint
