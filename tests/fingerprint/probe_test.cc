// Probe engine tests: catalog shape and determinism, strict codec rejects,
// digest invariance across worker counts and match backends, and the
// profile × dimension discrimination matrix over every shipped DPI profile
// (docs/fingerprinting.md).
#include "fingerprint/probe.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "dpi/match_program.h"
#include "dpi/profiles.h"

namespace liberate::fingerprint {
namespace {

/// Every environment that carries a DPI middlebox (proxy-only and neutral
/// paths have nothing to fingerprint).
const std::vector<std::string> kDpiProfiles = {
    "testbed", "tmus",     "gfc",  "iran",
    "suricata", "zeek",    "ndpi", "conntrack-strict",
    "permissive"};

TEST(ProbeCatalog, IsDeterministicAndCoversEveryDimension) {
  const auto a = ambiguity_probe_catalog(1);
  const auto b = ambiguity_probe_catalog(1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;

  std::map<std::string, std::set<std::uint32_t>> variants;
  for (const ProbeScript& s : a) {
    EXPECT_FALSE(s.dimension.empty());
    EXPECT_FALSE(s.packets.empty()) << s.dimension;
    // Variants within a dimension must be unique or the digest bits collide.
    EXPECT_TRUE(variants[s.dimension].insert(s.variant).second)
        << s.dimension << "/" << s.variant;
  }
  EXPECT_EQ(a.size(), 19u);
  EXPECT_EQ(variants.size(), 10u);
}

TEST(ProbeCodec, RejectsMalformedInputs) {
  ProbeScript s;
  s.dimension = "d";
  s.variant = 1;
  s.isn = 5000;
  s.packets.emplace_back();  // one default segment, empty payload
  const Bytes good = encode_probe_script(s);
  ASSERT_EQ(good.size(), 33u);  // fixed layout: header 18 + segment 15
  ASSERT_TRUE(decode_probe_script(good).has_value());

  // Bad magic.
  Bytes bad = good;
  bad[3] = '2';
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // Every proper prefix truncates some field.
  for (std::size_t n = 0; n < good.size(); ++n) {
    EXPECT_FALSE(decode_probe_script(BytesView(good.data(), n)).has_value())
        << "prefix " << n;
  }
  // Trailing byte after a complete script.
  bad = good;
  bad.push_back(0);
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // send_syn out of bool range.
  bad = good;
  bad[15] = 2;
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // Unknown packet kind.
  bad = good;
  bad[18] = 2;
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // corrupt_tcp_checksum out of bool range.
  bad = good;
  bad[25] = 2;
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // Oversized packet count (cap 1024).
  bad = good;
  bad[16] = 0x05;
  bad[17] = 0x00;
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // Oversized payload length (cap 65536).
  bad = good;
  bad[29] = 0x00;
  bad[30] = 0x01;
  bad[31] = 0x00;
  bad[32] = 0x01;
  EXPECT_FALSE(decode_probe_script(bad).has_value());
  // Oversized dimension name (cap 256).
  Bytes long_name = {0x41, 0x50, 0x76, 0x31, 0x01, 0x01};
  long_name.resize(long_name.size() + 300, 'a');
  EXPECT_FALSE(decode_probe_script(long_name).has_value());
}

TEST(ProbeEngine, DigestInvariantAcrossWorkersAndBackends) {
  const dpi::MatchBackend saved = dpi::match_backend();
  for (const std::string& name : kDpiProfiles) {
    dpi::set_match_backend(dpi::MatchBackend::kReference);
    const AmbiguityProbeResult baseline = probe_environment(name);
    EXPECT_EQ(baseline.probe_flows, 19u) << name;
    EXPECT_EQ(baseline.digest.dims.size(), 10u) << name;
    for (dpi::MatchBackend backend :
         {dpi::MatchBackend::kReference, dpi::MatchBackend::kCompiled}) {
      for (std::size_t workers : {std::size_t{1}, std::size_t{2},
                                  std::size_t{8}}) {
        dpi::set_match_backend(backend);
        AmbiguityProbeOptions opts;
        opts.workers = workers;
        const AmbiguityProbeResult got = probe_environment(name, opts);
        EXPECT_EQ(got.digest, baseline.digest)
            << name << " workers=" << workers << " backend="
            << (backend == dpi::MatchBackend::kCompiled ? "compiled"
                                                        : "reference");
      }
    }
  }
  dpi::set_match_backend(saved);
}

TEST(ProbeEngine, DiscriminatesEveryShippedProfilePairwise) {
  std::vector<AmbiguityDigest> digests;
  std::set<std::string> hexes;
  for (const std::string& name : kDpiProfiles) {
    AmbiguityProbeResult r = probe_environment(name);
    hexes.insert(r.digest.fingerprint_hex());
    digests.push_back(std::move(r.digest));
  }
  // All fingerprints pairwise distinct.
  EXPECT_EQ(hexes.size(), kDpiProfiles.size());
  for (std::size_t i = 0; i < digests.size(); ++i) {
    for (std::size_t j = i + 1; j < digests.size(); ++j) {
      EXPECT_GT(ambiguity_distance(digests[i], digests[j]), 0u)
          << kDpiProfiles[i] << " vs " << kDpiProfiles[j];
      // Every pair must disagree on at least one probed dimension — the
      // N × M matrix has no behaviourally identical rows.
      bool dim_differs = false;
      for (const DimensionResult& d : digests[i].dims) {
        const DimensionResult* o = digests[j].find(d.dimension);
        if (o != nullptr && o->bits != d.bits) dim_differs = true;
      }
      EXPECT_TRUE(dim_differs)
          << kDpiProfiles[i] << " vs " << kDpiProfiles[j];
    }
  }
}

TEST(ProbeEngine, ShippedProfileFingerprintsAreStable) {
  // Golden digests: the versioned fingerprint surface (ambiguity/v1). A
  // change here is a digest-format break — bump AmbiguityDigest::kFormat so
  // persisted caches invalidate instead of mis-matching.
  const std::map<std::string, std::string> kGolden = {
      {"testbed", "5d69fc5b847c62c7:ef7a7eabd391d0b2"},
      {"suricata", "4c210a72dfd7e32a:c9691d9b46763205"},
      {"zeek", "10e9d7b0f120794e:5d9ce55eea6ce216"},
      {"ndpi", "19dd803fb8ae4fd0:7a436f9ecd4ab0e8"},
      {"conntrack-strict", "213cdd272ea8cafe:05e1ef9dde65a25f"},
      {"permissive", "ddce92ebb40c5222:b436dd20852f2298"},
  };
  for (const auto& [name, hex] : kGolden) {
    EXPECT_EQ(probe_environment(name).digest.fingerprint_hex(), hex) << name;
  }
}

}  // namespace
}  // namespace liberate::fingerprint
