// Codec fuzz smoke: seed-driven parse→mutate→serialize campaigns over every
// wire codec and application parser. Locally a few hundred iterations; CI
// raises LIBERATE_FUZZ_ITERATIONS to 10000 under ASan/UBSan. Any failure
// names the exact iteration seed — `run_codec_iteration(seed, stats)` is the
// whole repro.
#include "fuzz/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace liberate::fuzz {
namespace {

std::uint64_t campaign_iterations(std::uint64_t fallback) {
  const char* env = std::getenv("LIBERATE_FUZZ_ITERATIONS");
  if (!env) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

constexpr std::uint64_t kCodecBaseSeed = 0xC0DEC;

TEST(FuzzSmokeCodec, CampaignRunsCleanAndCoversEveryPath) {
  const std::uint64_t iterations = campaign_iterations(400);
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = iteration_seed(kCodecBaseSeed, i);
    run_codec_iteration(seed, stats);
    ASSERT_EQ(stats.roundtrip_mismatches, 0u)
        << "repro: liberate::fuzz::run_codec_iteration(0x" << std::hex << seed
        << "ULL, stats)";
  }
  EXPECT_EQ(stats.iterations, iterations);
  // Coverage telemetry: a campaign that stopped exercising a path is a bug
  // in the harness, not a pass.
  EXPECT_GT(stats.inputs, 3 * iterations);
  EXPECT_GT(stats.parsed_packets, 0u);
  EXPECT_GT(stats.roundtrips_checked, iterations);
  EXPECT_GT(stats.datagrams_reassembled, 0u);
}

TEST(FuzzSmokeCodec, CampaignIsDeterministic) {
  FuzzStats a = run_codec_campaign(7, 50);
  FuzzStats b = run_codec_campaign(7, 50);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.parsed_packets, b.parsed_packets);
  EXPECT_EQ(a.roundtrips_checked, b.roundtrips_checked);
  EXPECT_EQ(a.datagrams_reassembled, b.datagrams_reassembled);
  EXPECT_EQ(a.fragments_pushed, b.fragments_pushed);
}

TEST(FuzzSmokeCodec, IterationSeedsAreDistinctStreams) {
  EXPECT_NE(iteration_seed(1, 0), iteration_seed(1, 1));
  EXPECT_NE(iteration_seed(1, 0), iteration_seed(2, 0));
}

TEST(FuzzCorpus, EveryCheckedInEntryReplaysClean) {
  auto entries = load_corpus(LIBERATE_FUZZ_CORPUS_DIR);
  ASSERT_FALSE(entries.empty())
      << "no corpus at " << LIBERATE_FUZZ_CORPUS_DIR;
  FuzzStats stats;
  for (const CorpusEntry& e : entries) {
    SCOPED_TRACE(e.name);
    ASSERT_FALSE(e.data.empty()) << "empty/undecodable corpus file";
    run_corpus_entry(e.data, stats);
    // Mutated corpus neighborhood: every prefix and a few bit flips.
    for (std::size_t n = 0; n <= e.data.size();
         n += 1 + e.data.size() / 64) {
      run_corpus_entry(BytesView(e.data.data(), n), stats);
    }
    for (std::size_t bit = 0; bit < 32 && bit < e.data.size() * 8;
         bit += 7) {
      Bytes flipped = e.data;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      run_corpus_entry(flipped, stats);
    }
  }
  EXPECT_EQ(stats.roundtrip_mismatches, 0u);
  EXPECT_GT(stats.inputs, entries.size());
}

}  // namespace
}  // namespace liberate::fuzz
