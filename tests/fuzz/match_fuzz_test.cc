// Match-program fuzz smoke: the differential campaign from src/fuzz, sized
// for CI. Locally a few hundred iterations; the CI fuzz-smoke job raises
// LIBERATE_FUZZ_ITERATIONS under ASan/UBSan, where a compiled-matcher
// out-of-bounds read (automaton table, scratch stamps) dies loudly even when
// verdicts happen to agree. Any divergence names the exact iteration seed —
// `run_match_program_iteration(seed, stats)` is the whole repro.
#include "fuzz/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace liberate::fuzz {
namespace {

std::uint64_t campaign_iterations(std::uint64_t fallback) {
  const char* env = std::getenv("LIBERATE_FUZZ_ITERATIONS");
  if (!env) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

constexpr std::uint64_t kMatchBaseSeed = 0x3A7C4;

TEST(FuzzSmokeMatch, CampaignRunsCleanAndCoversEveryPath) {
  const std::uint64_t iterations = campaign_iterations(400);
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = iteration_seed(kMatchBaseSeed, i);
    run_match_program_iteration(seed, stats);
    ASSERT_EQ(stats.match_divergences, 0u)
        << "repro: liberate::fuzz::run_match_program_iteration(0x" << std::hex
        << seed << "ULL, stats)";
  }
  EXPECT_EQ(stats.match_programs_compiled, iterations);
  EXPECT_GE(stats.match_cases_checked, 12 * iterations);
}

TEST(FuzzSmokeMatch, CampaignIsDeterministic) {
  FuzzStats a = run_match_program_campaign(5, 50);
  FuzzStats b = run_match_program_campaign(5, 50);
  EXPECT_EQ(a.match_cases_checked, b.match_cases_checked);
  EXPECT_EQ(a.match_programs_compiled, b.match_programs_compiled);
  EXPECT_EQ(a.match_fallback_programs, b.match_fallback_programs);
  EXPECT_EQ(a.match_divergences, 0u);
  EXPECT_EQ(b.match_divergences, 0u);
}

TEST(FuzzMatchCorpus, EveryCheckedInEntryReplaysClean) {
  auto entries = load_corpus(std::string(LIBERATE_FUZZ_CORPUS_DIR) + "/match");
  ASSERT_GE(entries.size(), 8u)
      << "expected the checked-in match corpus at "
      << LIBERATE_FUZZ_CORPUS_DIR << "/match";
  FuzzStats stats;
  for (const auto& entry : entries) {
    SCOPED_TRACE(entry.name);
    run_match_corpus_entry(BytesView(entry.data), stats);
    ASSERT_EQ(stats.match_divergences, 0u);
  }
  EXPECT_EQ(stats.match_cases_checked, entries.size() * 4);
}

}  // namespace
}  // namespace liberate::fuzz
