// Probe-codec fuzz smoke: seed-driven round-trip + mutation campaigns over
// the ambiguity probe script codec (fingerprint/probe.h, magic "APv1").
// Locally a few hundred iterations; CI raises LIBERATE_FUZZ_ITERATIONS to
// 10000 under ASan/UBSan. Any failure names the exact iteration seed —
// `run_probe_codec_iteration(seed, stats)` is the whole repro.
#include "fuzz/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "fingerprint/probe.h"

namespace liberate::fuzz {
namespace {

std::uint64_t campaign_iterations(std::uint64_t fallback) {
  const char* env = std::getenv("LIBERATE_FUZZ_ITERATIONS");
  if (!env) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

constexpr std::uint64_t kProbeBaseSeed = 0xA3B1;

TEST(FuzzSmokeProbeCodec, CampaignRunsCleanAndCoversEveryPath) {
  const std::uint64_t iterations = campaign_iterations(400);
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = iteration_seed(kProbeBaseSeed, i);
    run_probe_codec_iteration(seed, stats);
    ASSERT_EQ(stats.roundtrip_mismatches, 0u)
        << "repro: liberate::fuzz::run_probe_codec_iteration(0x" << std::hex
        << seed << "ULL, stats)";
  }
  EXPECT_EQ(stats.iterations, iterations);
  // Coverage telemetry: every iteration pushes the pristine encoding plus a
  // mutation neighborhood through the decoder, and the strict identity check
  // must accept every pristine encoding.
  EXPECT_GT(stats.inputs, 9 * iterations);
  EXPECT_GE(stats.probe_scripts_decoded, iterations);
  EXPECT_GT(stats.roundtrips_checked, iterations);
}

TEST(FuzzSmokeProbeCodec, CampaignIsDeterministic) {
  FuzzStats a = run_probe_codec_campaign(7, 50);
  FuzzStats b = run_probe_codec_campaign(7, 50);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.probe_scripts_decoded, b.probe_scripts_decoded);
  EXPECT_EQ(a.roundtrips_checked, b.roundtrips_checked);
  EXPECT_EQ(a.roundtrip_mismatches, 0u);
  EXPECT_EQ(b.roundtrip_mismatches, 0u);
}

TEST(FuzzSmokeProbeCodec, EveryCatalogScriptRoundTrips) {
  // The shipped catalog must survive its own codec — these are exactly the
  // scripts a persisted probe set contains.
  const auto catalog = fingerprint::ambiguity_probe_catalog(1);
  ASSERT_FALSE(catalog.empty());
  for (const fingerprint::ProbeScript& script : catalog) {
    SCOPED_TRACE(script.dimension + "/" + std::to_string(script.variant));
    const Bytes encoded = fingerprint::encode_probe_script(script);
    const auto decoded = fingerprint::decode_probe_script(encoded);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, script);
  }
}

TEST(FuzzProbeCorpus, EveryCheckedInEntryReplaysClean) {
  auto entries = load_corpus(LIBERATE_FUZZ_CORPUS_DIR "/fingerprint");
  ASSERT_FALSE(entries.empty())
      << "no corpus at " << LIBERATE_FUZZ_CORPUS_DIR "/fingerprint";
  FuzzStats stats;
  for (const CorpusEntry& e : entries) {
    SCOPED_TRACE(e.name);
    ASSERT_FALSE(e.data.empty()) << "empty/undecodable corpus file";
    run_probe_corpus_entry(e.data, stats);
    // Mutated corpus neighborhood: every prefix and a few bit flips.
    for (std::size_t n = 0; n <= e.data.size(); n += 1 + e.data.size() / 64) {
      run_probe_corpus_entry(BytesView(e.data.data(), n), stats);
    }
    for (std::size_t bit = 0; bit < 32 && bit < e.data.size() * 8; bit += 7) {
      Bytes flipped = e.data;
      flipped[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      run_probe_corpus_entry(flipped, stats);
    }
  }
  EXPECT_EQ(stats.roundtrip_mismatches, 0u);
  // The corpus must contain accepted encodings, not just rejects.
  EXPECT_GT(stats.probe_scripts_decoded, 0u);
  EXPECT_GT(stats.inputs, entries.size());
}

}  // namespace
}  // namespace liberate::fuzz
