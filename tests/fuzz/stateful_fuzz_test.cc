// Stateful fuzz smoke: adversarial fragment streams through IpReassembler
// and adversarial segment streams through a live TcpConnection (including
// wrap-adjacent ISNs). Iteration count scales via LIBERATE_FUZZ_ITERATIONS
// (CI: 10000 under ASan/UBSan); every failure prints its one-seed repro.
#include "fuzz/fuzz.h"

#include <gtest/gtest.h>

#include <cstdlib>

namespace liberate::fuzz {
namespace {

std::uint64_t campaign_iterations(std::uint64_t fallback) {
  const char* env = std::getenv("LIBERATE_FUZZ_ITERATIONS");
  if (!env) return fallback;
  long long v = std::atoll(env);
  return v > 0 ? static_cast<std::uint64_t>(v) : fallback;
}

constexpr std::uint64_t kStatefulBaseSeed = 0x57A7E;

TEST(FuzzSmokeStateful, CampaignRunsCleanWithinResourceBounds) {
  const std::uint64_t iterations = campaign_iterations(150);
  FuzzStats stats;
  for (std::uint64_t i = 0; i < iterations; ++i) {
    const std::uint64_t seed = iteration_seed(kStatefulBaseSeed, i);
    run_stateful_iteration(seed, stats);
    ASSERT_EQ(stats.roundtrip_mismatches, 0u)
        << "repro: liberate::fuzz::run_stateful_iteration(0x" << std::hex
        << seed << "ULL, stats)";
  }
  EXPECT_EQ(stats.iterations, iterations);
  EXPECT_GT(stats.fragments_pushed, iterations);
  EXPECT_GT(stats.segments_injected, 10 * iterations);
  // Some sessions must actually deliver stream bytes, or the harness is
  // only ever exercising the reject paths.
  EXPECT_GT(stats.stream_bytes_delivered, 0u);
}

TEST(FuzzSmokeStateful, CampaignIsDeterministic) {
  FuzzStats a = run_stateful_campaign(11, 20);
  FuzzStats b = run_stateful_campaign(11, 20);
  EXPECT_EQ(a.fragments_pushed, b.fragments_pushed);
  EXPECT_EQ(a.segments_injected, b.segments_injected);
  EXPECT_EQ(a.datagrams_reassembled, b.datagrams_reassembled);
  EXPECT_EQ(a.stream_bytes_delivered, b.stream_bytes_delivered);
}

}  // namespace
}  // namespace liberate::fuzz
