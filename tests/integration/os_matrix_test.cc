// End-to-end reproduction of Table 3's "Server Response" columns: every TCP
// inert-packet variant is injected into a live flow against each server OS,
// and the expectation is whether the flow's application data survives
// unscathed (the crafted packet was dropped / never arrived) or not (it was
// delivered into the stream, or triggered a RST).
#include <gtest/gtest.h>

#include "core/evasion/registry.h"
#include "core/replay.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

using stack::OsProfile;

enum class Response {
  kInert,      // crafted packet neutralized: app data intact
  kCorrupts,   // delivered into the stream: app data corrupted
  kKillsFlow,  // provoked a RST that tears the connection down
};

struct Case {
  InertVariant variant;
  Response linux_r;
  Response macos_r;
  Response windows_r;
};

// Table 3, rightmost columns (TCP rows).
const Case kCases[] = {
    {InertVariant::kLowTtl, Response::kInert, Response::kInert,
     Response::kInert},  // dies in the network
    {InertVariant::kInvalidIpVersion, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kInvalidIpHeaderLength, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kIpTotalLengthLong, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kIpTotalLengthShort, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kWrongIpProtocol, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kWrongIpChecksum, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kInvalidIpOptions, Response::kCorrupts, Response::kCorrupts,
     Response::kInert},  // only Windows drops invalid options
    {InertVariant::kDeprecatedIpOptions, Response::kCorrupts,
     Response::kCorrupts, Response::kCorrupts},  // nobody drops these
    {InertVariant::kWrongTcpSeq, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kWrongTcpChecksum, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kTcpNoAckFlag, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kInvalidTcpDataOffset, Response::kInert, Response::kInert,
     Response::kInert},
    {InertVariant::kInvalidTcpFlagCombo, Response::kInert, Response::kInert,
     Response::kKillsFlow},  // note 6: Windows answers with a RST
};

class OsMatrix
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(OsMatrix, ServerResponseMatchesTable3) {
  const Case& c = kCases[std::get<0>(GetParam())];
  const int os_index = std::get<1>(GetParam());

  OsProfile os = os_index == 0   ? OsProfile::linux_profile()
                 : os_index == 1 ? OsProfile::macos_profile()
                                 : OsProfile::windows_profile();
  Response expected = os_index == 0   ? c.linux_r
                      : os_index == 1 ? c.macos_r
                                      : c.windows_r;

  // A plain network: two routers, NO middlebox. The question here is purely
  // what the server's OS does with the crafted packet.
  auto env = dpi::make_sprint();
  env->server_os = os;
  ReplayRunner runner(*env);

  InertInsertion technique(c.variant);
  ReplayOptions opts;
  opts.technique = &technique;
  opts.context.decoy_payload = decoy_request_payload();
  opts.context.middlebox_ttl = 2;  // dies at the second router
  auto app = trace::plain_web_trace();
  opts.context.matching_snippets = {Bytes(app.messages[0].payload)};

  auto outcome = runner.run(app, opts);

  switch (expected) {
    case Response::kInert:
      EXPECT_TRUE(outcome.completed) << technique.name() << " os=" << os.name;
      EXPECT_TRUE(outcome.payload_intact)
          << technique.name() << " os=" << os.name;
      break;
    case Response::kCorrupts:
      // Delivered into the stream: the exchange still finishes (TCP-wise)
      // but the bytes the server read are not what the client's app sent.
      EXPECT_FALSE(outcome.payload_intact)
          << technique.name() << " os=" << os.name;
      break;
    case Response::kKillsFlow:
      EXPECT_TRUE(outcome.blocked || !outcome.completed)
          << technique.name() << " os=" << os.name;
      EXPECT_GE(outcome.rsts_at_client, 1u);
      break;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table3ServerResponse, OsMatrix,
    ::testing::Combine(::testing::Range<std::size_t>(0, std::size(kCases)),
                       ::testing::Values(0, 1, 2)),
    [](const ::testing::TestParamInfo<OsMatrix::ParamType>& info) {
      InertInsertion t(kCases[std::get<0>(info.param)].variant);
      std::string name = t.name().substr(t.name().find('/') + 1);
      for (auto& ch : name) {
        if (ch == '-') ch = '_';
      }
      const char* os = std::get<1>(info.param) == 0   ? "linux"
                       : std::get<1>(info.param) == 1 ? "macos"
                                                      : "windows";
      return name + "_" + os;
    });

}  // namespace
}  // namespace liberate::core
