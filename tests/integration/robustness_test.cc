// Failure injection: evasion must survive real-path imperfections — loss
// (retransmitted matching payloads re-enter the shim and must be
// re-transformed identically) and jitter-induced reordering.
#include <gtest/gtest.h>

#include "core/evasion/registry.h"
#include "core/replay.h"
#include "dpi/normalizer.h"
#include "netsim/lossy.h"
#include "stack/host.h"
#include "trace/generators.h"

namespace liberate::core {
namespace {

using namespace netsim;
using stack::Host;
using stack::OsProfile;
using stack::TcpConnection;

TEST(Robustness, TcpSurvivesHeavyLoss) {
  EventLoop loop;
  Network net{loop};
  net.emplace<LossyElement>(0.08, /*seed=*/42);
  Host client(net.client_port(), ip_addr("10.0.0.1"),
              OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  Rng rng(3);
  Bytes blob = rng.bytes(64 * 1024);
  Bytes got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got.insert(got.end(), d.begin(), d.end()); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  loop.run_until_idle();
  EXPECT_EQ(got, blob);
  EXPECT_GT(conn.retransmissions(), 0u);
}

// A testbed-like DPI environment with loss in front of the classifier: the
// split technique must still evade even when pieces are retransmitted.
class LossyEvasion : public ::testing::TestWithParam<double> {};

TEST_P(LossyEvasion, SplitStillEvadesUnderLoss) {
  auto env = dpi::make_testbed();
  // The profile path is fixed; put loss between the client and the path by
  // wrapping the client port... simplest: build the rig via ReplayRunner and
  // inject loss with a dedicated environment clone is invasive. Instead,
  // drive a custom network with the same classifier config plus loss.
  dpi::MiddleboxConfig mc = env->dpi->config();

  auto lossy_env = std::make_unique<dpi::Environment>();
  lossy_env->name = "testbed-lossy";
  lossy_env->signal = dpi::Environment::Signal::kDirect;
  lossy_env->net.emplace<LossyElement>(GetParam(), /*seed=*/7);
  lossy_env->net.emplace<RouterHop>(ip_addr("10.8.0.1"));
  lossy_env->dpi = &lossy_env->net.emplace<dpi::DpiMiddlebox>(mc);
  lossy_env->net.emplace<RouterHop>(ip_addr("10.8.0.2"));
  lossy_env->hops_before_middlebox = 1;

  ReplayRunner runner(*lossy_env);
  auto app = trace::amazon_video_trace(32 * 1024);

  TcpSegmentSplit split(/*reversed=*/false);
  ReplayOptions opts;
  opts.technique = &split;
  opts.context.matching_snippets = {
      to_bytes("Host: d25xi40x97liuc.cloudfront.net")};
  opts.timeout = seconds(120);
  auto outcome = runner.run(app, opts);

  EXPECT_TRUE(outcome.completed) << "loss=" << GetParam();
  EXPECT_TRUE(outcome.payload_intact);
  EXPECT_FALSE(runner.differentiated(outcome)) << "loss=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(LossRates, LossyEvasion,
                         ::testing::Values(0.0, 0.02, 0.05));

TEST(Robustness, JitterReorderingDeliversIntact) {
  EventLoop loop;
  Network net{loop};
  // Jitter up to 20 ms against ~1 ms packet spacing: heavy reordering.
  net.emplace<JitterElement>(milliseconds(20), /*seed=*/5);
  Host client(net.client_port(), ip_addr("10.0.0.1"),
              OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  Rng rng(9);
  Bytes blob = rng.bytes(48 * 1024);
  Bytes got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got.insert(got.end(), d.begin(), d.end()); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  loop.run_until_idle();
  EXPECT_EQ(got, blob);
}

// §4.3 countermeasures in action: a normalizer in front of the classifier
// kills the inert techniques it was designed against, while splitting
// (which the normalizer cannot fix without full reassembly) still works.
TEST(Robustness, NormalizerCountermeasureKillsInertButNotSplit) {
  auto base = dpi::make_testbed();
  dpi::MiddleboxConfig mc = base->dpi->config();

  auto env = std::make_unique<dpi::Environment>();
  env->name = "testbed-normalized";
  env->signal = dpi::Environment::Signal::kDirect;
  env->net.emplace<RouterHop>(ip_addr("10.8.1.1"));
  dpi::NormalizerConfig nc;
  nc.drop_malformed = true;
  nc.ttl_floor = 16;
  env->net.emplace<dpi::NormalizerElement>(nc);
  env->dpi = &env->net.emplace<dpi::DpiMiddlebox>(mc);
  env->net.emplace<RouterHop>(ip_addr("10.8.1.2"));
  env->hops_before_middlebox = 1;

  ReplayRunner runner(*env);
  auto app = trace::amazon_video_trace(32 * 1024);
  TechniqueContext ctx;
  ctx.matching_snippets = {to_bytes("Host: d25xi40x97liuc.cloudfront.net")};
  ctx.decoy_payload = decoy_request_payload();
  ctx.middlebox_ttl = 2;

  auto run_with = [&](Technique& t) {
    ReplayOptions opts;
    opts.technique = &t;
    opts.context = ctx;
    auto out = runner.run(app, opts);
    return !runner.differentiated(out) && out.completed;
  };

  InertInsertion bad_checksum(InertVariant::kWrongTcpChecksum);
  EXPECT_FALSE(run_with(bad_checksum));  // normalizer ate the inert packet

  InertInsertion low_ttl(InertVariant::kLowTtl);
  // TTL floor: the decoy now REACHES the server... so classification still
  // changes, but the decoy corrupts the stream — not a usable evasion.
  ReplayOptions opts;
  opts.technique = &low_ttl;
  opts.context = ctx;
  auto ttl_out = runner.run(app, opts);
  EXPECT_FALSE(ttl_out.payload_intact);

  TcpSegmentSplit split(false);
  EXPECT_TRUE(run_with(split));  // still effective (paper: reassembly and
                                 // state cost money; normalization alone
                                 // does not stop splitting)
}

}  // namespace
}  // namespace liberate::core
