#include "netsim/checksum.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace liberate::netsim {
namespace {

// RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 -> sum 0xddf2 before
// complement, so the checksum is ~0xddf2 = 0x220d.
TEST(Checksum, Rfc1071WorkedExample) {
  Bytes data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(internet_checksum(data), 0x220d);
}

TEST(Checksum, OddLengthPadsWithZero) {
  Bytes even{0x12, 0x34, 0x56, 0x00};
  Bytes odd{0x12, 0x34, 0x56};
  EXPECT_EQ(internet_checksum(even), internet_checksum(odd));
}

TEST(Checksum, EmptyBufferIsAllOnes) {
  EXPECT_EQ(internet_checksum(BytesView{}), 0xffff);
}

// Fundamental property: inserting the computed checksum into the data and
// re-summing yields zero.
TEST(Checksum, VerificationProperty) {
  Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes data = rng.bytes(20 + rng.below(100));
    // Zero a 2-byte "checksum field" at an even offset.
    std::size_t field = 2 * (rng.below(data.size() / 2 - 1));
    data[field] = 0;
    data[field + 1] = 0;
    std::uint16_t cks = internet_checksum(data);
    data[field] = static_cast<std::uint8_t>(cks >> 8);
    data[field + 1] = static_cast<std::uint8_t>(cks);
    EXPECT_EQ(internet_checksum(data), 0x0000) << "trial " << trial;
  }
}

TEST(Checksum, AccumulateComposes) {
  Rng rng(17);
  Bytes data = rng.bytes(64);
  BytesView whole(data);
  // Split at even boundary: accumulate must compose.
  std::uint32_t partial = checksum_accumulate(0, whole.subspan(0, 30));
  partial = checksum_accumulate(partial, whole.subspan(30));
  EXPECT_EQ(checksum_finish(partial), internet_checksum(data));
}

TEST(Checksum, TransportChecksumDetectsCorruption) {
  Rng rng(23);
  Bytes segment = rng.bytes(40);
  segment[16] = 0;
  segment[17] = 0;
  std::uint16_t cks = transport_checksum(0x0a000001, 0x0a000002, 6, segment);
  segment[16] = static_cast<std::uint8_t>(cks >> 8);
  segment[17] = static_cast<std::uint8_t>(cks);

  // Intact: verifies (sum over pseudo-header + segment with checksum == 0).
  std::uint32_t sum = 0;
  sum += 0x0a00;
  sum += 0x0001;
  sum += 0x0a00;
  sum += 0x0002;
  sum += 6;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_accumulate(sum, segment);
  EXPECT_EQ(checksum_finish(sum), 0);

  // Flip a payload byte: no longer verifies.
  segment[20] ^= 0xff;
  sum = 0;
  sum += 0x0a00;
  sum += 0x0001;
  sum += 0x0a00;
  sum += 0x0002;
  sum += 6;
  sum += static_cast<std::uint32_t>(segment.size());
  sum = checksum_accumulate(sum, segment);
  EXPECT_NE(checksum_finish(sum), 0);
}

}  // namespace
}  // namespace liberate::netsim
