// Coverage for the ElementIo primitives path elements build on: delayed
// forwards, backward injection (immediate and delayed), and element
// ordering along the walk.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/packet.h"

namespace liberate::netsim {
namespace {

struct RecordingHost : HostIface {
  std::vector<std::pair<TimePoint, Bytes>> received;
  EventLoop* loop = nullptr;
  void receive(Bytes d) override {
    received.emplace_back(loop->now(), std::move(d));
  }
};

Bytes packet(std::string_view payload) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  return make_tcp_datagram(ip, tcp, to_bytes(payload));
}

std::string payload_of(const Bytes& d) {
  return to_string(parse_packet(d).value().app_payload());
}

/// An element that exercises a specific ElementIo primitive per payload tag.
class IoExerciser : public PathElement {
 public:
  void process(Bytes datagram, Direction dir, ElementIo& io) override {
    (void)dir;
    std::string p = payload_of(datagram);
    if (p == "delay-forward") {
      io.forward_after(seconds(2), std::move(datagram));
    } else if (p == "bounce") {
      io.send_back(packet("bounced"));
      io.forward(std::move(datagram));
    } else if (p == "bounce-later") {
      io.send_back_after(seconds(3), packet("late-bounce"));
      io.forward(std::move(datagram));
    } else {
      io.forward(std::move(datagram));
    }
  }
  std::string name() const override { return "exerciser"; }
};

struct Rig {
  EventLoop loop;
  Network net{loop};
  RecordingHost client, server;
  Rig() {
    client.loop = &loop;
    server.loop = &loop;
    net.attach_client(&client);
    net.attach_server(&server);
    net.emplace<RouterHop>(ip_addr("10.1.0.1"));
    net.emplace<IoExerciser>();
    net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  }
};

TEST(ElementIo, ForwardAfterDelaysDelivery) {
  Rig rig;
  rig.net.send_from_client(packet("delay-forward"));
  rig.net.send_from_client(packet("plain"));
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 2u);
  // The plain packet arrives first despite being sent second.
  EXPECT_EQ(payload_of(rig.server.received[0].second), "plain");
  EXPECT_EQ(payload_of(rig.server.received[1].second), "delay-forward");
  EXPECT_GE(rig.server.received[1].first, seconds(2));
}

TEST(ElementIo, SendBackReachesTheClientThroughUpstreamElements) {
  Rig rig;
  rig.net.send_from_client(packet("bounce"));
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 1u);
  EXPECT_EQ(payload_of(rig.server.received[0].second), "bounce");
  ASSERT_EQ(rig.client.received.size(), 1u);
  auto bounced = parse_packet(rig.client.received[0].second).value();
  EXPECT_EQ(to_string(bounced.app_payload()), "bounced");
  // It passed back through the upstream router: TTL decremented once.
  EXPECT_EQ(bounced.ip.ttl, 63);
}

TEST(ElementIo, SendBackAfterSchedulesBackwardInjection) {
  Rig rig;
  rig.net.send_from_client(packet("bounce-later"));
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.client.received.size(), 1u);
  EXPECT_EQ(payload_of(rig.client.received[0].second), "late-bounce");
  EXPECT_GE(rig.client.received[0].first, seconds(3));
}

TEST(ElementIo, ServerToClientTraversalHitsExerciserToo) {
  Rig rig;
  rig.net.send_from_server(packet("bounce"));
  rig.loop.run_until_idle();
  // For an s2c packet, "send_back" points at the server.
  ASSERT_EQ(rig.server.received.size(), 1u);
  EXPECT_EQ(payload_of(rig.server.received[0].second), "bounced");
  ASSERT_EQ(rig.client.received.size(), 1u);
  EXPECT_EQ(payload_of(rig.client.received[0].second), "bounce");
}

TEST(ElementIo, FifoOrderPreservedThroughTheWalk) {
  Rig rig;
  for (int i = 0; i < 20; ++i) {
    rig.net.send_from_client(packet("msg-" + std::to_string(i)));
  }
  rig.loop.run_until_idle();
  ASSERT_EQ(rig.server.received.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(payload_of(rig.server.received[static_cast<std::size_t>(i)].second),
              "msg-" + std::to_string(i));
  }
}

}  // namespace
}  // namespace liberate::netsim
