#include "netsim/event_loop.h"

#include <gtest/gtest.h>

namespace liberate::netsim {
namespace {

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(milliseconds(30), [&] { order.push_back(3); });
  loop.schedule(milliseconds(10), [&] { order.push_back(1); });
  loop.schedule(milliseconds(20), [&] { order.push_back(2); });
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), milliseconds(30));
}

TEST(EventLoop, TieBrokenByInsertionOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  loop.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, CallbacksCanScheduleMore) {
  EventLoop loop;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) loop.schedule(seconds(1), tick);
  };
  loop.schedule(seconds(1), tick);
  loop.run_until_idle();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(loop.now(), seconds(5));
}

TEST(EventLoop, RunUntilAdvancesTimeEvenWhenIdle) {
  EventLoop loop;
  loop.run_until(seconds(42));
  EXPECT_EQ(loop.now(), seconds(42));
}

TEST(EventLoop, RunUntilStopsAtDeadline) {
  EventLoop loop;
  bool early = false;
  bool late = false;
  loop.schedule(seconds(1), [&] { early = true; });
  loop.schedule(seconds(10), [&] { late = true; });
  loop.run_for(seconds(5));
  EXPECT_TRUE(early);
  EXPECT_FALSE(late);
  EXPECT_EQ(loop.now(), seconds(5));
  EXPECT_EQ(loop.pending(), 1u);
  loop.run_until_idle();
  EXPECT_TRUE(late);
}

}  // namespace
}  // namespace liberate::netsim
