#include "netsim/faulty.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::netsim {
namespace {

struct RecordingHost : HostIface {
  std::vector<Bytes> received;
  void receive(Bytes datagram) override {
    received.push_back(std::move(datagram));
  }
};

struct Testbed {
  EventLoop loop;
  Network net{loop};
  RecordingHost client, server;
  Testbed() {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

Bytes tcp_packet(std::uint16_t id, std::string_view payload) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  ip.identification = id;
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  return make_tcp_datagram(ip, tcp, to_bytes(payload));
}

// Counters copied out of a FaultyLink before its Network dies.
struct FaultCounts {
  std::uint64_t seen = 0, dropped = 0, duplicated = 0, truncated = 0,
                corrupted = 0, reordered = 0;
};

// Pushes `count` distinct packets through a FaultyLink and returns the
// delivered stream in arrival order.
std::vector<Bytes> run_stream(const FaultPolicy& policy, std::uint64_t seed,
                              int count, FaultCounts* counts_out = nullptr) {
  Testbed tb;
  auto& link = tb.net.emplace<FaultyLink>(policy, seed);
  for (int i = 0; i < count; ++i) {
    tb.net.send_from_client(
        tcp_packet(static_cast<std::uint16_t>(i), "payload-" + std::to_string(i)));
  }
  tb.loop.run_until_idle();
  if (counts_out) {
    *counts_out = {link.seen(),      link.dropped(),   link.duplicated(),
                   link.truncated(), link.corrupted(), link.reordered()};
  }
  return tb.server.received;
}

TEST(FaultyLink, SameSeedSameDeliveredByteStream) {
  const auto policy = FaultPolicy::adversarial();
  FaultCounts a_counts, b_counts;
  auto a = run_stream(policy, 0xFEED, 200, &a_counts);
  auto b = run_stream(policy, 0xFEED, 200, &b_counts);
  EXPECT_EQ(a, b);  // byte-identical, including order
  // Not just the stream: the entire fault sequence replays.
  EXPECT_EQ(a_counts.dropped, b_counts.dropped);
  EXPECT_EQ(a_counts.duplicated, b_counts.duplicated);
  EXPECT_EQ(a_counts.truncated, b_counts.truncated);
  EXPECT_EQ(a_counts.corrupted, b_counts.corrupted);
  EXPECT_EQ(a_counts.reordered, b_counts.reordered);
}

TEST(FaultyLink, DifferentSeedDifferentFaults) {
  const auto policy = FaultPolicy::adversarial();
  auto a = run_stream(policy, 1, 200);
  auto b = run_stream(policy, 2, 200);
  EXPECT_NE(a, b);
}

TEST(FaultyLink, EveryFaultTypeFires) {
  FaultPolicy policy;
  policy.loss = 0.1;
  policy.duplicate = 0.1;
  policy.truncate = 0.1;
  policy.corrupt = 0.1;
  policy.reorder = 0.1;
  policy.max_jitter = milliseconds(2);
  FaultCounts counts;
  run_stream(policy, 3, 400, &counts);
  EXPECT_EQ(counts.seen, 400u);
  EXPECT_GT(counts.dropped, 0u);
  EXPECT_GT(counts.duplicated, 0u);
  EXPECT_GT(counts.truncated, 0u);
  EXPECT_GT(counts.corrupted, 0u);
  EXPECT_GT(counts.reordered, 0u);
}

TEST(FaultyLink, CertainLossDeliversNothing) {
  FaultPolicy policy;
  policy.loss = 1.0;
  FaultCounts counts;
  auto got = run_stream(policy, 4, 50, &counts);
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(counts.dropped, 50u);
}

TEST(FaultyLink, CertainDuplicationDoublesDelivery) {
  FaultPolicy policy;
  policy.duplicate = 1.0;
  auto got = run_stream(policy, 5, 50);
  EXPECT_EQ(got.size(), 100u);
}

TEST(FaultyLink, TruncationKeepsNonEmptyPrefix) {
  FaultPolicy policy;
  policy.truncate = 1.0;
  Bytes original = tcp_packet(9, "a-reasonably-long-payload-to-truncate");
  Testbed tb;
  tb.net.emplace<FaultyLink>(policy, 6);
  for (int i = 0; i < 50; ++i) tb.net.send_from_client(original);
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 50u);
  for (const Bytes& d : tb.server.received) {
    EXPECT_GE(d.size(), 1u);
    EXPECT_LT(d.size(), original.size());
    EXPECT_TRUE(std::equal(d.begin(), d.end(), original.begin()));
  }
}

TEST(FaultyLink, JitterDelaysButDeliversAll) {
  FaultPolicy policy;
  policy.max_jitter = milliseconds(10);
  auto got = run_stream(policy, 7, 50);
  EXPECT_EQ(got.size(), 50u);
}

TEST(FaultyLink, EmplaceAtPositionsElementInChain) {
  // emplace_at(0) must put the faulty link *before* an existing tap, so
  // dropped packets never reach it.
  Testbed tb;
  auto& tap = tb.net.emplace<TapElement>("after");
  FaultPolicy policy;
  policy.loss = 1.0;
  tb.net.emplace_at<FaultyLink>(0, policy, 8);
  for (int i = 0; i < 10; ++i) {
    tb.net.send_from_client(tcp_packet(static_cast<std::uint16_t>(i), "x"));
  }
  tb.loop.run_until_idle();
  EXPECT_EQ(tap.count(Direction::kClientToServer), 0u);
  EXPECT_TRUE(tb.server.received.empty());
}

// End-to-end: a real TCP transfer survives checksum-preserving chaos (loss,
// duplication, reordering, jitter) through retransmission and in-order
// delivery, and arrives byte-identical.
TEST(FaultyLink, TcpTransferSurvivesReorderHeavyChaos) {
  EventLoop loop;
  Network net{loop};
  stack::Host client(net.client_port(), ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(net.server_port(), ip_addr("10.9.9.9"),
                     stack::OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  net.emplace<FaultyLink>(FaultPolicy::reorder_heavy(), 0xC4A05);

  Rng rng(99);
  Bytes blob = rng.bytes(64 * 1024);
  Bytes received;
  server.tcp_listen(80, [&](stack::TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  loop.run_until_idle();
  EXPECT_EQ(received, blob);
}

}  // namespace
}  // namespace liberate::netsim
