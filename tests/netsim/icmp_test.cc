#include "netsim/icmp.h"

#include <gtest/gtest.h>

#include "netsim/ipv4.h"
#include "netsim/packet.h"
#include "netsim/tcp.h"

namespace liberate::netsim {
namespace {

TEST(Icmp, SerializeParseRoundTrip) {
  IcmpMessage msg;
  msg.type = IcmpType::kTimeExceeded;
  msg.code = 0;
  msg.body = to_bytes("embedded");
  auto parsed = parse_icmp(serialize_icmp(msg)).value();
  EXPECT_EQ(parsed.type, IcmpType::kTimeExceeded);
  EXPECT_EQ(parsed.code, 0);
  EXPECT_EQ(to_string(parsed.body), "embedded");
}

TEST(Icmp, ExcerptContainsHeaderPlusEightBytes) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.0.0.9");
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kSyn;
  Bytes dgram = make_tcp_datagram(ip, tcp, to_bytes("payload-data"));

  Bytes excerpt = icmp_original_datagram_excerpt(dgram);
  EXPECT_EQ(excerpt.size(), 28u);  // 20-byte header + 8 payload bytes

  // The excerpt parses as an IP header and identifies the original flow —
  // that's what traceroute-style localization relies on.
  auto v = parse_ipv4(excerpt);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().src, ip_addr("10.0.0.1"));
  EXPECT_EQ(v.value().dst, ip_addr("10.0.0.9"));
  // First 8 payload bytes of a TCP segment = ports + sequence number.
  BytesView tcp_start = BytesView(excerpt).subspan(20);
  EXPECT_EQ((tcp_start[0] << 8) | tcp_start[1], 1234);
  EXPECT_EQ((tcp_start[2] << 8) | tcp_start[3], 80);
}

TEST(Icmp, TooShortFails) {
  Bytes tiny{11, 0};
  EXPECT_FALSE(parse_icmp(tiny).ok());
}

}  // namespace
}  // namespace liberate::netsim
