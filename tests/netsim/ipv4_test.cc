#include "netsim/ipv4.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace liberate::netsim {
namespace {

Ipv4Header basic_header() {
  Ipv4Header h;
  h.src = ip_addr("10.0.0.1");
  h.dst = ip_addr("10.0.0.2");
  h.ttl = 64;
  h.protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  h.identification = 0x1234;
  return h;
}

TEST(Ipv4Addr, RoundTrip) {
  EXPECT_EQ(ip_to_string(ip_addr("192.168.1.200")), "192.168.1.200");
  EXPECT_EQ(ip_addr("0.0.0.0"), 0u);
  EXPECT_EQ(ip_addr("255.255.255.255"), 0xffffffffu);
}

TEST(Ipv4, SerializeParseRoundTrip) {
  Bytes payload = to_bytes("hello world");
  Bytes dgram = serialize_ipv4(basic_header(), payload);
  ASSERT_EQ(dgram.size(), 20 + payload.size());

  auto parsed = parse_ipv4(dgram);
  ASSERT_TRUE(parsed.ok());
  const Ipv4View& v = parsed.value();
  EXPECT_EQ(v.version, 4);
  EXPECT_EQ(v.ihl_words, 5);
  EXPECT_EQ(v.total_length, dgram.size());
  EXPECT_EQ(v.identification, 0x1234);
  EXPECT_EQ(v.ttl, 64);
  EXPECT_EQ(v.src, ip_addr("10.0.0.1"));
  EXPECT_EQ(v.dst, ip_addr("10.0.0.2"));
  EXPECT_EQ(to_string(v.payload), "hello world");
  EXPECT_FALSE(v.any_anomaly());
}

TEST(Ipv4, AutoChecksumVerifies) {
  Bytes dgram = serialize_ipv4(basic_header(), to_bytes("x"));
  auto v = parse_ipv4(dgram).value();
  EXPECT_FALSE(v.bad_checksum);
}

TEST(Ipv4, ChecksumOverrideDetected) {
  Ipv4Header h = basic_header();
  h.checksum_override = 0xdead;
  auto v = parse_ipv4(serialize_ipv4(h, to_bytes("x"))).value();
  EXPECT_TRUE(v.bad_checksum);
}

TEST(Ipv4, BadVersionDetected) {
  Ipv4Header h = basic_header();
  h.version = 6;
  auto v = parse_ipv4(serialize_ipv4(h, to_bytes("x"))).value();
  EXPECT_TRUE(v.bad_version);
  EXPECT_EQ(v.version, 6);
}

TEST(Ipv4, BadIhlDetected) {
  Ipv4Header h = basic_header();
  h.ihl_words = 3;  // below minimum of 5
  auto v = parse_ipv4(serialize_ipv4(h, to_bytes("x"))).value();
  EXPECT_TRUE(v.bad_ihl);
  // Best-effort header length falls back to 20.
  EXPECT_EQ(v.header_length, 20u);
}

TEST(Ipv4, TotalLengthLongAndShort) {
  Ipv4Header h = basic_header();
  Bytes payload = to_bytes("abcdef");

  h.total_length_override = static_cast<std::uint16_t>(20 + payload.size() + 10);
  auto vl = parse_ipv4(serialize_ipv4(h, payload)).value();
  EXPECT_TRUE(vl.total_length_long);
  EXPECT_FALSE(vl.total_length_short);

  h.total_length_override = 22;
  auto vs = parse_ipv4(serialize_ipv4(h, payload)).value();
  EXPECT_TRUE(vs.total_length_short);
  EXPECT_FALSE(vs.total_length_long);
}

TEST(Ipv4, OptionsRoundTrip) {
  Ipv4Header h = basic_header();
  h.options.push_back(Ipv4Option::nop());
  h.options.push_back(Ipv4Option::stream_id(0xbeef));
  Bytes dgram = serialize_ipv4(h, to_bytes("payload"));
  auto v = parse_ipv4(dgram).value();
  EXPECT_FALSE(v.bad_options);
  EXPECT_TRUE(v.has_deprecated_option);
  EXPECT_EQ(v.header_length, 28u);  // 20 + nop(1) + streamid(4) + pad to 8
  EXPECT_EQ(to_string(v.payload), "payload");
  ASSERT_GE(v.options.size(), 2u);
  EXPECT_EQ(v.options[1].kind, 136);
  EXPECT_EQ(v.options[1].data, (Bytes{0xbe, 0xef}));
}

TEST(Ipv4, InvalidOptionLengthDetected) {
  Ipv4Header h = basic_header();
  h.options.push_back(Ipv4Option::invalid_length());
  auto v = parse_ipv4(serialize_ipv4(h, to_bytes("x"))).value();
  EXPECT_TRUE(v.bad_options);
}

TEST(Ipv4, FragmentFieldsRoundTrip) {
  Ipv4Header h = basic_header();
  h.flag_more_fragments = true;
  h.fragment_offset_words = 185;
  auto v = parse_ipv4(serialize_ipv4(h, to_bytes("x"))).value();
  EXPECT_TRUE(v.flag_more_fragments);
  EXPECT_EQ(v.fragment_offset_words, 185);
  EXPECT_TRUE(v.is_fragment());
  EXPECT_EQ(v.fragment_offset_bytes(), 185u * 8);
}

TEST(Ipv4, TooShortBufferFailsCleanly) {
  Bytes tiny{0x45, 0x00};
  EXPECT_FALSE(parse_ipv4(tiny).ok());
}

TEST(Ipv4, SetTtlInPlaceKeepsChecksumValid) {
  Bytes dgram = serialize_ipv4(basic_header(), to_bytes("data"));
  for (std::uint8_t ttl = 63; ttl > 0; --ttl) {
    set_ttl_in_place(dgram, ttl);
    auto v = parse_ipv4(dgram).value();
    ASSERT_EQ(v.ttl, ttl);
    ASSERT_FALSE(v.bad_checksum) << "ttl " << int(ttl);
  }
}

TEST(Ipv4, SetTtlPreservesIntentionalBadChecksum) {
  Ipv4Header h = basic_header();
  h.checksum_override = 0x0bad;
  Bytes dgram = serialize_ipv4(h, to_bytes("data"));
  set_ttl_in_place(dgram, 5);
  auto v = parse_ipv4(dgram).value();
  EXPECT_EQ(v.ttl, 5);
  // The checksum stays wrong: routers must not accidentally repair packets
  // crafted with an intentionally bad checksum.
  EXPECT_TRUE(v.bad_checksum);
}

TEST(Ipv4, RefreshChecksumRepairs) {
  Ipv4Header h = basic_header();
  h.checksum_override = 0x0bad;
  Bytes dgram = serialize_ipv4(h, to_bytes("data"));
  refresh_ipv4_checksum(dgram);
  EXPECT_FALSE(parse_ipv4(dgram).value().bad_checksum);
}

// Property sweep: random payload sizes round-trip.
class Ipv4RoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Ipv4RoundTrip, PayloadIntact) {
  Rng rng(GetParam() * 977 + 1);
  Bytes payload = rng.bytes(GetParam());
  Bytes dgram = serialize_ipv4(basic_header(), payload);
  auto v = parse_ipv4(dgram).value();
  EXPECT_FALSE(v.any_anomaly());
  EXPECT_EQ(Bytes(v.payload.begin(), v.payload.end()), payload);
}

INSTANTIATE_TEST_SUITE_P(Sizes, Ipv4RoundTrip,
                         ::testing::Values(0, 1, 7, 8, 100, 576, 1400, 1480));

}  // namespace
}  // namespace liberate::netsim
