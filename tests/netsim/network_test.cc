#include "netsim/network.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"

namespace liberate::netsim {
namespace {

struct RecordingHost : HostIface {
  std::vector<Bytes> received;
  void receive(Bytes datagram) override {
    received.push_back(std::move(datagram));
  }
};

Bytes tcp_packet(std::uint8_t ttl, std::string_view payload,
                 const char* src = "10.0.0.1", const char* dst = "10.9.9.9") {
  Ipv4Header ip;
  ip.src = ip_addr(src);
  ip.dst = ip_addr(dst);
  ip.ttl = ttl;
  TcpHeader tcp;
  tcp.src_port = 1234;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  return make_tcp_datagram(ip, tcp, to_bytes(payload));
}

struct Testbed {
  EventLoop loop;
  Network net{loop};
  RecordingHost client, server;
  Testbed() {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

TEST(Network, DeliversEndToEndThroughRouters) {
  Testbed tb;
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  tb.net.send_from_client(tcp_packet(64, "hello"));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 1u);
  auto pkt = parse_packet(tb.server.received[0]).value();
  EXPECT_EQ(to_string(pkt.app_payload()), "hello");
  EXPECT_EQ(pkt.ip.ttl, 62);  // two decrements
  EXPECT_FALSE(pkt.ip.bad_checksum);
}

TEST(Network, ServerToClientTraversesInReverse) {
  Testbed tb;
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  auto& tap = tb.net.emplace<TapElement>("mid");
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  tb.net.send_from_server(tcp_packet(64, "response", "10.9.9.9", "10.0.0.1"));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.client.received.size(), 1u);
  EXPECT_EQ(tap.count(Direction::kServerToClient), 1u);
  EXPECT_EQ(tap.count(Direction::kClientToServer), 0u);
}

TEST(Network, TtlExpiryDropsAndSendsIcmpBack) {
  Testbed tb;
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.2"));
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.3"));

  // TTL=2: expires at the second router.
  tb.net.send_from_client(tcp_packet(2, "probe"));
  tb.loop.run_until_idle();
  EXPECT_TRUE(tb.server.received.empty());
  ASSERT_EQ(tb.client.received.size(), 1u);
  auto pkt = parse_packet(tb.client.received[0]).value();
  ASSERT_TRUE(pkt.icmp.has_value());
  EXPECT_EQ(pkt.icmp->type, IcmpType::kTimeExceeded);
  EXPECT_EQ(pkt.ip.src, ip_addr("10.1.0.2"));
}

TEST(Network, TtlJustEnoughReachesServer) {
  Testbed tb;
  for (int i = 0; i < 3; ++i) {
    tb.net.emplace<RouterHop>(ip_addr("10.1.0.1") + static_cast<std::uint32_t>(i));
  }
  // A packet with TTL = N dies at the Nth router; TTL = N+1 arrives with 1.
  tb.net.send_from_client(tcp_packet(3, "dies"));
  tb.net.send_from_client(tcp_packet(4, "arrives"));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 1u);
  auto pkt = parse_packet(tb.server.received[0]).value();
  EXPECT_EQ(to_string(pkt.app_payload()), "arrives");
  EXPECT_EQ(pkt.ip.ttl, 1);
}

TEST(Network, FilterDropsCheckedAnomalies) {
  Testbed tb;
  auto& r = tb.net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  ValidationPolicy p;
  p.check(Anomaly::kBadTcpChecksum);
  r.filter(p);

  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  tcp.checksum_override = 0x1111;
  tb.net.send_from_client(make_tcp_datagram(ip, tcp, to_bytes("bad")));
  tb.net.send_from_client(tcp_packet(64, "good"));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 1u);
  EXPECT_EQ(to_string(parse_packet(tb.server.received[0]).value().app_payload()),
            "good");
}

TEST(Network, ChecksumNormalizerRepairsTcpChecksum) {
  Testbed tb;
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.1")).fix_tcp_checksums();

  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.src_port = 5;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  tcp.checksum_override = 0x2222;
  tb.net.send_from_client(make_tcp_datagram(ip, tcp, to_bytes("fixme")));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 1u);
  auto pkt = parse_packet(tb.server.received[0]).value();
  EXPECT_FALSE(has_anomaly(anomalies_of(pkt), Anomaly::kBadTcpChecksum));
  EXPECT_EQ(to_string(pkt.app_payload()), "fixme");
}

TEST(Network, FragmentDropperOnlyDropsFragments) {
  Testbed tb;
  tb.net.emplace<RouterHop>(ip_addr("10.1.0.1")).drop_fragments();
  Bytes whole = tcp_packet(64, std::string(100, 'a'));
  for (auto& f : fragment_datagram(whole, 2)) {
    tb.net.send_from_client(std::move(f));
  }
  tb.net.send_from_client(tcp_packet(64, "unfragmented"));
  tb.loop.run_until_idle();
  ASSERT_EQ(tb.server.received.size(), 1u);
  EXPECT_EQ(to_string(parse_packet(tb.server.received[0]).value().app_payload()),
            "unfragmented");
}

TEST(Network, BandwidthElementPacesTraffic) {
  Testbed tb;
  // 10 KB/s, generous queue.
  tb.net.emplace<BandwidthElement>(10'000.0, 1 << 20);
  // Send 10 packets of ~1 KB: last should arrive ~1 second in.
  for (int i = 0; i < 10; ++i) {
    tb.net.send_from_client(tcp_packet(64, std::string(980, 'x')));
  }
  tb.loop.run_until_idle();
  EXPECT_EQ(tb.server.received.size(), 10u);
  EXPECT_GE(tb.loop.now(), milliseconds(900));
  EXPECT_LE(tb.loop.now(), milliseconds(1300));
}

TEST(Network, BandwidthQueueOverflowDrops) {
  Testbed tb;
  auto& bw = tb.net.emplace<BandwidthElement>(1'000.0, 3000);
  for (int i = 0; i < 20; ++i) {
    tb.net.send_from_client(tcp_packet(64, std::string(980, 'x')));
  }
  tb.loop.run_until_idle();
  EXPECT_LT(tb.server.received.size(), 20u);
  EXPECT_GT(bw.dropped(), 0u);
  EXPECT_EQ(tb.server.received.size() + bw.dropped(), 20u);
}

}  // namespace
}  // namespace liberate::netsim
