#include "netsim/packet.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace liberate::netsim {
namespace {

Ipv4Header ip_between(const char* src, const char* dst) {
  Ipv4Header h;
  h.src = ip_addr(src);
  h.dst = ip_addr(dst);
  return h;
}

TEST(Packet, TcpBuilderFillsProtocol) {
  TcpHeader tcp;
  tcp.src_port = 1111;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  Bytes d =
      make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp, to_bytes("hi"));
  auto pkt = parse_packet(d).value();
  EXPECT_EQ(pkt.ip.protocol, 6);
  ASSERT_TRUE(pkt.is_tcp());
  EXPECT_EQ(pkt.tcp->dst_port, 80);
  EXPECT_EQ(to_string(pkt.app_payload()), "hi");
}

TEST(Packet, WrongProtocolOverrideHonored) {
  Ipv4Header ip = ip_between("1.1.1.1", "2.2.2.2");
  ip.protocol = 143;  // bogus
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip, tcp, to_bytes("hi"));
  auto pkt = parse_packet(d).value();
  EXPECT_EQ(pkt.ip.protocol, 143);
  // Not parsed as TCP because the protocol number says otherwise.
  EXPECT_FALSE(pkt.is_tcp());
}

TEST(Packet, UdpBuilder) {
  UdpHeader udp;
  udp.src_port = 5000;
  udp.dst_port = 53;
  Bytes d =
      make_udp_datagram(ip_between("1.1.1.1", "2.2.2.2"), udp, to_bytes("q"));
  auto pkt = parse_packet(d).value();
  ASSERT_TRUE(pkt.is_udp());
  EXPECT_EQ(pkt.udp->dst_port, 53);
  EXPECT_EQ(pkt.ip.protocol, 17);
}

TEST(Packet, FiveTupleAndReverse) {
  TcpHeader tcp;
  tcp.src_port = 1111;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp, {});
  auto t = parse_packet(d).value().five_tuple();
  EXPECT_EQ(t.src_port, 1111);
  EXPECT_EQ(t.dst_port, 80);
  FiveTuple r = t.reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.src_port, 80);
  EXPECT_EQ(r.reversed(), t);
  EXPECT_NE(FiveTupleHash{}(t), 0u);
}

TEST(Packet, FragmentationSplitsAndPreservesBytes) {
  Rng rng(3);
  Bytes payload = rng.bytes(1000);
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp, payload);

  auto frags = fragment_datagram(d, 3);
  ASSERT_EQ(frags.size(), 3u);

  // Reassemble manually by offset.
  Bytes reassembled;
  std::size_t expected_total = 0;
  for (const auto& f : frags) {
    auto v = parse_ipv4(f).value();
    EXPECT_FALSE(v.bad_checksum);
    expected_total += v.payload.size();
  }
  reassembled.resize(expected_total);
  bool saw_last = false;
  for (const auto& f : frags) {
    auto v = parse_ipv4(f).value();
    std::copy(v.payload.begin(), v.payload.end(),
              reassembled.begin() +
                  static_cast<std::ptrdiff_t>(v.fragment_offset_bytes()));
    if (!v.flag_more_fragments) saw_last = true;
  }
  EXPECT_TRUE(saw_last);

  // The reassembled bytes equal the original transport segment.
  auto orig = parse_ipv4(d).value();
  EXPECT_EQ(reassembled, Bytes(orig.payload.begin(), orig.payload.end()));
}

TEST(Packet, FragmentOffsetsAreEightByteAligned) {
  Bytes payload(333, 0xab);
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp, payload);
  for (std::size_t pieces : {2u, 3u, 5u, 7u}) {
    auto frags = fragment_datagram(d, pieces);
    for (std::size_t i = 0; i + 1 < frags.size(); ++i) {
      auto v = parse_ipv4(frags[i]).value();
      EXPECT_EQ(v.payload.size() % 8, 0u) << "non-final fragment " << i;
    }
  }
}

TEST(Packet, NonFirstFragmentSkipsTransportParse) {
  Bytes payload(200, 0x77);
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp, payload);
  auto frags = fragment_datagram(d, 2);
  ASSERT_EQ(frags.size(), 2u);
  auto second = parse_packet(frags[1]).value();
  EXPECT_FALSE(second.is_tcp());
  EXPECT_TRUE(second.ip.is_fragment());
}

TEST(Packet, FragmentCountCappedByEightByteUnits) {
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  // 20-byte TCP header + 3 bytes payload = 23 bytes -> at most 3 fragments.
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp,
                              to_bytes("abc"));
  auto frags = fragment_datagram(d, 10);
  EXPECT_EQ(frags.size(), 3u);
}

TEST(Packet, FragmentWithOnePieceReturnsOriginal) {
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  Bytes d = make_tcp_datagram(ip_between("1.1.1.1", "2.2.2.2"), tcp,
                              to_bytes("abc"));
  auto frags = fragment_datagram(d, 1);
  ASSERT_EQ(frags.size(), 1u);
  EXPECT_EQ(frags[0], d);
}

}  // namespace
}  // namespace liberate::netsim
