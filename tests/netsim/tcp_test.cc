#include "netsim/tcp.h"

#include <gtest/gtest.h>

#include "netsim/ipv4.h"
#include "util/rng.h"

namespace liberate::netsim {
namespace {

constexpr std::uint32_t kSrc = 0x0a000001;
constexpr std::uint32_t kDst = 0x0a000002;

TcpHeader basic_header() {
  TcpHeader h;
  h.src_port = 40000;
  h.dst_port = 80;
  h.seq = 1000;
  h.ack = 2000;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  h.window = 65000;
  return h;
}

TEST(Tcp, SerializeParseRoundTrip) {
  Bytes seg = serialize_tcp(basic_header(), to_bytes("GET / HTTP/1.1"), kSrc, kDst);
  auto v = parse_tcp(seg).value();
  EXPECT_EQ(v.src_port, 40000);
  EXPECT_EQ(v.dst_port, 80);
  EXPECT_EQ(v.seq, 1000u);
  EXPECT_EQ(v.ack, 2000u);
  EXPECT_EQ(v.data_offset_words, 5);
  EXPECT_TRUE(v.has(TcpFlags::kAck));
  EXPECT_TRUE(v.has(TcpFlags::kPsh));
  EXPECT_FALSE(v.has(TcpFlags::kSyn));
  EXPECT_EQ(v.window, 65000);
  EXPECT_EQ(to_string(v.payload), "GET / HTTP/1.1");
  EXPECT_FALSE(v.bad_data_offset);
}

TEST(Tcp, AutoChecksumVerifies) {
  Bytes seg = serialize_tcp(basic_header(), to_bytes("data"), kSrc, kDst);
  EXPECT_TRUE(tcp_checksum_ok(seg, kSrc, kDst));
}

TEST(Tcp, ChecksumOverrideFailsVerification) {
  TcpHeader h = basic_header();
  h.checksum_override = 0x1111;
  Bytes seg = serialize_tcp(h, to_bytes("data"), kSrc, kDst);
  EXPECT_FALSE(tcp_checksum_ok(seg, kSrc, kDst));
}

TEST(Tcp, ChecksumBindsAddresses) {
  // A segment valid for one address pair is invalid for another (the
  // pseudo-header includes src/dst).
  Bytes seg = serialize_tcp(basic_header(), to_bytes("data"), kSrc, kDst);
  EXPECT_FALSE(tcp_checksum_ok(seg, kSrc, kDst + 1));
}

TEST(Tcp, OptionsRoundTrip) {
  TcpHeader h = basic_header();
  h.flags = TcpFlags::kSyn;
  h.options.push_back(TcpOption::mss(1460));
  Bytes seg = serialize_tcp(h, {}, kSrc, kDst);
  auto v = parse_tcp(seg).value();
  EXPECT_EQ(v.header_length, 24u);
  ASSERT_EQ(v.options.size(), 1u);
  EXPECT_EQ(v.options[0].kind, 2);
  EXPECT_EQ(v.options[0].data, (Bytes{0x05, 0xb4}));
  EXPECT_TRUE(tcp_checksum_ok(seg, kSrc, kDst));
}

TEST(Tcp, InvalidDataOffsetDetected) {
  TcpHeader h = basic_header();
  h.data_offset_words = 15;  // claims 60-byte header in a small segment
  Bytes seg = serialize_tcp(h, to_bytes("x"), kSrc, kDst);
  auto v = parse_tcp(seg).value();
  EXPECT_TRUE(v.bad_data_offset);
  h.data_offset_words = 4;  // below minimum
  v = parse_tcp(serialize_tcp(h, to_bytes("x"), kSrc, kDst)).value();
  EXPECT_TRUE(v.bad_data_offset);
}

TEST(Tcp, InvalidFlagCombos) {
  EXPECT_TRUE(is_invalid_flag_combo(TcpFlags::kSyn | TcpFlags::kFin));
  EXPECT_TRUE(is_invalid_flag_combo(TcpFlags::kSyn | TcpFlags::kRst));
  EXPECT_TRUE(is_invalid_flag_combo(TcpFlags::kFin | TcpFlags::kRst));
  EXPECT_TRUE(is_invalid_flag_combo(0));
  EXPECT_FALSE(is_invalid_flag_combo(TcpFlags::kSyn));
  EXPECT_FALSE(is_invalid_flag_combo(TcpFlags::kAck | TcpFlags::kPsh));
  EXPECT_FALSE(is_invalid_flag_combo(TcpFlags::kFin | TcpFlags::kAck));
}

TEST(Tcp, TooShortSegmentFails) {
  Bytes tiny{0x01, 0x02, 0x03};
  EXPECT_FALSE(parse_tcp(tiny).ok());
}

class TcpRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpRoundTrip, PayloadAndChecksumIntact) {
  Rng rng(GetParam() + 5);
  Bytes payload = rng.bytes(GetParam());
  TcpHeader h = basic_header();
  h.seq = static_cast<std::uint32_t>(rng.next());
  Bytes seg = serialize_tcp(h, payload, kSrc, kDst);
  auto v = parse_tcp(seg).value();
  EXPECT_EQ(Bytes(v.payload.begin(), v.payload.end()), payload);
  EXPECT_TRUE(tcp_checksum_ok(seg, kSrc, kDst));
  EXPECT_EQ(v.seq, h.seq);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpRoundTrip,
                         ::testing::Values(0, 1, 3, 64, 536, 1460));

}  // namespace
}  // namespace liberate::netsim
