#include "netsim/udp.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace liberate::netsim {
namespace {

constexpr std::uint32_t kSrc = 0x0a000001;
constexpr std::uint32_t kDst = 0x0a000002;

UdpHeader basic_header() {
  UdpHeader h;
  h.src_port = 50000;
  h.dst_port = 3478;
  return h;
}

TEST(Udp, SerializeParseRoundTrip) {
  Bytes dgram = serialize_udp(basic_header(), to_bytes("stun"), kSrc, kDst);
  auto v = parse_udp(dgram).value();
  EXPECT_EQ(v.src_port, 50000);
  EXPECT_EQ(v.dst_port, 3478);
  EXPECT_EQ(v.length, 12);
  EXPECT_EQ(to_string(v.payload), "stun");
  EXPECT_FALSE(v.bad_length);
  EXPECT_TRUE(udp_checksum_ok(dgram, kSrc, kDst));
}

TEST(Udp, InvalidChecksumDetected) {
  UdpHeader h = basic_header();
  h.checksum_override = 0x1234;
  Bytes dgram = serialize_udp(h, to_bytes("stun"), kSrc, kDst);
  EXPECT_FALSE(udp_checksum_ok(dgram, kSrc, kDst));
}

TEST(Udp, ZeroChecksumMeansUnchecked) {
  UdpHeader h = basic_header();
  h.checksum_override = 0;  // "no checksum" is legal for UDP/IPv4
  Bytes dgram = serialize_udp(h, to_bytes("stun"), kSrc, kDst);
  EXPECT_TRUE(udp_checksum_ok(dgram, kSrc, kDst));
}

TEST(Udp, LengthLongerThanPayload) {
  UdpHeader h = basic_header();
  h.length_override = 100;
  auto v = parse_udp(serialize_udp(h, to_bytes("abc"), kSrc, kDst)).value();
  EXPECT_TRUE(v.length_long);
  EXPECT_FALSE(v.length_short);
}

TEST(Udp, LengthShorterThanPayloadAndTruncatedView) {
  UdpHeader h = basic_header();
  h.length_override = 10;  // header(8) + 2 bytes declared
  auto dgram = serialize_udp(h, to_bytes("abcdef"), kSrc, kDst);
  auto v = parse_udp(dgram).value();
  EXPECT_TRUE(v.length_short);
  // Linux-style delivery reads only up to the declared length (note 5).
  EXPECT_EQ(to_string(v.declared_payload()), "ab");
  EXPECT_EQ(to_string(v.payload), "abcdef");
}

TEST(Udp, TooShortBufferFails) {
  Bytes tiny{0x01};
  EXPECT_FALSE(parse_udp(tiny).ok());
}

class UdpRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(UdpRoundTrip, PayloadIntact) {
  Rng rng(GetParam() + 99);
  Bytes payload = rng.bytes(GetParam());
  Bytes dgram = serialize_udp(basic_header(), payload, kSrc, kDst);
  auto v = parse_udp(dgram).value();
  EXPECT_EQ(Bytes(v.payload.begin(), v.payload.end()), payload);
  EXPECT_TRUE(udp_checksum_ok(dgram, kSrc, kDst));
}

INSTANTIATE_TEST_SUITE_P(Sizes, UdpRoundTrip,
                         ::testing::Values(0, 1, 2, 100, 508, 1200));

}  // namespace
}  // namespace liberate::netsim
