#include "netsim/validation.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"

namespace liberate::netsim {
namespace {

Ipv4Header ip_basic() {
  Ipv4Header h;
  h.src = ip_addr("10.0.0.1");
  h.dst = ip_addr("10.0.0.2");
  return h;
}

TcpHeader tcp_data() {
  TcpHeader h;
  h.src_port = 4000;
  h.dst_port = 80;
  h.flags = TcpFlags::kAck | TcpFlags::kPsh;
  return h;
}

AnomalySet anomalies(const Bytes& dgram) {
  return anomalies_of(parse_packet(dgram).value());
}

TEST(Validation, CleanPacketHasNoAnomalies) {
  Bytes d = make_tcp_datagram(ip_basic(), tcp_data(), to_bytes("x"));
  EXPECT_EQ(anomalies(d), 0u);
}

TEST(Validation, EachCraftedAnomalyIsDetected) {
  {
    Ipv4Header ip = ip_basic();
    ip.version = 5;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadIpVersion));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.ihl_words = 3;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadIpHeaderLength));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.total_length_override = 2000;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kIpTotalLengthLong));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.total_length_override = 24;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("xxxxxxxx")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kIpTotalLengthShort));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.checksum_override = 0xbad0;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadIpChecksum));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.protocol = 143;
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kUnknownIpProtocol));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.options.push_back(Ipv4Option::invalid_length());
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kInvalidIpOptions));
  }
  {
    Ipv4Header ip = ip_basic();
    ip.options.push_back(Ipv4Option::stream_id(7));
    auto a = anomalies(make_tcp_datagram(ip, tcp_data(), to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kDeprecatedIpOptions));
    EXPECT_FALSE(has_anomaly(a, Anomaly::kInvalidIpOptions));
  }
  {
    TcpHeader t = tcp_data();
    t.checksum_override = 0x1234;
    auto a = anomalies(make_tcp_datagram(ip_basic(), t, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadTcpChecksum));
  }
  {
    TcpHeader t = tcp_data();
    t.data_offset_words = 15;
    auto a = anomalies(make_tcp_datagram(ip_basic(), t, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadTcpDataOffset));
  }
  {
    TcpHeader t = tcp_data();
    t.flags = TcpFlags::kSyn | TcpFlags::kFin;
    auto a = anomalies(make_tcp_datagram(ip_basic(), t, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kInvalidTcpFlagCombo));
  }
  {
    TcpHeader t = tcp_data();
    t.flags = TcpFlags::kPsh;  // data without ACK
    auto a = anomalies(make_tcp_datagram(ip_basic(), t, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kTcpDataNoAck));
  }
  {
    UdpHeader u;
    u.src_port = 1;
    u.dst_port = 2;
    u.checksum_override = 0x5555;
    auto a = anomalies(make_udp_datagram(ip_basic(), u, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kBadUdpChecksum));
  }
  {
    UdpHeader u;
    u.length_override = 200;
    auto a = anomalies(make_udp_datagram(ip_basic(), u, to_bytes("x")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kUdpLengthLong));
  }
  {
    UdpHeader u;
    u.length_override = 9;
    auto a = anomalies(make_udp_datagram(ip_basic(), u, to_bytes("abcdef")));
    EXPECT_TRUE(has_anomaly(a, Anomaly::kUdpLengthShort));
  }
}

TEST(Validation, SynWithoutAckIsNotFlaggedAsDataNoAck) {
  TcpHeader t;
  t.flags = TcpFlags::kSyn;
  auto a = anomalies(make_tcp_datagram(ip_basic(), t, {}));
  EXPECT_FALSE(has_anomaly(a, Anomaly::kTcpDataNoAck));
}

TEST(Validation, PolicyRejectsOnlyCheckedAnomalies) {
  ValidationPolicy p;
  p.check(Anomaly::kBadIpChecksum);
  EXPECT_TRUE(p.rejects(anomaly_bit(Anomaly::kBadIpChecksum)));
  EXPECT_FALSE(p.rejects(anomaly_bit(Anomaly::kBadTcpChecksum)));
  EXPECT_TRUE(p.rejects(anomaly_bit(Anomaly::kBadIpChecksum) |
                        anomaly_bit(Anomaly::kBadTcpChecksum)));
  EXPECT_FALSE(ValidationPolicy::none().rejects(~0u));
}

TEST(Validation, StrictPolicyAllowsFragmentsAndDeprecatedOptions) {
  ValidationPolicy strict = ValidationPolicy::strict();
  EXPECT_FALSE(strict.rejects(anomaly_bit(Anomaly::kIpFragment)));
  EXPECT_FALSE(strict.rejects(anomaly_bit(Anomaly::kDeprecatedIpOptions)));
  EXPECT_TRUE(strict.rejects(anomaly_bit(Anomaly::kBadTcpChecksum)));
}

TEST(Validation, DescribeAnomalies) {
  EXPECT_EQ(describe_anomalies(0), "none");
  auto s = describe_anomalies(anomaly_bit(Anomaly::kBadIpVersion) |
                              anomaly_bit(Anomaly::kBadTcpChecksum));
  EXPECT_NE(s.find("bad-ip-version"), std::string::npos);
  EXPECT_NE(s.find("bad-tcp-checksum"), std::string::npos);
}

}  // namespace
}  // namespace liberate::netsim
