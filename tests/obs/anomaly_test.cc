// AnomalyDetector semantics: warmup, step-change detection, spike
// winsorization, hysteresis up/down, adaptation to a sustained shift, and
// determinism (pure arithmetic over the fed values).
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include <vector>

#include "obs/anomaly.h"

namespace liberate::obs {
namespace {

TEST(Anomaly, QuietSeriesNeverFlags) {
  AnomalyDetector d;
  for (int i = 0; i < 50; ++i) {
    AnomalyVerdict v = d.observe(0.1 + (i % 2) * 0.001);
    EXPECT_FALSE(v.flagged) << "point " << i;
  }
}

TEST(Anomaly, WarmupSuppressesEarlyFlags) {
  AnomalyConfig cfg;
  cfg.warmup = 5;
  AnomalyDetector d(cfg);
  // Wild swings inside the warmup window must not flag.
  const double warmup_values[] = {0.0, 10.0, -5.0, 8.0, 0.0};
  for (double x : warmup_values) {
    EXPECT_FALSE(d.observe(x).anomalous);
  }
}

TEST(Anomaly, StepChangeFlagsWithinTwoPoints) {
  AnomalyDetector d;  // warmup=3, points_to_flag=1
  for (int i = 0; i < 10; ++i) d.observe(0.10);
  // The step lands: must flag within two observations of the new level
  // (the acceptance bound the drift-corroboration latency relies on).
  AnomalyVerdict first = d.observe(0.60);
  AnomalyVerdict second = d.observe(0.60);
  EXPECT_TRUE(first.flagged || second.flagged);
  EXPECT_GT(first.zscore, 3.0);
}

TEST(Anomaly, HysteresisClearsAfterQuietPoints) {
  AnomalyConfig cfg;
  cfg.points_to_clear = 2;
  AnomalyDetector d(cfg);
  for (int i = 0; i < 10; ++i) d.observe(0.1);
  EXPECT_TRUE(d.observe(5.0).flagged);
  // Back to quiet: winsorization kept the EWMAs near 0.1, so normal points
  // score low and two of them clear the flag.
  AnomalyVerdict v1 = d.observe(0.1);
  AnomalyVerdict v2 = d.observe(0.1);
  EXPECT_FALSE(v2.flagged);
  (void)v1;
  EXPECT_FALSE(d.flagged());
}

TEST(Anomaly, WinsorizationBoundsSpikePoisoning) {
  AnomalyDetector a;
  AnomalyDetector b;
  for (int i = 0; i < 10; ++i) {
    a.observe(1.0);
    b.observe(1.0);
  }
  a.observe(1.0);
  b.observe(1e6);  // one monster spike
  // The spike was clamped before entering the EWMAs: the level cannot have
  // moved more than clamp_sigmas * scale.
  EXPECT_NEAR(a.mean(), b.mean(), 1.0);
  // And the detector still sees the *next* normal point as normal.
  EXPECT_FALSE(b.observe(1.0).anomalous);
}

TEST(Anomaly, SustainedShiftBecomesTheNewNormal) {
  AnomalyConfig cfg;
  cfg.points_to_clear = 2;
  AnomalyDetector d(cfg);
  for (int i = 0; i < 10; ++i) d.observe(0.1);
  // Shift to a new level and stay there: the EWMAs track it and the flag
  // eventually drops.
  bool cleared = false;
  for (int i = 0; i < 40; ++i) {
    if (!d.observe(0.8).flagged) {
      cleared = true;
      break;
    }
  }
  EXPECT_TRUE(cleared);
}

TEST(Anomaly, DeterministicAcrossInstances) {
  const std::vector<double> xs = {0.1, 0.1, 0.12, 0.1,  0.5, 0.52,
                                  0.5, 0.1, 0.11, 0.09, 0.1, 0.6};
  AnomalyDetector a;
  AnomalyDetector b;
  for (double x : xs) {
    AnomalyVerdict va = a.observe(x);
    AnomalyVerdict vb = b.observe(x);
    EXPECT_EQ(va.anomalous, vb.anomalous);
    EXPECT_EQ(va.flagged, vb.flagged);
    EXPECT_DOUBLE_EQ(va.zscore, vb.zscore);
  }
}

TEST(Anomaly, ResetForgetsEverything) {
  AnomalyDetector d;
  for (int i = 0; i < 10; ++i) d.observe(0.1);
  d.observe(9.0);
  EXPECT_TRUE(d.flagged());
  d.reset();
  EXPECT_FALSE(d.flagged());
  EXPECT_EQ(d.points(), 0u);
  // Post-reset warmup applies again.
  EXPECT_FALSE(d.observe(100.0).anomalous);
}

}  // namespace
}  // namespace liberate::obs
