// HdrHistogram semantics: exact small-value region, log-linear bucket
// geometry, cross-thread merge exactness, deterministic quantiles, and the
// registry/exporter integration.
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <vector>

#include "obs/hdr_histogram.h"
#include "obs/obs.h"
#include "obs/snapshot.h"
#include "util/thread_pool.h"

namespace liberate::obs {
namespace {

TEST(HdrHistogram, SmallValuesAreExact) {
  for (std::uint64_t v = 0; v < HdrHistogram::kSubBuckets; ++v) {
    const std::size_t b = HdrHistogram::bucket_index(v);
    EXPECT_EQ(b, static_cast<std::size_t>(v));
    EXPECT_EQ(HdrHistogram::bucket_lower(b), v);
    EXPECT_EQ(HdrHistogram::bucket_upper(b), v);
    EXPECT_EQ(HdrHistogram::bucket_midpoint(b), v);
  }
}

TEST(HdrHistogram, BucketGeometryIsContiguousAndMonotone) {
  // Every bucket's range starts one past the previous bucket's end, and
  // bucket_index() agrees with the range bounds.
  for (std::size_t b = 1; b < HdrHistogram::kBucketCount; ++b) {
    EXPECT_EQ(HdrHistogram::bucket_lower(b),
              HdrHistogram::bucket_upper(b - 1) + 1)
        << "bucket " << b;
    EXPECT_EQ(HdrHistogram::bucket_index(HdrHistogram::bucket_lower(b)), b);
    EXPECT_EQ(HdrHistogram::bucket_index(HdrHistogram::bucket_upper(b)), b);
  }
}

TEST(HdrHistogram, RelativeBucketWidthIsBounded) {
  // Log-linear promise: width / lower <= 1 / (kSubBuckets / 2). Checked in
  // integer arithmetic — doubles lose the exact bounds past 2^53.
  for (std::size_t b = HdrHistogram::kSubBuckets;
       b < HdrHistogram::kBucketCount; ++b) {
    const std::uint64_t lo = HdrHistogram::bucket_lower(b);
    const std::uint64_t width = HdrHistogram::bucket_upper(b) - lo + 1;
    // width * 16 peaks at 2^63 for the top octave: no overflow.
    EXPECT_LE(width * (HdrHistogram::kSubBuckets / 2), lo) << "bucket " << b;
  }
}

TEST(HdrHistogram, MaxValueLandsInLastBucket) {
  const std::uint64_t top = ~0ull;
  EXPECT_EQ(HdrHistogram::bucket_index(top), HdrHistogram::kBucketCount - 1);
  HdrHistogram h;
  h.record(top);
  HdrSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, top);
}

TEST(HdrHistogram, RecordSnapshotAndReset) {
  HdrHistogram h;
  h.record(3);
  h.record(3);
  h.record(1000);
  HdrSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1006u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.counts[3], 2u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.snapshot().max, 0u);
}

TEST(HdrHistogram, MergeAcrossPoolShardsIsExact) {
  // The same multiset recorded from many pool workers must produce the same
  // merged counts as a serial recording — counts are exact, not sampled.
  HdrHistogram parallel;
  HdrHistogram serial;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 5000;
  {
    ThreadPool pool(kThreads);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kThreads; ++t) {
      fs.push_back(pool.submit([&parallel, t]() {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          parallel.record(i * 17 + static_cast<std::uint64_t>(t));
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  for (int t = 0; t < kThreads; ++t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      serial.record(i * 17 + static_cast<std::uint64_t>(t));
    }
  }
  HdrSnapshot a = parallel.snapshot();
  HdrSnapshot b = serial.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.counts, b.counts);
}

TEST(HdrHistogram, SnapshotMergeAddsCounts) {
  HdrHistogram x;
  HdrHistogram y;
  x.record(5);
  x.record(70);
  y.record(5);
  y.record(900000);
  HdrSnapshot merged = x.snapshot();
  merged.merge(y.snapshot());
  EXPECT_EQ(merged.count, 4u);
  EXPECT_EQ(merged.counts[5], 2u);
  EXPECT_EQ(merged.max, 900000u);
  EXPECT_EQ(merged.sum, 5u + 70u + 5u + 900000u);
}

TEST(HdrHistogram, QuantilesAreDeterministicBucketMidpoints) {
  HdrHistogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  HdrSnapshot snap = h.snapshot();
  // Rank-50 of 1..100 is 50; values <= 31 are exact, 50 lands in a
  // log-linear bucket whose midpoint is deterministic.
  const std::uint64_t p50 = snap.value_at_quantile(0.5);
  EXPECT_EQ(p50, HdrHistogram::bucket_midpoint(HdrHistogram::bucket_index(50)));
  // p0 clamps to rank 1, p1 to rank count.
  EXPECT_EQ(snap.value_at_quantile(0.0), 1u);
  EXPECT_EQ(snap.value_at_quantile(1.0),
            HdrHistogram::bucket_midpoint(HdrHistogram::bucket_index(100)));
  // Midpoint error is bounded by half the bucket width (~3.125%).
  EXPECT_NEAR(static_cast<double>(p50), 50.0, 50.0 * 0.0325);
  // Same snapshot, same answer — quantiles are pure functions of counts.
  EXPECT_EQ(snap.value_at_quantile(0.99), snap.value_at_quantile(0.99));
  EXPECT_EQ(snap.value_at_quantile(0.5), HdrSnapshot(snap).value_at_quantile(0.5));
}

TEST(HdrHistogram, EmptySnapshotQuantileIsZero) {
  HdrHistogram h;
  EXPECT_EQ(h.snapshot().value_at_quantile(0.99), 0u);
}

TEST(HdrHistogram, RegistryMacroAndExporters) {
  MetricsRegistry::instance().hdr("test.hdr.export").reset();
  for (int i = 0; i < 10; ++i) {
    LIBERATE_HDR_RECORD("test.hdr.export", 100 + i);
  }
  MetricsSnapshot m = MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(m.hdr_histograms.count("test.hdr.export"));
  EXPECT_EQ(m.hdr_histograms["test.hdr.export"].count, 10u);

  const std::string prom = to_prometheus_text(m);
  EXPECT_NE(prom.find("# TYPE test_hdr_export summary"), std::string::npos);
  EXPECT_NE(prom.find("test_hdr_export{quantile=\"0.99\"}"), std::string::npos);
  EXPECT_NE(prom.find("test_hdr_export_count 10"), std::string::npos);

  Snapshot snap = capture();
  const std::string json = to_json(snap);
  EXPECT_NE(json.find("\"hdr_histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.hdr.export\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  MetricsRegistry::instance().hdr("test.hdr.export").reset();
}

}  // namespace
}  // namespace liberate::obs
