// Snapshot correctness under concurrency: pool workers hammer counters and
// histograms while an off-pool reader takes snapshots the whole time. After
// the writers join, totals must be exactly conserved (relaxed atomics lose
// nothing), and every mid-flight snapshot must be internally consistent
// (histogram count == sum of its buckets). Run under
// -DLIBERATE_SANITIZE=thread for the TSan leg of the matrix.
//
// Pinned to full level so the contention tests run even in a level-0 build.
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <vector>

#include "obs/obs.h"
#include "obs/snapshot.h"
#include "util/thread_pool.h"

namespace liberate::obs {
namespace {

TEST(ObsConcurrency, CounterTotalsConservedUnderContention) {
  Counter& c =
      MetricsRegistry::instance().counter("test.concurrency.counter");
  c.reset();
  constexpr int kWorkers = 8;
  constexpr int kTasks = 64;
  constexpr int kAddsPerTask = 5000;

  std::atomic<bool> done{false};
  // Reader thread: snapshot continuously while writers run. Totals are
  // monotone, so each observation must be >= the previous one.
  auto reader = std::async(std::launch::async, [&]() {
    std::uint64_t last = 0;
    std::uint64_t snapshots = 0;
    while (!done.load(std::memory_order_acquire)) {
      std::uint64_t now = c.total();
      EXPECT_GE(now, last);
      last = now;
      snapshots += 1;
    }
    return snapshots;
  });

  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kTasks; ++t) {
      fs.push_back(pool.submit([]() {
        for (int i = 0; i < kAddsPerTask; ++i) {
          LIBERATE_COUNTER_ADD("test.concurrency.counter", 1);
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  done.store(true, std::memory_order_release);
  EXPECT_GT(reader.get(), 0u);
  EXPECT_EQ(c.total(),
            static_cast<std::uint64_t>(kTasks) * kAddsPerTask);
}

TEST(ObsConcurrency, HistogramCountAndBucketsConsistent) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.concurrency.hist", {1.0, 2.0, 4.0});
  h.reset();
  constexpr int kWorkers = 8;
  constexpr int kTasks = 32;
  constexpr int kObsPerTask = 2000;

  std::atomic<bool> done{false};
  auto reader = std::async(std::launch::async, [&]() {
    while (!done.load(std::memory_order_acquire)) {
      auto counts = h.bucket_counts();
      std::uint64_t bucket_sum = 0;
      for (std::uint64_t b : counts) bucket_sum += b;
      // count() recomputes from the same cells; both are sums of relaxed
      // loads, so they can only disagree transiently by in-flight adds —
      // never exceed the true total.
      EXPECT_LE(bucket_sum,
                static_cast<std::uint64_t>(kTasks) * kObsPerTask);
    }
  });

  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kTasks; ++t) {
      fs.push_back(pool.submit([t]() {
        for (int i = 0; i < kObsPerTask; ++i) {
          // Deterministic spread across buckets, including overflow.
          double v = static_cast<double>((t + i) % 6);
          LIBERATE_HISTOGRAM_OBSERVE("test.concurrency.hist",
                                     ({1.0, 2.0, 4.0}), v);
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  done.store(true, std::memory_order_release);
  reader.get();

  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kTasks) * kObsPerTask;
  EXPECT_EQ(h.count(), kTotal);
  auto counts = h.bucket_counts();
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t b : counts) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kTotal);
  // The sum is kept in integer microunits, so it is exactly the sum of the
  // observed values: each task observes (t+i)%6 for i in [0,kObsPerTask).
  double expected_sum = 0;
  for (int t = 0; t < kTasks; ++t) {
    for (int i = 0; i < kObsPerTask; ++i) expected_sum += (t + i) % 6;
  }
  EXPECT_DOUBLE_EQ(h.sum(), expected_sum);
}

TEST(ObsConcurrency, GaugeHighWaterNeverBelowAnySetValue) {
  Gauge& g = MetricsRegistry::instance().gauge("test.concurrency.gauge");
  g.reset();
  constexpr int kWorkers = 4;
  constexpr int kMax = 10000;
  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kWorkers * 4; ++t) {
      fs.push_back(pool.submit([t]() {
        for (int i = 0; i <= kMax; ++i) {
          LIBERATE_GAUGE_SET("test.concurrency.gauge", (i + t) % (kMax + 1));
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(g.high_water(), kMax);
  EXPECT_GE(g.high_water(), g.value());
}

TEST(ObsConcurrency, GaugeAddConservesDeltasUnderContention) {
  // Regression: add() used to be set(load()+delta) — two racing adds could
  // lose an update. It is now a single fetch_add, so concurrent deltas must
  // sum exactly.
  Gauge& g = MetricsRegistry::instance().gauge("test.concurrency.gauge_add");
  g.reset();
  constexpr int kWorkers = 8;
  constexpr int kTasks = 32;
  constexpr int kAddsPerTask = 5000;
  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kTasks; ++t) {
      fs.push_back(pool.submit([t]() {
        // Half the tasks add, half subtract a smaller amount: the exact
        // final value only survives if no delta is ever lost.
        const int delta = (t % 2 == 0) ? 3 : -1;
        for (int i = 0; i < kAddsPerTask; ++i) {
          LIBERATE_GAUGE_ADD("test.concurrency.gauge_add", delta);
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  constexpr std::int64_t kExpected =
      static_cast<std::int64_t>(kTasks / 2) * kAddsPerTask * 3 -
      static_cast<std::int64_t>(kTasks / 2) * kAddsPerTask;
  EXPECT_EQ(g.value(), kExpected);
  EXPECT_GE(g.high_water(), g.value());
}

TEST(ObsConcurrency, HdrHistogramCountsConservedUnderContention) {
  HdrHistogram& h = MetricsRegistry::instance().hdr("test.concurrency.hdr");
  h.reset();
  constexpr int kWorkers = 8;
  constexpr int kTasks = 32;
  constexpr int kRecordsPerTask = 4000;
  std::atomic<bool> done{false};
  auto reader = std::async(std::launch::async, [&]() {
    while (!done.load(std::memory_order_acquire)) {
      HdrSnapshot snap = h.snapshot();
      EXPECT_LE(snap.count,
                static_cast<std::uint64_t>(kTasks) * kRecordsPerTask);
    }
  });
  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kTasks; ++t) {
      fs.push_back(pool.submit([&h, t]() {
        for (int i = 0; i < kRecordsPerTask; ++i) {
          h.record(static_cast<std::uint64_t>(t) * 1000 +
                   static_cast<std::uint64_t>(i % 97));
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  done.store(true, std::memory_order_release);
  reader.get();
  HdrSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kTasks) * kRecordsPerTask);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.count);
  h.reset();
}

TEST(ObsConcurrency, TimeSeriesStoreSampleUnderContention) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.reset();
  constexpr int kWorkers = 8;
  constexpr int kTasks = 16;
  constexpr int kSamplesPerTask = 2000;
  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kTasks; ++t) {
      fs.push_back(pool.submit([&ts, t]() {
        for (int i = 0; i < kSamplesPerTask; ++i) {
          ts.sample("test.concurrency.ts", t % 4,
                    static_cast<std::uint64_t>(i),
                    static_cast<double>(i));
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  const TimeSeriesSnapshot snap = ts.snapshot("test.concurrency.ts");
  std::uint64_t total = 0;
  std::uint64_t live = 0;
  std::uint64_t dropped = 0;
  for (const SeriesSnapshot& s : snap.series) {
    total += s.total;
    live += s.points.size();
    dropped += s.dropped;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kTasks) * kSamplesPerTask);
  EXPECT_EQ(live + dropped, total);  // every sample accounted for
  ts.reset();
}

TEST(ObsConcurrency, SnapshotDuringEventAndSpanTraffic) {
  reset_all();
  constexpr int kWorkers = 4;
  constexpr int kEventsPerTask = 500;
  std::atomic<bool> done{false};
  auto reader = std::async(std::launch::async, [&]() {
    while (!done.load(std::memory_order_acquire)) {
      Snapshot snap = capture();
      // Ring + dropped always accounts for every recorded span.
      EXPECT_LE(snap.spans.size(), 4096u);
    }
  });
  {
    ThreadPool pool(kWorkers);
    std::vector<std::future<void>> fs;
    for (int t = 0; t < kWorkers * 2; ++t) {
      fs.push_back(pool.submit([]() {
        for (int i = 0; i < kEventsPerTask; ++i) {
          LIBERATE_OBS_SPAN("test.concurrency.span",
                            []() { return std::uint64_t{7}; });
          LIBERATE_OBS_EVENT(static_cast<std::uint64_t>(i), "test",
                             "concurrent", fv("i", i));
        }
      }));
    }
    for (auto& f : fs) f.get();
  }
  done.store(true, std::memory_order_release);
  reader.get();
  Snapshot snap = capture();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kWorkers) * 2 * kEventsPerTask;
  EXPECT_EQ(snap.events.totals.at("test.concurrent"), kTotal);
  EXPECT_EQ(snap.spans.size() + snap.spans_dropped, kTotal);
  reset_all();
}

}  // namespace
}  // namespace liberate::obs
