// Exporters: Prometheus text exposition, the JSON snapshot document, and the
// analysis-report JSON with an embedded telemetry block (core/report_io).
//
// Pinned to full level so the seeded snapshot is populated even in a
// level-0 build.
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include "core/liberate.h"
#include "core/report_io.h"
#include "obs/obs.h"
#include "obs/snapshot.h"

namespace liberate::obs {
namespace {

Snapshot seeded_snapshot() {
  reset_all();
  LIBERATE_COUNTER_ADD("test.export.requests", 3);
  LIBERATE_GAUGE_SET("test.export.depth", 5);
  LIBERATE_GAUGE_SET("test.export.depth", 2);
  LIBERATE_HISTOGRAM_OBSERVE("test.export.latency", ({0.5, 1.0}), 0.25);
  LIBERATE_HISTOGRAM_OBSERVE("test.export.latency", ({0.5, 1.0}), 2.5);
  LIBERATE_OBS_EVENT(42, "test", "export", fv("rule", "video"));
  {
    ScopedSpan s("test.export.span", []() { return std::uint64_t{9}; });
  }
  return capture();
}

TEST(ObsExport, PrometheusTextFormat) {
  Snapshot snap = seeded_snapshot();
  std::string text = to_prometheus_text(snap.metrics);
  // Dots become underscores; TYPE lines announce each family.
  EXPECT_NE(text.find("# TYPE test_export_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_requests 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_export_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("test_export_depth 2"), std::string::npos);
  EXPECT_NE(text.find("test_export_depth_high_water 5"), std::string::npos);
  // Histogram buckets are cumulative with an +Inf catch-all.
  EXPECT_NE(text.find("test_export_latency_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_latency_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_export_latency_count 2"), std::string::npos);
}

TEST(ObsExport, JsonSnapshotDocument) {
  Snapshot snap = seeded_snapshot();
  std::string doc = to_json(snap);
  EXPECT_EQ(doc.front(), '{');
  EXPECT_EQ(doc.back(), '}');
  EXPECT_NE(doc.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.requests\":3"), std::string::npos);
  EXPECT_NE(doc.find("\"high_water\":5"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.latency\":{"), std::string::npos);
  EXPECT_NE(doc.find("\"spans\":["), std::string::npos);
  EXPECT_NE(doc.find("\"test.export.span\""), std::string::npos);
  EXPECT_NE(doc.find("\"totals\":{\"test.export\":1}"), std::string::npos);
  EXPECT_NE(doc.find("\"rule\":\"video\""), std::string::npos);
}

TEST(ObsExport, JsonSnapshotCapsRingDumpsNotTotals) {
  reset_all();
  for (int i = 0; i < 50; ++i) {
    LIBERATE_OBS_EVENT(static_cast<std::uint64_t>(i), "test", "burst");
  }
  Snapshot snap = capture();
  std::string doc = to_json(snap, /*max_spans=*/256, /*max_events=*/5);
  // Totals stay exact while the dump keeps only the newest 5.
  EXPECT_NE(doc.find("\"test.burst\":50"), std::string::npos);
  EXPECT_EQ(doc.find("\"ts_us\":44"), std::string::npos);
  EXPECT_NE(doc.find("\"ts_us\":49"), std::string::npos);
  reset_all();
}

TEST(ObsExport, AnalysisReportCarriesTelemetryBlock) {
  core::SessionReport report;
  report.selected_technique = "split/tcp-segmentation";
  report.total_rounds = 7;

  std::string plain = core::analysis_report_json(report);
  EXPECT_NE(plain.find("\"analysis\":{"), std::string::npos);
  EXPECT_NE(plain.find("\"selected_technique\":\"split/tcp-segmentation\""),
            std::string::npos);
  EXPECT_EQ(plain.find("\"telemetry\""), std::string::npos);

  Snapshot snap = seeded_snapshot();
  std::string with = core::analysis_report_json(report, snap);
  EXPECT_NE(with.find("\"analysis\":{"), std::string::npos);
  EXPECT_NE(with.find("\"telemetry\":{"), std::string::npos);
  EXPECT_NE(with.find("\"test.export.requests\":3"), std::string::npos);
  // The analysis block itself is byte-identical with or without telemetry —
  // the determinism invariant the skype_evasion example checks end-to-end.
  EXPECT_NE(with.find(plain.substr(1, plain.size() - 2)), std::string::npos);
}

}  // namespace
}  // namespace liberate::obs
