// Registry semantics: counters/gauges/histograms, per-shard merge, the
// instrumentation macros, span nesting, and event-log accounting. Each test
// uses metric names unique to this file so a shared-process run cannot
// cross-contaminate.
//
// This TU pins the level to full so the macro tests hold even in a
// LIBERATE_OBS_LEVEL=0 build — and linking it next to obs_noop_test.cc
// (pinned to 0) in one binary exercises the mixed-level ODR guarantee.
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include <limits>

#include "obs/obs.h"
#include "obs/snapshot.h"
#include "util/thread_pool.h"

namespace liberate::obs {
namespace {

TEST(ObsMetrics, CounterAddsAndResets) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.counter_a");
  c.reset();
  c.add(3);
  c.add(4);
  EXPECT_EQ(c.total(), 7u);
  c.reset();
  EXPECT_EQ(c.total(), 0u);
}

TEST(ObsMetrics, CounterMergesPoolAndOffPoolShards) {
  Counter& c = MetricsRegistry::instance().counter("test.metrics.counter_b");
  c.reset();
  c.add(10);  // off-pool thread -> shard 0
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> fs;
    for (int i = 0; i < 100; ++i) {
      fs.push_back(pool.submit([&c]() { c.add(1); }));
    }
    for (auto& f : fs) f.get();
  }
  EXPECT_EQ(c.total(), 110u);
}

TEST(ObsMetrics, GaugeTracksValueAndHighWater) {
  Gauge& g = MetricsRegistry::instance().gauge("test.metrics.gauge_a");
  g.reset();
  g.set(5);
  g.set(12);
  g.set(3);
  EXPECT_EQ(g.value(), 3);
  EXPECT_EQ(g.high_water(), 12);
  g.add(-10);
  EXPECT_EQ(g.value(), -7);
  EXPECT_EQ(g.high_water(), 12);
}

TEST(ObsMetrics, HistogramBucketsAndExactSum) {
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_a", {1.0, 10.0, 100.0});
  h.reset();
  h.observe(0.5);    // bucket 0 (<= 1)
  h.observe(1.0);    // bucket 0 (boundary is inclusive)
  h.observe(5.0);    // bucket 1
  h.observe(50.0);   // bucket 2
  h.observe(500.0);  // overflow bucket
  auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 556.5);
}

TEST(ObsMetrics, HistogramClampsExtremeObservations) {
  // Regression: observe() casts v * 1e6 to int64 micro-units; a double past
  // the int64 range made that cast UB. Extreme values now clamp to
  // ±kSumClampMicrounits and NaN contributes 0 — while the bucket count is
  // always recorded, so count() stays exact.
  Histogram& h = MetricsRegistry::instance().histogram(
      "test.metrics.hist_clamp", {1.0});
  h.reset();
  h.observe(1e300);                                        // clamps to +9e12
  h.observe(-1e300);                                       // clamps to -9e12
  h.observe(std::numeric_limits<double>::quiet_NaN());     // counted, sum +0
  h.observe(std::numeric_limits<double>::infinity());      // clamps to +9e12
  h.observe(2.5);                                          // normal value
  EXPECT_EQ(h.count(), 5u);
  // +clamp, -clamp, and +clamp again cancel down to one clamp plus 2.5.
  EXPECT_DOUBLE_EQ(h.sum(), Histogram::kSumClampMicrounits / 1e6 + 2.5);
  auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[1], 3u);  // 1e300, inf, 2.5 land past the 1.0 bound
}

TEST(ObsMetrics, HistogramBoundsFixedByFirstRegistration) {
  Histogram& first = MetricsRegistry::instance().histogram(
      "test.metrics.hist_b", {1.0, 2.0});
  Histogram& again = MetricsRegistry::instance().histogram(
      "test.metrics.hist_b", {99.0});
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetrics, MacrosRegisterAndSurviveReset) {
  MetricsRegistry::instance().reset();
  LIBERATE_COUNTER_ADD("test.metrics.macro_counter", 2);
  LIBERATE_GAUGE_SET("test.metrics.macro_gauge", 9);
  LIBERATE_HISTOGRAM_OBSERVE("test.metrics.macro_hist", ({0.1, 1.0}), 0.25);
  auto snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.metrics.macro_counter"), 2u);
  EXPECT_EQ(snap.gauges.at("test.metrics.macro_gauge").value, 9);
  EXPECT_EQ(snap.histograms.at("test.metrics.macro_hist").count, 1u);
  // reset() zeroes in place; the cached static reference inside the macro
  // expansion keeps pointing at live storage.
  MetricsRegistry::instance().reset();
  LIBERATE_COUNTER_ADD("test.metrics.macro_counter", 5);
  snap = MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("test.metrics.macro_counter"), 5u);
}

TEST(ObsSpan, NestingTracksParentAndSimClock) {
  SpanLog::instance().reset();
  std::uint64_t fake_now = 1000;
  auto clock = [&fake_now]() { return fake_now; };
  {
    ScopedSpan outer("test.outer", clock);
    fake_now = 2000;
    {
      ScopedSpan inner("test.inner", clock);
      fake_now = 3000;
    }
    fake_now = 4000;
  }
  auto spans = SpanLog::instance().snapshot();
  ASSERT_EQ(spans.size(), 2u);
  // Spans land at close time: inner first.
  EXPECT_EQ(spans[0].name, "test.inner");
  EXPECT_EQ(spans[1].name, "test.outer");
  EXPECT_EQ(spans[0].parent_id, spans[1].id);
  EXPECT_EQ(spans[1].parent_id, 0u);
  EXPECT_EQ(spans[0].start_us, 2000u);
  EXPECT_EQ(spans[0].end_us, 3000u);
  EXPECT_EQ(spans[1].start_us, 1000u);
  EXPECT_EQ(spans[1].end_us, 4000u);
  EXPECT_EQ(spans[1].worker, -1);  // not on a pool thread
}

TEST(ObsSpan, RingDropsOldestBeyondCapacity) {
  SpanLog::instance().reset();
  SpanLog::instance().set_capacity(4);
  auto clock = []() { return std::uint64_t{1}; };
  for (int i = 0; i < 10; ++i) {
    ScopedSpan s("test.ring." + std::to_string(i), clock);
  }
  auto spans = SpanLog::instance().snapshot();
  EXPECT_EQ(spans.size(), 4u);
  EXPECT_EQ(SpanLog::instance().dropped(), 6u);
  EXPECT_EQ(spans.back().name, "test.ring.9");
  SpanLog::instance().set_capacity(4096);  // restore default
  SpanLog::instance().reset();
}

TEST(ObsEvent, TotalsAreExactEvenWhenRingDrops) {
  EventLog::instance().reset();
  EventLog::instance().set_capacity(3);
  for (int i = 0; i < 8; ++i) {
    LIBERATE_OBS_EVENT(static_cast<std::uint64_t>(i), "test", "tick",
                       fv("i", i));
  }
  auto snap = EventLog::instance().snapshot();
  EXPECT_EQ(snap.totals.at("test.tick"), 8u);
  EXPECT_EQ(snap.recent.size(), 3u);
  EXPECT_EQ(snap.dropped, 5u);
  EXPECT_EQ(snap.recent.back().ts_us, 7u);
  ASSERT_EQ(snap.recent.back().fields.size(), 1u);
  EXPECT_EQ(snap.recent.back().fields[0].key, "i");
  EXPECT_EQ(snap.recent.back().fields[0].value, "7");
  EventLog::instance().set_capacity(4096);  // restore default
  EventLog::instance().reset();
}

TEST(ObsSnapshot, CaptureAndResetAllCoverEverySink) {
  reset_all();
  LIBERATE_COUNTER_ADD("test.snapshot.counter", 1);
  LIBERATE_OBS_EVENT(0, "test", "snap");
  {
    ScopedSpan s("test.snapshot.span", []() { return std::uint64_t{0}; });
  }
  Snapshot snap = capture();
  EXPECT_EQ(snap.metrics.counters.at("test.snapshot.counter"), 1u);
  EXPECT_EQ(snap.events.totals.at("test.snap"), 1u);
  EXPECT_FALSE(snap.spans.empty());
  reset_all();
  snap = capture();
  EXPECT_EQ(snap.metrics.counters.at("test.snapshot.counter"), 0u);
  EXPECT_TRUE(snap.events.totals.empty());
  EXPECT_TRUE(snap.spans.empty());
}

}  // namespace
}  // namespace liberate::obs
