// Satellite guard: at LIBERATE_OBS_LEVEL=0 every obs macro must be a true
// no-op — arguments unevaluated, registry untouched. This TU forces level 0
// regardless of the build-wide setting (the headers document this as a
// supported per-TU override; inline definitions are level-independent, so
// mixing this TU with level-2 TUs in one binary is exactly the ODR situation
// the design promises to survive).
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 0

#include "obs/obs.h"

#include <gtest/gtest.h>

// The no-op macros must compile without obs/metrics.h et al. being included
// (obs.h only pulls them in at level >= 1); snapshot.h is included AFTER the
// macros so we can inspect the registry the macros were supposed to skip.
#include "obs/snapshot.h"

static_assert(LIBERATE_OBS_LEVEL == 0,
              "this TU pins the level to 0 to test the no-op expansion");

namespace liberate::obs {
namespace {

TEST(ObsNoop, MacrosDoNotEvaluateArguments) {
  int evals = 0;
  LIBERATE_COUNTER_ADD("test.noop.counter", evals++);
  LIBERATE_GAUGE_SET("test.noop.gauge", evals++);
  LIBERATE_GAUGE_ADD("test.noop.gauge", evals++);
  LIBERATE_HISTOGRAM_OBSERVE("test.noop.hist", ({1.0, 2.0}), evals++);
  LIBERATE_OBS_EVENT(0, "test", "noop", fv("n", evals++));
  LIBERATE_OBS_SPAN("test.noop.span", [&evals]() {
    evals++;
    return std::uint64_t{0};
  });
  EXPECT_EQ(evals, 0);
}

TEST(ObsNoop, RegistryNeverSeesLevelZeroNames) {
  LIBERATE_COUNTER_ADD("test.noop.counter", 1);
  LIBERATE_GAUGE_SET("test.noop.gauge", 1);
  LIBERATE_HISTOGRAM_OBSERVE("test.noop.hist", ({1.0}), 1);
  LIBERATE_OBS_EVENT(0, "test", "noop_kind");
  Snapshot snap = capture();
  EXPECT_EQ(snap.metrics.counters.count("test.noop.counter"), 0u);
  EXPECT_EQ(snap.metrics.gauges.count("test.noop.gauge"), 0u);
  EXPECT_EQ(snap.metrics.histograms.count("test.noop.hist"), 0u);
  EXPECT_EQ(snap.events.totals.count("test.noop_kind"), 0u);
}

TEST(ObsNoop, MacrosAreSingleStatements) {
  // The no-ops must expand to one statement so they nest under bare
  // if/else without braces — a compile-shape test.
  bool flag = true;
  if (flag)
    LIBERATE_COUNTER_ADD("test.noop.if", 1);
  else
    LIBERATE_GAUGE_SET("test.noop.else", 1);
  if (!flag)
    LIBERATE_OBS_EVENT(0, "test", "if_shape");
  else
    LIBERATE_OBS_SPAN("test.noop.span_shape", []() { return 0ull; });
  SUCCEED();
}

TEST(ObsNoop, ProvenanceMacrosDoNotEvaluateArguments) {
  int evals = 0;
  auto touch = [&evals]() {
    ++evals;
    return Bytes{0x45, 0x00};
  };
  static_cast<void>(touch);  // only the macros below reference it
  LIBERATE_PROV_SCOPE(static_cast<std::uint64_t>(evals++));
  LIBERATE_PROV_PACKET(touch(), "noop");
  LIBERATE_PROV_EDGE(0, touch(), touch(), "split", "noop");
  LIBERATE_PROV_NOTE(0, prov::FlowKey{}, "noop", fv("n", evals++));
  LIBERATE_PROV_NOTE_PKT(0, touch(), "noop", fv("n", evals++));
  EXPECT_EQ(evals, 0);
}

TEST(ObsNoop, ProvenanceRecorderNeverSeesLevelZeroTraffic) {
  Bytes datagram{0x45, 0x00, 0x00, 0x14};
  LIBERATE_PROV_PACKET(datagram, "noop");
  LIBERATE_PROV_NOTE_PKT(0, datagram, "noop-kind");
  Snapshot snap = capture();
  EXPECT_EQ(snap.provenance.nodes.size(), 0u);
  EXPECT_EQ(snap.provenance.ledgers.size(), 0u);
  EXPECT_EQ(snap.provenance.total_records, 0u);
}

TEST(ObsNoop, CostMacrosDoNotEvaluateArguments) {
  int evals = 0;
  LIBERATE_COST_TICK(kRounds, evals++);
  LIBERATE_COST_TICK(kProbes, evals++);
  EXPECT_EQ(evals, 0);
}

TEST(ObsNoop, CostMacrosAreSingleStatements) {
  bool flag = true;
  if (flag)
    LIBERATE_COST_TICK(kRounds, 1);
  else
    LIBERATE_COST_SCOPE(kDetection);
  SUCCEED();
}

TEST(ObsNoop, PropagateIsIdentityAtLevelZero) {
  // At level 0 LIBERATE_OBS_PROPAGATE must hand back the callable itself —
  // no wrapper, no context capture. Variadic: lambdas containing commas
  // must survive the expansion.
  auto wrapped = LIBERATE_OBS_PROPAGATE([]() { return 42; });
  EXPECT_EQ(wrapped(), 42);
  auto with_commas = LIBERATE_OBS_PROPAGATE([a = 20, b = 22]() {
    return a + b;
  });
  EXPECT_EQ(with_commas(), 42);
}

TEST(ObsNoop, ProvenanceMacrosAreSingleStatements) {
  bool flag = true;
  Bytes d{0x45};
  if (flag)
    LIBERATE_PROV_PACKET(d, "if");
  else
    LIBERATE_PROV_EDGE(0, d, d, "split", "else");
  if (!flag)
    LIBERATE_PROV_NOTE(0, prov::FlowKey{}, "if_shape");
  else
    LIBERATE_PROV_NOTE_PKT(0, d, "else_shape");
  SUCCEED();
}

}  // namespace
}  // namespace liberate::obs
