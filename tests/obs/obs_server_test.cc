// ObsServer: render() dispatch, the loopback HTTP surface, its request
// bounds, and scrape-under-load safety (the ObsServerConcurrency suite runs
// under TSan in CI's stress job).
#include "obs/serve/obs_server.h"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/prof/cost_ledger.h"
#include "obs/span.h"

namespace liberate::obs::serve {
namespace {

/// Sends a raw request to 127.0.0.1:port and returns the full response
/// (empty on connect failure).
std::string raw_request(std::uint16_t port, const std::string& request) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  std::size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string http_get(std::uint16_t port, const std::string& path) {
  return raw_request(port, "GET " + path + " HTTP/1.0\r\n\r\n");
}

TEST(ObsServerRender, DispatchesEveryEndpointWithoutSockets) {
  std::string ct, body;
  EXPECT_EQ(ObsServer::render("/healthz", &ct, &body), 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_EQ(ct, "text/plain");

  EXPECT_EQ(ObsServer::render("/metrics", &ct, &body), 200);
  EXPECT_EQ(ct, "text/plain; version=0.0.4");
  EXPECT_NE(body.find("liberate_cost_total"), std::string::npos);
  EXPECT_NE(body.find("liberate_profile_nodes"), std::string::npos);

  EXPECT_EQ(ObsServer::render("/profile", &ct, &body), 200);
  EXPECT_EQ(ObsServer::render("/profile.json", &ct, &body), 200);
  EXPECT_EQ(ct, "application/json");
  EXPECT_EQ(body.front(), '{');

  EXPECT_EQ(ObsServer::render("/timeseries.json", &ct, &body), 200);
  EXPECT_EQ(ct, "application/json");

  EXPECT_EQ(ObsServer::render("/no-such-path", &ct, &body), 404);
  // Query strings are stripped before dispatch.
  EXPECT_EQ(ObsServer::render("/healthz?probe=1", &ct, &body), 200);
}

TEST(ObsServerHttp, ServesMetricsOverLoopback) {
  ObsServer server;  // port 0 = ephemeral
  ASSERT_TRUE(server.start()) << server.last_error();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  {
    CostLedger::PhaseScope scope(CostPhase::kFleet);
    CostLedger::instance().tick(CostKind::kProbes, 1);
  }
  const std::string response = http_get(server.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_NE(response.find("liberate_cost_total"), std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  EXPECT_GE(server.requests_served(), 3u);
  server.stop();
  EXPECT_FALSE(server.running());
  server.stop();  // idempotent
}

TEST(ObsServerHttp, RejectsNonGetAndOversizedRequests) {
  ObsServerOptions opts;
  opts.max_request_bytes = 128;
  ObsServer server(opts);
  ASSERT_TRUE(server.start()) << server.last_error();

  const std::string post =
      raw_request(server.port(), "POST /metrics HTTP/1.0\r\n\r\n");
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);

  const std::string oversized = raw_request(
      server.port(),
      "GET /metrics HTTP/1.0\r\nX-Pad: " + std::string(512, 'a') + "\r\n\r\n");
  EXPECT_NE(oversized.find("431 Request Header Fields Too Large"),
            std::string::npos);

  const std::string garbage = raw_request(server.port(), "\r\n\r\n");
  EXPECT_NE(garbage.find("400 Bad Request"), std::string::npos);

  server.stop();
}

TEST(ObsServerHttp, FixedPortIsHonored) {
  // Bind an ephemeral port first to learn a free one, then reuse it.
  ObsServer probe;
  ASSERT_TRUE(probe.start());
  const std::uint16_t port = probe.port();
  probe.stop();

  ObsServerOptions opts;
  opts.port = port;
  ObsServer server(opts);
  ASSERT_TRUE(server.start()) << server.last_error();
  EXPECT_EQ(server.port(), port);
  EXPECT_NE(http_get(port, "/healthz").find("200 OK"), std::string::npos);
  server.stop();
}

// Named so CI's TSan stress regex picks it up: concurrent scrapers racing
// live span/ledger writers must be clean.
TEST(ObsServerConcurrency, ParallelScrapesWhileWritersTick) {
  ObsServer server;
  ASSERT_TRUE(server.start()) << server.last_error();
  const std::uint16_t port = server.port();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&stop] {
      std::uint64_t now = 0;
      SimClockFn clock = [&now] { return now; };
      while (!stop.load(std::memory_order_relaxed)) {
        ScopedSpan span("server_test.writer", clock);
        now += 1;
        CostLedger::PhaseScope scope(CostPhase::kFleet);
        CostLedger::instance().tick(CostKind::kMatchOps, 1);
      }
    });
  }

  static const char* kPaths[] = {"/metrics", "/profile", "/profile.json",
                                 "/timeseries.json", "/healthz"};
  std::vector<std::thread> scrapers;
  std::atomic<int> ok{0};
  for (int s = 0; s < 4; ++s) {
    scrapers.emplace_back([&ok, port, s] {
      for (int i = 0; i < 8; ++i) {
        const std::string response = http_get(port, kPaths[(s + i) % 5]);
        if (response.find("HTTP/1.0 200 OK") != std::string::npos) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : scrapers) t.join();
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  EXPECT_EQ(ok.load(), 4 * 8);
  EXPECT_GE(server.requests_served(), 32u);
  server.stop();
}

}  // namespace
}  // namespace liberate::obs::serve
