// Unit tests for the span-fed hierarchical profiler, the cost ledger, and
// the ambient-context propagation that carries both (plus the span parent)
// across thread-pool submissions.
#include "obs/prof/profiler.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "obs/prof/context.h"
#include "obs/prof/cost_ledger.h"
#include "obs/prof/export.h"
#include "obs/span.h"

namespace liberate::obs {
namespace {

using prof::CollapsedMetric;
using prof::ProfileNode;
using prof::Profiler;
using prof::ProfileSnapshot;

class ProfilerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Profiler::instance().reset();
    Profiler::instance().set_enabled(true);
    SpanLog::instance().reset();
  }
};

const ProfileNode* find(const ProfileNode& parent, const std::string& name) {
  for (const ProfileNode& c : parent.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST_F(ProfilerTest, SpansBuildTreeWithInclusiveAndSelfTimes) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan outer("outer", clock);
    now += 10;
    {
      ScopedSpan inner("inner", clock);
      now += 30;
    }
    now += 5;
  }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  EXPECT_EQ(snap.node_count, 2u);
  EXPECT_EQ(snap.dropped, 0u);
  const ProfileNode* outer = find(snap.root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(outer->sim_us, 45u);
  EXPECT_EQ(outer->self_sim_us, 15u);
  const ProfileNode* inner = find(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 1u);
  EXPECT_EQ(inner->sim_us, 30u);
  EXPECT_EQ(inner->self_sim_us, 30u);
  EXPECT_TRUE(inner->children.empty());
}

TEST_F(ProfilerTest, SameNameUnderDifferentParentsIsDistinctNodes) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan a("a", clock);
    ScopedSpan shared("shared", clock);
    now += 1;
  }
  {
    ScopedSpan b("b", clock);
    ScopedSpan shared("shared", clock);
    now += 2;
  }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  EXPECT_EQ(snap.node_count, 4u);
  const ProfileNode* a = find(snap.root, "a");
  const ProfileNode* b = find(snap.root, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(find(*a, "shared"), nullptr);
  ASSERT_NE(find(*b, "shared"), nullptr);
  EXPECT_EQ(find(*a, "shared")->sim_us, 1u);
  EXPECT_EQ(find(*b, "shared")->sim_us, 2u);
}

TEST_F(ProfilerTest, SnapshotSortsChildrenByNameRegardlessOfInternOrder) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  { ScopedSpan z("zeta", clock); }
  { ScopedSpan m("mu", clock); }
  { ScopedSpan a("alpha", clock); }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  ASSERT_EQ(snap.root.children.size(), 3u);
  EXPECT_EQ(snap.root.children[0].name, "alpha");
  EXPECT_EQ(snap.root.children[1].name, "mu");
  EXPECT_EQ(snap.root.children[2].name, "zeta");
}

TEST_F(ProfilerTest, CollapsedStacksMatchBrendanGreggFormat) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan outer("outer", clock);
    now += 10;
    {
      ScopedSpan inner("inner", clock);
      now += 30;
    }
    now += 5;
  }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  EXPECT_EQ(prof::profile_collapsed(snap, CollapsedMetric::kSelfSimUs),
            "outer 15\nouter;inner 30\n");
  EXPECT_EQ(prof::profile_collapsed(snap, CollapsedMetric::kCount),
            "outer 1\nouter;inner 1\n");
}

TEST_F(ProfilerTest, ProfileJsonOmitsWallClockOnRequest) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan s("only", clock);
    now += 7;
  }
  const std::string with_wall =
      prof::profile_to_json(Profiler::instance().snapshot(), true);
  const std::string without =
      prof::profile_to_json(Profiler::instance().snapshot(), false);
  EXPECT_NE(with_wall.find("wall_ns"), std::string::npos);
  EXPECT_EQ(without.find("wall_ns"), std::string::npos);
  EXPECT_NE(without.find("\"name\":\"only\""), std::string::npos);
  EXPECT_NE(without.find("\"sim_us\":7"), std::string::npos);
}

TEST_F(ProfilerTest, DisabledProfilerInternsNothing) {
  Profiler::instance().set_enabled(false);
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan s("invisible", clock);
    now += 100;
  }
  EXPECT_EQ(Profiler::instance().node_count(), 0u);
  EXPECT_EQ(Profiler::current_node(), Profiler::kRootNode);
}

TEST_F(ProfilerTest, NodeCapacityOverflowCountsDrops) {
  for (int i = 0; i < 600; ++i) {
    Profiler::Token tok =
        Profiler::instance().enter("n" + std::to_string(i));
    Profiler::instance().exit(tok, 1, 0);
  }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  // Slot 0 is the synthetic root, so kMaxNodes - 1 real nodes fit.
  EXPECT_EQ(snap.node_count, Profiler::kMaxNodes - 1);
  EXPECT_EQ(snap.dropped, 600u - (Profiler::kMaxNodes - 1));
  // A dropped enter must not corrupt the ambient node.
  EXPECT_EQ(Profiler::current_node(), Profiler::kRootNode);
}

TEST_F(ProfilerTest, PropagateContextNestsCrossThreadSpansUnderSubmitter) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  std::uint64_t parent_id = 0;
  {
    ScopedSpan parent("parent", clock);
    parent_id = parent.id();
    auto task = propagate_context([&clock, &now] {
      ScopedSpan child("child", clock);
      now += 4;
    });
    std::thread worker(std::move(task));
    worker.join();
  }
  // Profile tree: child interned under parent despite running elsewhere.
  ProfileSnapshot snap = Profiler::instance().snapshot();
  const ProfileNode* parent = find(snap.root, "parent");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(find(*parent, "child"), nullptr);
  // Span log: the cross-thread span carries the submitting span as parent.
  bool saw_child = false;
  for (const SpanRecord& s : SpanLog::instance().snapshot()) {
    if (s.name != "child") continue;
    saw_child = true;
    EXPECT_EQ(s.parent_id, parent_id);
  }
  EXPECT_TRUE(saw_child);
}

TEST_F(ProfilerTest, UnpropagatedThreadStartsAtRoot) {
  std::uint64_t now = 0;
  SimClockFn clock = [&now] { return now; };
  {
    ScopedSpan parent("parent", clock);
    std::thread worker([&clock] { ScopedSpan orphan("orphan", clock); });
    worker.join();
  }
  ProfileSnapshot snap = Profiler::instance().snapshot();
  // Without LIBERATE_OBS_PROPAGATE the fresh thread's ambient node is the
  // root — the pre-fix behavior the propagation sites exist to avoid.
  EXPECT_NE(find(snap.root, "orphan"), nullptr);
}

class CostLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CostLedger::instance().reset();
    CostLedger::instance().set_enabled(true);
  }
};

TEST_F(CostLedgerTest, TicksLandInTheAmbientPhaseAndNestedScopesOverride) {
  CostLedger::instance().tick(CostKind::kRounds, 1);  // no scope open
  {
    CostLedger::PhaseScope detection(CostPhase::kDetection);
    CostLedger::instance().tick(CostKind::kRounds, 2);
    {
      CostLedger::PhaseScope blinding(CostPhase::kBlinding);
      CostLedger::instance().tick(CostKind::kProbes, 3);
    }
    CostLedger::instance().tick(CostKind::kMatchOps, 4);  // restored
  }
  CostLedgerSnapshot snap = CostLedger::instance().snapshot();
  EXPECT_EQ(snap.at(CostPhase::kUnattributed, CostKind::kRounds), 1u);
  EXPECT_EQ(snap.at(CostPhase::kDetection, CostKind::kRounds), 2u);
  EXPECT_EQ(snap.at(CostPhase::kBlinding, CostKind::kProbes), 3u);
  EXPECT_EQ(snap.at(CostPhase::kDetection, CostKind::kMatchOps), 4u);
  EXPECT_EQ(snap.kind_total(CostKind::kRounds), 3u);
  EXPECT_EQ(snap.phase_total(CostPhase::kDetection), 6u);
  EXPECT_EQ(CostLedger::current_phase(), CostPhase::kUnattributed);
}

TEST_F(CostLedgerTest, PhasePropagatesAcrossThreads) {
  CostLedger::PhaseScope scope(CostPhase::kEvaluation);
  auto task = propagate_context(
      [] { CostLedger::instance().tick(CostKind::kProbes, 5); });
  std::thread worker(std::move(task));
  worker.join();
  CostLedgerSnapshot snap = CostLedger::instance().snapshot();
  EXPECT_EQ(snap.at(CostPhase::kEvaluation, CostKind::kProbes), 5u);
  EXPECT_EQ(snap.at(CostPhase::kUnattributed, CostKind::kProbes), 0u);
}

TEST_F(CostLedgerTest, DisabledTicksAreDropped) {
  CostLedger::instance().set_enabled(false);
  CostLedger::instance().tick(CostKind::kRounds, 100);
  CostLedger::instance().set_enabled(true);
  CostLedgerSnapshot snap = CostLedger::instance().snapshot();
  EXPECT_EQ(snap.kind_total(CostKind::kRounds), 0u);
}

TEST_F(CostLedgerTest, ResetZeroesEveryCell) {
  {
    CostLedger::PhaseScope scope(CostPhase::kFleet);
    CostLedger::instance().tick(CostKind::kMutatedPackets, 9);
  }
  CostLedger::instance().reset();
  CostLedgerSnapshot snap = CostLedger::instance().snapshot();
  for (std::size_t p = 0; p < kCostPhases; ++p) {
    EXPECT_EQ(snap.phase_total(static_cast<CostPhase>(p)), 0u);
  }
}

TEST_F(CostLedgerTest, PrometheusExportEmitsEveryCellWithStableLabels) {
  {
    CostLedger::PhaseScope scope(CostPhase::kReadapt);
    CostLedger::instance().tick(CostKind::kRounds, 5);
  }
  const std::string text =
      prof::cost_ledger_prometheus(CostLedger::instance().snapshot());
  EXPECT_NE(text.find("# TYPE liberate_cost_total counter\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("liberate_cost_total{phase=\"readapt\",kind=\"rounds\"} 5\n"),
      std::string::npos);
  // One line per phase × kind cell plus the TYPE header, zeros included.
  std::size_t lines = 0;
  for (char c : text) lines += c == '\n';
  EXPECT_EQ(lines, 1 + kCostPhases * kCostKinds);
}

TEST_F(CostLedgerTest, JsonExportCarriesPhasesAndKindTotals) {
  {
    CostLedger::PhaseScope scope(CostPhase::kCharacterization);
    CostLedger::instance().tick(CostKind::kProbes, 21);
  }
  JsonWriter w;
  prof::write_cost_ledger_json(w, CostLedger::instance().snapshot());
  const std::string json = w.take();
  EXPECT_NE(json.find("\"characterization\":{\"rounds\":0,\"probes\":21"),
            std::string::npos);
  EXPECT_NE(json.find("\"totals\":{\"rounds\":0,\"probes\":21"),
            std::string::npos);
}

}  // namespace
}  // namespace liberate::obs
