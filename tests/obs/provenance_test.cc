// Flight-recorder unit tests: content-derived identity, lineage edges,
// bounded ledgers, verdict explanation rendering, Chrome-trace schema shape,
// and thread-safety under concurrent recording (the TSan stress leg matches
// on the Provenance prefix).
#include "obs/provenance/recorder.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/provenance/chrome_trace.h"
#include "obs/provenance/explain.h"
#include "obs/snapshot.h"

namespace liberate::obs::prov {
namespace {

Bytes fake_ipv4(std::uint8_t proto, std::uint32_t src, std::uint16_t sport,
                std::uint32_t dst, std::uint16_t dport,
                std::initializer_list<std::uint8_t> payload = {}) {
  Bytes d(20, 0);
  d[0] = 0x45;
  d[9] = proto;
  for (int i = 0; i < 4; ++i) {
    d[12 + i] = static_cast<std::uint8_t>(src >> (24 - 8 * i));
    d[16 + i] = static_cast<std::uint8_t>(dst >> (24 - 8 * i));
  }
  d.push_back(static_cast<std::uint8_t>(sport >> 8));
  d.push_back(static_cast<std::uint8_t>(sport));
  d.push_back(static_cast<std::uint8_t>(dport >> 8));
  d.push_back(static_cast<std::uint8_t>(dport));
  d.insert(d.end(), payload.begin(), payload.end());
  return d;
}

class ProvenanceTest : public ::testing::Test {
 protected:
  void SetUp() override { ProvenanceRecorder::instance().reset(); }
  void TearDown() override {
    auto& rec = ProvenanceRecorder::instance();
    rec.reset();
    rec.set_node_capacity(65536);
    rec.set_ledger_capacity(512);
    rec.set_max_flows(1024);
  }
};

TEST_F(ProvenanceTest, PacketIdsAreContentDerivedAndIdempotent) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes a = fake_ipv4(17, 0x0a000001, 42001, 0xc6336414, 3478, {1, 2, 3});
  Bytes b = fake_ipv4(17, 0x0a000001, 42001, 0xc6336414, 3478, {1, 2, 4});

  std::uint64_t id1 = rec.packet(a, "udp");
  std::uint64_t id2 = rec.packet(a, "udp");  // retransmission
  std::uint64_t id3 = rec.packet(b, "udp");
  EXPECT_EQ(id1, id2);
  EXPECT_NE(id1, id3);
  EXPECT_EQ(id1, packet_id(a));  // pure function of the bytes

  auto n = rec.node(id1);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->size, a.size());
  EXPECT_EQ(n->kind, "udp");
}

TEST_F(ProvenanceTest, WireStubsUpgradeToRealOriginKind) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes a = fake_ipv4(6, 1, 1, 2, 2, {9});
  rec.packet(a, "wire");  // seen on the wire before its origin registered
  rec.packet(a, "tcp");
  EXPECT_EQ(rec.node(packet_id(a))->kind, "tcp");
  rec.packet(a, "wire");  // a later wire sighting must not downgrade
  EXPECT_EQ(rec.node(packet_id(a))->kind, "tcp");
}

TEST_F(ProvenanceTest, EdgesDedupeAndSortDeterministically) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes parent = fake_ipv4(6, 1, 1, 2, 2, {1});
  Bytes child = fake_ipv4(6, 1, 1, 2, 2, {2});

  rec.edge(10, parent, child, "split", "tcp-segmentation", "payload[0..1)");
  rec.edge(11, parent, child, "split", "tcp-segmentation");  // dup: dropped
  rec.edge(12, parent, child, "insert", "inert-ttl");
  rec.edge(13, child, child, "split", "self");  // self-loop: ignored

  auto hops = rec.parents_of(packet_id(child));
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].kind, "insert");  // (child, parent, kind, actor) order
  EXPECT_EQ(hops[1].kind, "split");
  EXPECT_EQ(hops[1].ts_us, 10u);  // first sighting won
  EXPECT_EQ(hops[1].detail, "payload[0..1)");
}

TEST_F(ProvenanceTest, EdgeFanInIsCapped) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes child = fake_ipv4(6, 1, 1, 2, 2, {0});
  for (std::uint8_t i = 1; i <= 40; ++i) {
    Bytes parent = fake_ipv4(6, 1, 1, 2, 2, {i});
    rec.edge(i, parent, child, "reassembly", "ip-reassembler");
  }
  EXPECT_LE(rec.parents_of(packet_id(child)).size(), 16u);
}

TEST_F(ProvenanceTest, FlowKeyIsDirectionFree) {
  FlowKey forward = flow_key(0x0a000001, 42001, 0xc6336414, 3478, 17);
  FlowKey reverse = flow_key(0xc6336414, 3478, 0x0a000001, 42001, 17);
  EXPECT_EQ(forward, reverse);
  EXPECT_EQ(forward.to_string(), "10.0.0.1:42001<->198.51.100.20:3478/udp");
  EXPECT_EQ(FlowKey{}.to_string(), "<no-flow>");
}

TEST_F(ProvenanceTest, FlowKeyOfParsesRawIpv4) {
  Bytes d = fake_ipv4(17, 0x0a000001, 42001, 0xc6336414, 3478);
  FlowKey k = flow_key_of(d);
  EXPECT_TRUE(k.valid);
  EXPECT_EQ(k, flow_key(0x0a000001, 42001, 0xc6336414, 3478, 17));

  EXPECT_FALSE(flow_key_of(Bytes{0x45, 0x00}).valid);  // truncated
  Bytes not_v4 = d;
  not_v4[0] = 0x65;
  EXPECT_FALSE(flow_key_of(not_v4).valid);

  // Non-first fragment: addresses yes, ports no (payload is mid-stream).
  Bytes frag = d;
  frag[6] = 0x00;
  frag[7] = 0x03;  // fragment offset 3
  FlowKey fk = flow_key_of(frag);
  EXPECT_TRUE(fk.valid);
  EXPECT_EQ(fk.port_a, 0);
  EXPECT_EQ(fk.port_b, 0);
}

TEST_F(ProvenanceTest, NodeTableEvictsFifoAndCountsEvictions) {
  auto& rec = ProvenanceRecorder::instance();
  rec.set_node_capacity(4);
  std::vector<std::uint64_t> ids;
  for (std::uint8_t i = 0; i < 8; ++i) {
    ids.push_back(rec.packet(fake_ipv4(6, 1, 1, 2, 2, {i}), "tcp"));
  }
  EXPECT_FALSE(rec.node(ids[0]).has_value());  // oldest gone
  EXPECT_TRUE(rec.node(ids[7]).has_value());   // newest kept
  ProvSnapshot snap = rec.snapshot();
  EXPECT_EQ(snap.nodes.size(), 4u);
  EXPECT_EQ(snap.nodes_evicted, 4u);
}

TEST_F(ProvenanceTest, LedgerRingDropsOldestWithExactCounts) {
  auto& rec = ProvenanceRecorder::instance();
  rec.set_ledger_capacity(3);
  FlowKey flow = flow_key(1, 1, 2, 2, 6);
  for (int i = 0; i < 10; ++i) {
    rec.note(static_cast<std::uint64_t>(i), flow, "dpi-skip",
             {fv("i", std::int64_t{i})});
  }
  auto ledgers = rec.ledgers_for(flow);
  ASSERT_EQ(ledgers.size(), 1u);
  EXPECT_EQ(ledgers[0].records.size(), 3u);
  EXPECT_EQ(ledgers[0].dropped, 7u);
  EXPECT_EQ(ledgers[0].total, 10u);
  EXPECT_EQ(ledgers[0].records.back().seq, 9u);  // newest survived
}

TEST_F(ProvenanceTest, LedgerSetEvictsOldestFlows) {
  auto& rec = ProvenanceRecorder::instance();
  rec.set_max_flows(2);
  FlowKey f1 = flow_key(1, 1, 2, 2, 6);
  FlowKey f2 = flow_key(1, 1, 2, 3, 6);
  FlowKey f3 = flow_key(1, 1, 2, 4, 6);
  rec.note(0, f1, "dpi-skip", {});
  rec.note(1, f2, "dpi-skip", {});
  rec.note(2, f3, "dpi-skip", {});
  EXPECT_TRUE(rec.ledgers_for(f1).empty());  // FIFO victim
  EXPECT_EQ(rec.ledgers_for(f3).size(), 1u);
  EXPECT_EQ(rec.snapshot().ledgers_evicted, 1u);
}

TEST_F(ProvenanceTest, ScopesKeepParallelLedgersSeparate) {
  auto& rec = ProvenanceRecorder::instance();
  FlowKey flow = flow_key(1, 1, 2, 2, 17);
  rec.note(5, flow, "ambient", {});
  {
    ScopedProvScope scope(0xABCD);
    EXPECT_EQ(ProvenanceRecorder::current_scope(), 0xABCDu);
    rec.note(7, flow, "scoped", {});
  }
  EXPECT_EQ(ProvenanceRecorder::current_scope(), 0u);
  auto ledgers = rec.ledgers_for(flow);
  ASSERT_EQ(ledgers.size(), 2u);
  EXPECT_EQ(ledgers[0].scope, 0u);  // scope-ascending
  EXPECT_EQ(ledgers[0].records[0].kind, "ambient");
  EXPECT_EQ(ledgers[1].scope, 0xABCDu);
  EXPECT_EQ(ledgers[1].records[0].kind, "scoped");
}

TEST_F(ProvenanceTest, ExplainNamesRuleOffsetsAndLineage) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes parent = fake_ipv4(17, 0x0a000001, 42001, 0xc6336414, 3478, {1, 2});
  Bytes child = fake_ipv4(17, 0x0a000001, 42001, 0xc6336414, 3478, {1});
  rec.packet(parent, "udp");
  rec.edge(90, parent, child, "split", "udp-fragmentation",
           "payload[0..1) of parent");

  FlowKey flow = flow_key_of(child);
  std::uint64_t child_id = rec.packet(child, "udp");
  rec.note(100, flow, "rules-evaluated",
           {fv("tried", std::int64_t{3}), fv("class", "skype"),
            fv("rule", "testbed-skype-stun"), fv("offsets", "24")},
           child_id);
  rec.note(101, flow, "verdict",
           {fv("class", "skype"), fv("rule", "testbed-skype-stun"),
            fv("action", "block")},
           child_id);

  Explanation ex = explain_verdict(flow);
  EXPECT_TRUE(ex.found);
  EXPECT_EQ(ex.verdict_class, "skype");
  EXPECT_EQ(ex.verdict_rule, "testbed-skype-stun");
  EXPECT_EQ(ex.verdict_action, "block");
  // The causal chain names the rule, the matched offsets, and the lineage.
  EXPECT_NE(ex.text.find("classified as skype by rule testbed-skype-stun"),
            std::string::npos);
  EXPECT_NE(ex.text.find("offsets=24"), std::string::npos);
  EXPECT_NE(ex.text.find("<- split of pkt " + id_hex(packet_id(parent))),
            std::string::npos);
  EXPECT_NE(ex.text.find("by udp-fragmentation"), std::string::npos);
  EXPECT_NE(ex.json.find("\"rule\":\"testbed-skype-stun\""),
            std::string::npos);
  EXPECT_NE(ex.json.find("\"hop\":\"split\""), std::string::npos);
}

TEST_F(ProvenanceTest, ExplainPrefersTheDecisiveScope) {
  auto& rec = ProvenanceRecorder::instance();
  FlowKey flow = flow_key(1, 1, 2, 2, 6);
  {
    ScopedProvScope scope(7);
    rec.note(50, flow, "dpi-skip", {fv("reason", "mid-flow-unknown")});
  }
  {
    ScopedProvScope scope(9);
    rec.note(60, flow, "verdict", {fv("class", "video")});
  }
  Explanation ex = explain_verdict(flow);
  EXPECT_EQ(ex.scope, 9u);
  EXPECT_EQ(ex.verdict_class, "video");
}

TEST_F(ProvenanceTest, ExplainUnknownFlowSaysSo) {
  Explanation ex = explain_verdict(flow_key(9, 9, 8, 8, 6));
  EXPECT_FALSE(ex.found);
  EXPECT_NE(ex.text.find("no provenance recorded"), std::string::npos);
  EXPECT_NE(ex.json.find("\"found\":false"), std::string::npos);
}

TEST_F(ProvenanceTest, ChromeTraceHasTraceEventSchema) {
  auto& rec = ProvenanceRecorder::instance();
  Bytes parent = fake_ipv4(6, 1, 1, 2, 2, {1});
  Bytes child = fake_ipv4(6, 1, 1, 2, 2, {2});
  rec.edge(10, parent, child, "split", "tcp-segmentation");
  rec.note_pkt(20, child, "verdict", {fv("class", "video")});

  std::string json = to_chrome_trace_json(capture());
  // Chrome trace-event "JSON Object Format": a traceEvents array of events
  // with ph/ts/pid fields; metadata names the process, provenance records
  // are thread-scoped instants, hops are process-scoped instants.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hop:split\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"verdict\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);

  // Deterministic: same recorder state renders the same bytes.
  EXPECT_EQ(json, to_chrome_trace_json(capture()));
}

TEST_F(ProvenanceTest, SnapshotSummaryReachesTelemetryJson) {
  auto& rec = ProvenanceRecorder::instance();
  rec.note_pkt(30, fake_ipv4(6, 1, 1, 2, 2, {5}), "dpi-skip",
               {fv("reason", "invalid-packet")});
  std::string telemetry = to_json(capture());
  EXPECT_NE(telemetry.find("\"provenance\":{"), std::string::npos);
  EXPECT_NE(telemetry.find("\"flows\":1"), std::string::npos);
}

TEST_F(ProvenanceTest, ProvenanceConcurrencyManyThreads) {
  auto& rec = ProvenanceRecorder::instance();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      ScopedProvScope scope(static_cast<std::uint64_t>(t + 1));
      for (int i = 0; i < kPerThread; ++i) {
        Bytes parent = fake_ipv4(6, 1, 1, 2, 2,
                                 {static_cast<std::uint8_t>(t),
                                  static_cast<std::uint8_t>(i)});
        Bytes child = fake_ipv4(6, 1, 1, 2, 2,
                                {static_cast<std::uint8_t>(t),
                                 static_cast<std::uint8_t>(i), 0xFF});
        rec.packet(parent, "tcp");
        rec.edge(static_cast<std::uint64_t>(i), parent, child, "split",
                 "stress");
        rec.note_pkt(static_cast<std::uint64_t>(i), child, "rules-evaluated",
                     {fv("tried", std::int64_t{i})});
      }
    });
  }
  for (auto& th : threads) th.join();

  ProvSnapshot snap = rec.snapshot();
  // All threads hit the same flow but distinct scopes: one ledger each,
  // every record accounted for.
  EXPECT_EQ(snap.ledgers.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(snap.total_records,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace liberate::obs::prov
