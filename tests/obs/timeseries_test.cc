// TimeSeriesStore semantics: ring wrap + exact drop accounting, capacity
// changes, deterministic key ordering, registry-tick delta series, the
// ewma/rate derivations, and JSON export determinism.
#undef LIBERATE_OBS_LEVEL
#define LIBERATE_OBS_LEVEL 2

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "obs/obs.h"
#include "obs/timeseries.h"

namespace liberate::obs {
namespace {

class TimeSeriesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TimeSeriesStore::instance().reset();
    TimeSeriesStore::instance().set_capacity(
        TimeSeriesStore::kDefaultCapacity);
  }
  void TearDown() override {
    TimeSeriesStore::instance().reset();
    TimeSeriesStore::instance().set_capacity(
        TimeSeriesStore::kDefaultCapacity);
  }
};

TEST_F(TimeSeriesTest, SampleAppendsInOrder) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.sample("ts.a", 0, 100, 1.0);
  ts.sample("ts.a", 0, 200, 2.0);
  TimeSeriesSnapshot snap = ts.snapshot("ts.a");
  ASSERT_EQ(snap.series.size(), 1u);
  ASSERT_EQ(snap.series[0].points.size(), 2u);
  EXPECT_EQ(snap.series[0].points[0].t_us, 100u);
  EXPECT_EQ(snap.series[0].points[1].value, 2.0);
  EXPECT_EQ(snap.series[0].dropped, 0u);
  EXPECT_EQ(snap.series[0].total, 2u);
}

TEST_F(TimeSeriesTest, RingWrapsOldestFirstAndCountsDrops) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.set_capacity(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ts.sample("ts.wrap", 1, i * 10, static_cast<double>(i));
  }
  TimeSeriesSnapshot snap = ts.snapshot("ts.wrap");
  ASSERT_EQ(snap.series.size(), 1u);
  const SeriesSnapshot& s = snap.series[0];
  EXPECT_EQ(s.total, 10u);
  EXPECT_EQ(s.dropped, 6u);
  ASSERT_EQ(s.points.size(), 4u);
  // Oldest surviving point first: 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(s.points[i].value, static_cast<double>(6 + i));
    EXPECT_EQ(s.points[i].t_us, (6 + i) * 10);
  }
}

TEST_F(TimeSeriesTest, ShrinkAndGrowCapacity) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.set_capacity(8);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ts.sample("ts.cap", -1, i, static_cast<double>(i));
  }
  // Shrink: oldest dropped, drops counted.
  ts.set_capacity(3);
  TimeSeriesSnapshot snap = ts.snapshot("ts.cap");
  ASSERT_EQ(snap.series[0].points.size(), 3u);
  EXPECT_EQ(snap.series[0].points[0].value, 5.0);
  EXPECT_EQ(snap.series[0].dropped, 5u);
  // Grow again: appends continue in chronological order.
  ts.set_capacity(5);
  ts.sample("ts.cap", -1, 100, 42.0);
  snap = ts.snapshot("ts.cap");
  ASSERT_EQ(snap.series[0].points.size(), 4u);
  EXPECT_EQ(snap.series[0].points.back().value, 42.0);
  EXPECT_EQ(snap.series[0].points[0].value, 5.0);
}

TEST_F(TimeSeriesTest, GrowAfterWrapKeepsChronologicalOrder) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.set_capacity(3);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ts.sample("ts.grow", -1, i, static_cast<double>(i));  // ring wraps
  }
  ts.set_capacity(6);
  ts.sample("ts.grow", -1, 50, 50.0);
  TimeSeriesSnapshot snap = ts.snapshot("ts.grow");
  const auto& pts = snap.series[0].points;
  ASSERT_EQ(pts.size(), 4u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i - 1].t_us, pts[i].t_us);
  }
}

TEST_F(TimeSeriesTest, SnapshotKeysAreSortedNameThenShard) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.sample("ts.k.b", 2, 0, 0);
  ts.sample("ts.k.a", 1, 0, 0);
  ts.sample("ts.k.a", -1, 0, 0);
  ts.sample("ts.k.b", 0, 0, 0);
  TimeSeriesSnapshot snap = ts.snapshot("ts.k.");
  ASSERT_EQ(snap.series.size(), 4u);
  EXPECT_EQ(snap.series[0].key.name, "ts.k.a");
  EXPECT_EQ(snap.series[0].key.shard, -1);
  EXPECT_EQ(snap.series[1].key.shard, 1);
  EXPECT_EQ(snap.series[2].key.name, "ts.k.b");
  EXPECT_EQ(snap.series[2].key.shard, 0);
  EXPECT_EQ(snap.series[3].key.shard, 2);
}

TEST_F(TimeSeriesTest, TickEmitsCounterDeltasAfterBase) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  Counter& c = MetricsRegistry::instance().counter("tstick.flows");
  c.reset();
  c.add(10);
  ts.tick(1'000'000, {"tstick."});  // first tick: base only, no point
  TimeSeriesSnapshot snap = ts.snapshot("tstick.flows.delta");
  EXPECT_TRUE(snap.series.empty());

  c.add(7);
  ts.tick(2'000'000, {"tstick."});
  snap = ts.snapshot("tstick.flows.delta");
  ASSERT_EQ(snap.series.size(), 1u);
  ASSERT_EQ(snap.series[0].points.size(), 1u);
  EXPECT_EQ(snap.series[0].points[0].t_us, 2'000'000u);
  EXPECT_EQ(snap.series[0].points[0].value, 7.0);

  // A counter reset between ticks clamps to a 0 delta, not a negative one.
  c.reset();
  c.add(2);
  ts.tick(3'000'000, {"tstick."});
  snap = ts.snapshot("tstick.flows.delta");
  ASSERT_EQ(snap.series[0].points.size(), 2u);
  EXPECT_EQ(snap.series[0].points[1].value, 0.0);
  c.reset();
}

TEST_F(TimeSeriesTest, TickEmitsGaugeValuesAndHonorsPrefixes) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  Gauge& g = MetricsRegistry::instance().gauge("tstick.depth");
  Gauge& other = MetricsRegistry::instance().gauge("elsewhere.depth");
  g.reset();
  other.reset();
  g.set(5);
  other.set(9);
  ts.tick(1'000'000, {"tstick."});
  TimeSeriesSnapshot snap = ts.snapshot();
  bool saw_gauge = false;
  for (const SeriesSnapshot& s : snap.series) {
    EXPECT_NE(s.key.name.rfind("tstick.", 0), std::string::npos)
        << "prefix filter leaked " << s.key.name;
    if (s.key.name == "tstick.depth") {
      saw_gauge = true;
      ASSERT_EQ(s.points.size(), 1u);
      EXPECT_EQ(s.points[0].value, 5.0);
    }
  }
  EXPECT_TRUE(saw_gauge);
  g.reset();
  other.reset();
}

TEST_F(TimeSeriesTest, EwmaAndRateDerivations) {
  std::vector<SeriesPoint> pts = {{0, 1.0}, {1'000'000, 2.0}, {2'000'000, 6.0}};
  // alpha=0.5: 1 -> 1.5 -> 3.75
  EXPECT_DOUBLE_EQ(series_ewma(pts, 0.5), 3.75);
  EXPECT_DOUBLE_EQ(series_ewma({}, 0.5), 0.0);

  std::vector<SeriesPoint> rate = series_rate(pts);
  ASSERT_EQ(rate.size(), 2u);
  EXPECT_DOUBLE_EQ(rate[0].value, 1.0);  // (2-1)/1s
  EXPECT_DOUBLE_EQ(rate[1].value, 4.0);  // (6-2)/1s
  EXPECT_TRUE(series_rate({{0, 1.0}}).empty());
}

TEST_F(TimeSeriesTest, JsonExportIsDeterministic) {
  TimeSeriesStore& ts = TimeSeriesStore::instance();
  ts.sample("ts.json", 0, 1'000'000, 0.25);
  ts.sample("ts.json", 0, 2'000'000, 0.5);
  const std::string a = timeseries_to_json(ts.snapshot("ts.json"));
  const std::string b = timeseries_to_json(ts.snapshot("ts.json"));
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"name\":\"ts.json\""), std::string::npos);
  EXPECT_NE(a.find("\"shard\":0"), std::string::npos);
  EXPECT_NE(a.find("\"ewma\""), std::string::npos);
}

}  // namespace
}  // namespace liberate::obs
