#include "stack/ip_reassembly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "netsim/packet.h"
#include "util/rng.h"

namespace liberate::stack {
namespace {

using namespace netsim;

Bytes tcp_datagram(std::size_t payload_size, std::uint64_t seed = 1) {
  Rng rng(seed);
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.0.0.2");
  ip.identification = static_cast<std::uint16_t>(seed);
  TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  return make_tcp_datagram(ip, tcp, rng.bytes(payload_size));
}

TEST(IpReassembly, NonFragmentPassesThrough) {
  IpReassembler r;
  Bytes d = tcp_datagram(100);
  auto out = r.push(d, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, d);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(IpReassembly, InOrderFragmentsReassemble) {
  IpReassembler r;
  Bytes d = tcp_datagram(900);
  auto frags = fragment_datagram(d, 3);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  EXPECT_FALSE(r.push(frags[1], 0).has_value());
  auto out = r.push(frags[2], 0);
  ASSERT_TRUE(out.has_value());

  // Reassembled transport payload identical to the original's.
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
  EXPECT_FALSE(got.is_fragment());
  EXPECT_FALSE(got.any_anomaly());
}

TEST(IpReassembly, OutOfOrderFragmentsReassemble) {
  IpReassembler r;
  Bytes d = tcp_datagram(1200, 7);
  auto frags = fragment_datagram(d, 4);
  ASSERT_EQ(frags.size(), 4u);
  std::swap(frags[0], frags[3]);
  std::swap(frags[1], frags[2]);
  std::optional<Bytes> out;
  for (const auto& f : frags) {
    out = r.push(f, 0);
  }
  ASSERT_TRUE(out.has_value());
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
}

TEST(IpReassembly, DistinctFlowsDoNotMix) {
  IpReassembler r;
  Bytes a = tcp_datagram(500, 11);
  Bytes b = tcp_datagram(500, 22);
  auto fa = fragment_datagram(a, 2);
  auto fb = fragment_datagram(b, 2);
  EXPECT_FALSE(r.push(fa[0], 0).has_value());
  EXPECT_FALSE(r.push(fb[0], 0).has_value());
  EXPECT_EQ(r.pending(), 2u);
  auto ra = r.push(fa[1], 0);
  ASSERT_TRUE(ra.has_value());
  auto oa = parse_ipv4(a).value();
  auto ga = parse_ipv4(*ra).value();
  EXPECT_EQ(Bytes(ga.payload.begin(), ga.payload.end()),
            Bytes(oa.payload.begin(), oa.payload.end()));
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassembly, MissingMiddleFragmentNeverCompletes) {
  IpReassembler r;
  Bytes d = tcp_datagram(900, 3);
  auto frags = fragment_datagram(d, 3);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  EXPECT_FALSE(r.push(frags[2], 0).has_value());
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassembly, ExpiryDropsStaleBuffers) {
  IpReassembler r(seconds(30));
  Bytes d = tcp_datagram(900, 5);
  auto frags = fragment_datagram(d, 3);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  r.expire(seconds(31));
  EXPECT_EQ(r.pending(), 0u);
  // Completing after expiry does not produce the datagram.
  EXPECT_FALSE(r.push(frags[1], seconds(31)).has_value());
  EXPECT_FALSE(r.push(frags[2], seconds(31)).has_value());
  // frags[1] and frags[2] alone can't cover offset 0.
  EXPECT_EQ(r.pending(), 1u);
}

// Property sweep: random fragment counts and delivery orders always
// reconstruct the original transport bytes.
class ReassemblyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReassemblyProperty, RandomOrderAlwaysReassembles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  IpReassembler r;
  std::size_t payload = 200 + rng.below(1800);
  std::size_t pieces = 2 + rng.below(6);
  Bytes d = tcp_datagram(payload, static_cast<std::uint64_t>(GetParam()) + 100);
  auto frags = fragment_datagram(d, pieces);
  // Shuffle.
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.below(i)]);
  }
  std::optional<Bytes> out;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    out = r.push(frags[i], 0);
    if (i + 1 < frags.size()) EXPECT_FALSE(out.has_value());
  }
  ASSERT_TRUE(out.has_value());
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
}

INSTANTIATE_TEST_SUITE_P(Trials, ReassemblyProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace liberate::stack
