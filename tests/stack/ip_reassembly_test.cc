#include "stack/ip_reassembly.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "netsim/packet.h"
#include "util/rng.h"

namespace liberate::stack {
namespace {

using namespace netsim;

Bytes tcp_datagram(std::size_t payload_size, std::uint64_t seed = 1) {
  Rng rng(seed);
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.0.0.2");
  ip.identification = static_cast<std::uint16_t>(seed);
  TcpHeader tcp;
  tcp.src_port = 1000;
  tcp.dst_port = 80;
  tcp.flags = TcpFlags::kAck;
  return make_tcp_datagram(ip, tcp, rng.bytes(payload_size));
}

TEST(IpReassembly, NonFragmentPassesThrough) {
  IpReassembler r;
  Bytes d = tcp_datagram(100);
  auto out = r.push(d, 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, d);
  EXPECT_EQ(r.pending(), 0u);
}

TEST(IpReassembly, InOrderFragmentsReassemble) {
  IpReassembler r;
  Bytes d = tcp_datagram(900);
  auto frags = fragment_datagram(d, 3);
  ASSERT_EQ(frags.size(), 3u);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  EXPECT_FALSE(r.push(frags[1], 0).has_value());
  auto out = r.push(frags[2], 0);
  ASSERT_TRUE(out.has_value());

  // Reassembled transport payload identical to the original's.
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
  EXPECT_FALSE(got.is_fragment());
  EXPECT_FALSE(got.any_anomaly());
}

TEST(IpReassembly, OutOfOrderFragmentsReassemble) {
  IpReassembler r;
  Bytes d = tcp_datagram(1200, 7);
  auto frags = fragment_datagram(d, 4);
  ASSERT_EQ(frags.size(), 4u);
  std::swap(frags[0], frags[3]);
  std::swap(frags[1], frags[2]);
  std::optional<Bytes> out;
  for (const auto& f : frags) {
    out = r.push(f, 0);
  }
  ASSERT_TRUE(out.has_value());
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
}

TEST(IpReassembly, DistinctFlowsDoNotMix) {
  IpReassembler r;
  Bytes a = tcp_datagram(500, 11);
  Bytes b = tcp_datagram(500, 22);
  auto fa = fragment_datagram(a, 2);
  auto fb = fragment_datagram(b, 2);
  EXPECT_FALSE(r.push(fa[0], 0).has_value());
  EXPECT_FALSE(r.push(fb[0], 0).has_value());
  EXPECT_EQ(r.pending(), 2u);
  auto ra = r.push(fa[1], 0);
  ASSERT_TRUE(ra.has_value());
  auto oa = parse_ipv4(a).value();
  auto ga = parse_ipv4(*ra).value();
  EXPECT_EQ(Bytes(ga.payload.begin(), ga.payload.end()),
            Bytes(oa.payload.begin(), oa.payload.end()));
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassembly, MissingMiddleFragmentNeverCompletes) {
  IpReassembler r;
  Bytes d = tcp_datagram(900, 3);
  auto frags = fragment_datagram(d, 3);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  EXPECT_FALSE(r.push(frags[2], 0).has_value());
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassembly, ExpiryDropsStaleBuffers) {
  IpReassembler r(seconds(30));
  Bytes d = tcp_datagram(900, 5);
  auto frags = fragment_datagram(d, 3);
  EXPECT_FALSE(r.push(frags[0], 0).has_value());
  r.expire(seconds(31));
  EXPECT_EQ(r.pending(), 0u);
  // Completing after expiry does not produce the datagram.
  EXPECT_FALSE(r.push(frags[1], seconds(31)).has_value());
  EXPECT_FALSE(r.push(frags[2], seconds(31)).has_value());
  // frags[1] and frags[2] alone can't cover offset 0.
  EXPECT_EQ(r.pending(), 1u);
}

// Property sweep: random fragment counts and delivery orders always
// reconstruct the original transport bytes.
class ReassemblyProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReassemblyProperty, RandomOrderAlwaysReassembles) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  IpReassembler r;
  std::size_t payload = 200 + rng.below(1800);
  std::size_t pieces = 2 + rng.below(6);
  Bytes d = tcp_datagram(payload, static_cast<std::uint64_t>(GetParam()) + 100);
  auto frags = fragment_datagram(d, pieces);
  // Shuffle.
  for (std::size_t i = frags.size(); i > 1; --i) {
    std::swap(frags[i - 1], frags[rng.below(i)]);
  }
  std::optional<Bytes> out;
  for (std::size_t i = 0; i < frags.size(); ++i) {
    out = r.push(frags[i], 0);
    if (i + 1 < frags.size()) EXPECT_FALSE(out.has_value());
  }
  ASSERT_TRUE(out.has_value());
  auto orig = parse_ipv4(d).value();
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(Bytes(got.payload.begin(), got.payload.end()),
            Bytes(orig.payload.begin(), orig.payload.end()));
}

INSTANTIATE_TEST_SUITE_P(Trials, ReassemblyProperty, ::testing::Range(0, 20));

// --- Robustness regressions (issue 4) --------------------------------------

// A hand-built TCP-protocol fragment: offset in bytes (8-aligned), explicit
// MF flag, arbitrary payload.
Bytes raw_fragment(std::size_t offset, BytesView payload, bool more_fragments,
                   std::uint16_t id = 0x42) {
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.0.0.2");
  ip.identification = id;
  ip.protocol = 6;
  ip.fragment_offset_words = static_cast<std::uint16_t>(offset / 8);
  ip.flag_more_fragments = more_fragments;
  return serialize_ipv4(ip, payload);
}

Bytes pattern(std::size_t n, std::uint8_t fill) { return Bytes(n, fill); }

// Regression for the heap OOB write: pieces [0,100), a last fragment
// [48,60) declaring total_size = 60, and a stray piece at offset 80 — i.e.
// entirely beyond the declared end. The old copy loop computed
// `payload.size() - p.offset` for the stray piece, underflowed, and wrote
// past the 60-byte reassembly buffer (ASan caught it as a heap buffer
// overflow). Now the stray bytes are skipped and the datagram is exact.
TEST(IpReassemblyRobustness, StrayFragmentPastTotalSizeIsBounded) {
  IpReassembler r;
  EXPECT_FALSE(r.push(raw_fragment(0, pattern(100, 0x11), true), 0));
  EXPECT_FALSE(r.push(raw_fragment(80, pattern(8, 0xBB), true), 0));
  auto out = r.push(raw_fragment(48, pattern(12, 0xAA), false), 0);
  ASSERT_TRUE(out.has_value());
  auto got = parse_ipv4(*out).value();
  ASSERT_EQ(got.payload.size(), 60u);
  // [0,48) from the first piece; [48,60) from the later-arriving last piece.
  for (std::size_t i = 0; i < 48; ++i) EXPECT_EQ(got.payload[i], 0x11) << i;
  for (std::size_t i = 48; i < 60; ++i) EXPECT_EQ(got.payload[i], 0xAA) << i;
}

// Duplicate-offset overlap resolution must not depend on std::sort's
// unspecified ordering of equal keys: with stable_sort, the later arrival
// at the same offset deterministically wins the overlapping bytes.
TEST(IpReassemblyRobustness, DuplicateOffsetOverlapIsArrivalDeterministic) {
  for (int trial = 0; trial < 4; ++trial) {
    IpReassembler r;
    EXPECT_FALSE(r.push(raw_fragment(0, pattern(64, 0x11), true), 0));
    EXPECT_FALSE(r.push(raw_fragment(0, pattern(64, 0x22), true), 0));
    auto out = r.push(raw_fragment(64, pattern(8, 0x33), false), 0);
    ASSERT_TRUE(out.has_value());
    auto got = parse_ipv4(*out).value();
    ASSERT_EQ(got.payload.size(), 72u);
    for (std::size_t i = 0; i < 64; ++i) {
      ASSERT_EQ(got.payload[i], 0x22) << "trial " << trial << " byte " << i;
    }
  }
}

// Two disagreeing MF=0 fragments: the first total_size claim stands; the
// conflicting one is counted, not honored (it must neither grow nor shrink
// the datagram under reassembly).
TEST(IpReassemblyRobustness, ConflictingLastFragmentKeepsFirstClaim) {
  IpReassembler r;
  // First claim: [48,60) => total 60.
  EXPECT_FALSE(r.push(raw_fragment(48, pattern(12, 0xAA), false), 0));
  // Conflicting claim: [56,64) => total 64. Ignored.
  EXPECT_FALSE(r.push(raw_fragment(56, pattern(8, 0xBB), false), 0));
  auto out = r.push(raw_fragment(0, pattern(56, 0x11), true), 0);
  ASSERT_TRUE(out.has_value());
  auto got = parse_ipv4(*out).value();
  EXPECT_EQ(got.payload.size(), 60u);  // 64 would mean the second claim won
}

TEST(IpReassemblyRobustness, BufferCapEvictsOldestFlow) {
  ReassemblyLimits limits;
  limits.max_buffers = 2;
  IpReassembler r(seconds(30), limits);
  // Three concurrent flows, one fragment each, arriving at distinct times.
  EXPECT_FALSE(r.push(raw_fragment(0, pattern(16, 1), true, 1), 0));
  EXPECT_FALSE(r.push(raw_fragment(0, pattern(16, 2), true, 2), milliseconds(1)));
  EXPECT_FALSE(r.push(raw_fragment(0, pattern(16, 3), true, 3), milliseconds(2)));
  EXPECT_EQ(r.pending(), 2u);  // flow 1 (oldest) was evicted
  // Completing the evicted flow cannot succeed from its last fragment alone.
  EXPECT_FALSE(r.push(raw_fragment(16, pattern(8, 1), false, 1), milliseconds(3)));
  // The newest flow still completes normally.
  auto out = r.push(raw_fragment(16, pattern(8, 3), false, 3), milliseconds(3));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(parse_ipv4(*out).value().payload.size(), 24u);
}

TEST(IpReassemblyRobustness, PieceCapStopsHostileFlows) {
  ReassemblyLimits limits;
  limits.max_pieces_per_buffer = 4;
  IpReassembler r(seconds(30), limits);
  // Six pieces of one flow: everything past the fourth is refused, so the
  // flow can never complete — and never grows the buffer either.
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_FALSE(r.push(raw_fragment(i * 8, pattern(8, 0x44), i + 1 < 6), 0));
  }
  EXPECT_EQ(r.pending(), 1u);
}

TEST(IpReassemblyRobustness, OversizeOffsetFragmentIsDropped) {
  ReassemblyLimits limits;
  limits.max_datagram_bytes = 1000;
  IpReassembler r(seconds(30), limits);
  EXPECT_FALSE(r.push(raw_fragment(1024, pattern(8, 0x55), true), 0));
  EXPECT_EQ(r.pending(), 0u);  // not even buffered
}

TEST(IpReassemblyRobustness, OverlongPieceIsClampedToMaxDatagram) {
  ReassemblyLimits limits;
  limits.max_datagram_bytes = 64;
  IpReassembler r(seconds(30), limits);
  // [0,128) payload against a 64-byte ceiling: the stored piece is clamped,
  // and a last fragment at [56,64) completes a 64-byte datagram.
  EXPECT_FALSE(r.push(raw_fragment(0, pattern(128, 0x66), true), 0));
  auto out = r.push(raw_fragment(56, pattern(8, 0x77), false), 0);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(parse_ipv4(*out).value().payload.size(), 64u);
}

}  // namespace
}  // namespace liberate::stack
