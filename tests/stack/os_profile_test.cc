#include "stack/os_profile.h"

#include <gtest/gtest.h>

namespace liberate::stack {
namespace {

using netsim::Anomaly;
using netsim::anomaly_bit;

struct Row {
  Anomaly anomaly;
  OsAction linux_action;
  OsAction macos_action;
  OsAction windows_action;
};

// Direct transcription of Table 3's "Server Response" columns.
const Row kTable3ServerResponse[] = {
    {Anomaly::kBadIpVersion, OsAction::kDrop, OsAction::kDrop, OsAction::kDrop},
    {Anomaly::kBadIpHeaderLength, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kIpTotalLengthLong, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kIpTotalLengthShort, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kUnknownIpProtocol, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kBadIpChecksum, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kInvalidIpOptions, OsAction::kDeliver, OsAction::kDeliver,
     OsAction::kDrop},
    {Anomaly::kDeprecatedIpOptions, OsAction::kDeliver, OsAction::kDeliver,
     OsAction::kDeliver},
    {Anomaly::kTcpSeqOutOfWindow, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kBadTcpChecksum, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kTcpDataNoAck, OsAction::kDrop, OsAction::kDrop, OsAction::kDrop},
    {Anomaly::kBadTcpDataOffset, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kInvalidTcpFlagCombo, OsAction::kDrop, OsAction::kDrop,
     OsAction::kRespondRst},
    {Anomaly::kBadUdpChecksum, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kUdpLengthLong, OsAction::kDrop, OsAction::kDrop,
     OsAction::kDrop},
    {Anomaly::kUdpLengthShort, OsAction::kDeliverTruncated, OsAction::kDrop,
     OsAction::kDrop},
};

TEST(OsProfile, CleanPacketsDeliveredEverywhere) {
  EXPECT_EQ(OsProfile::linux_profile().decide(0), OsAction::kDeliver);
  EXPECT_EQ(OsProfile::macos_profile().decide(0), OsAction::kDeliver);
  EXPECT_EQ(OsProfile::windows_profile().decide(0), OsAction::kDeliver);
}

TEST(OsProfile, MatchesTable3ServerResponseColumns) {
  OsProfile lin = OsProfile::linux_profile();
  OsProfile mac = OsProfile::macos_profile();
  OsProfile win = OsProfile::windows_profile();
  for (const Row& row : kTable3ServerResponse) {
    auto a = anomaly_bit(row.anomaly);
    EXPECT_EQ(lin.decide(a), row.linux_action)
        << "Linux: " << netsim::describe_anomalies(a);
    EXPECT_EQ(mac.decide(a), row.macos_action)
        << "MacOS: " << netsim::describe_anomalies(a);
    EXPECT_EQ(win.decide(a), row.windows_action)
        << "Windows: " << netsim::describe_anomalies(a);
  }
}

TEST(OsProfile, DropWinsOverTruncationWhenBothPresent) {
  // A short-length UDP packet that ALSO has a bad checksum is dropped even
  // on Linux.
  auto a = anomaly_bit(Anomaly::kUdpLengthShort) |
           anomaly_bit(Anomaly::kBadUdpChecksum);
  EXPECT_EQ(OsProfile::linux_profile().decide(a), OsAction::kDrop);
}

TEST(OsProfile, FragmentsAreNotAnOsAnomaly) {
  auto a = anomaly_bit(Anomaly::kIpFragment);
  EXPECT_EQ(OsProfile::linux_profile().decide(a), OsAction::kDeliver);
  EXPECT_EQ(OsProfile::windows_profile().decide(a), OsAction::kDeliver);
}

}  // namespace
}  // namespace liberate::stack
