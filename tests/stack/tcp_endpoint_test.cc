#include "stack/tcp_endpoint.h"

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::stack {
namespace {

using namespace netsim;

// A two-host testbed over a configurable path.
struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;

  explicit Rig(OsProfile server_os = OsProfile::linux_profile())
      : client(net.client_port(), ip_addr("10.0.0.1"),
               OsProfile::linux_profile()),
        server(net.server_port(), ip_addr("10.9.9.9"), std::move(server_os)) {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

TEST(TcpEndpoint, HandshakeEstablishesBothSides) {
  Rig rig;
  TcpConnection* accepted = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) { accepted = &c; });
  bool client_established = false;
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { client_established = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(client_established);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(accepted->state(), TcpConnection::State::kEstablished);
}

TEST(TcpEndpoint, SynToClosedPortGetsRst) {
  Rig rig;
  bool reset = false;
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 81);
  conn.on_reset([&] { reset = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(conn.was_reset());
}

TEST(TcpEndpoint, TransfersDataBothWays) {
  Rig rig;
  std::string server_got, client_got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView data) {
      server_got += to_string(data);
      if (server_got == "ping") pc->send(std::string_view("pong"));
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_data([&](BytesView data) { client_got += to_string(data); });
  conn.on_established([&] { conn.send(std::string_view("ping")); });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(TcpEndpoint, LargeTransferSegmentsAndDeliversInOrder) {
  Rig rig;
  Rng rng(42);
  Bytes blob = rng.bytes(300 * 1024);  // 300 KB: many MSS-sized segments
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
}

TEST(TcpEndpoint, RetransmitsThroughLossyQueue) {
  Rig rig;
  // Tight bandwidth + tiny queue: forces drops and hence retransmissions.
  rig.net.emplace<BandwidthElement>(200'000.0, 4500);
  Rng rng(7);
  Bytes blob = rng.bytes(100 * 1024);
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received, blob);
  EXPECT_GT(conn.retransmissions(), 0u);
}

TEST(TcpEndpoint, GracefulCloseBothSides) {
  Rig rig;
  bool server_closed = false, client_closed = false;
  TcpConnection* srv = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    srv = &c;
    c.on_closed([&] { server_closed = true; });
    c.on_data([&, pc = &c](BytesView) { pc->close(); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_closed([&] { client_closed = true; });
  conn.on_established([&] {
    conn.send(std::string_view("bye"));
    conn.close();
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(conn.was_reset());
}

TEST(TcpEndpoint, AbortSendsRstToPeer) {
  Rig rig;
  bool server_reset = false;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_reset([&] { server_reset = true; });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.abort(); });
  rig.loop.run_until_idle();
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(TcpEndpoint, OutOfWindowSegmentIgnored) {
  Rig rig;
  std::string server_got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) { server_got += to_string(data); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    // Craft a raw in-connection segment with a wildly wrong sequence number
    // carrying "EVIL", then send real data normally.
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0xdead0000;  // far outside the window
    h.ack = 0;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("EVIL")));
    conn.send(std::string_view("good"));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "good");
}

TEST(TcpEndpoint, DuplicateSegmentsDeliveredOnce) {
  Rig rig;
  std::string server_got;
  TcpConnection* cl = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) { server_got += to_string(data); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  cl = &conn;
  conn.on_established([&] {
    cl->send(std::string_view("once"));
    // Duplicate the exact bytes at the raw level (simulates duplicated
    // delivery, e.g. a retransmission racing the original).
    TcpHeader h;
    h.src_port = cl->tuple().src_port;
    h.dst_port = 80;
    h.seq = 100001;  // first data byte of the client's ISS=100000 flow
    h.ack = 0;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("once")));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "once");
}

TEST(TcpEndpoint, WindowsServerRstsOnInvalidFlagCombo) {
  Rig rig(OsProfile::windows_profile());
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  bool reset = false;
  conn.on_reset([&] { reset = true; });
  conn.on_established([&] {
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0;
    h.flags = TcpFlags::kSyn | TcpFlags::kFin;  // nonsense
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("junk")));
  });
  rig.loop.run_until_idle();
  // The Windows host answered with a RST; note 6 in Table 3 — this can kill
  // the evaded connection. Our client stack accepts it (in window via seq 0
  // handling? no: RSTs must be in-window) — the observable effect here is
  // just that the server sent one.
  EXPECT_GE(rig.server.rsts_sent(), 1u);
  (void)reset;
}

TEST(TcpEndpoint, LinuxServerSilentlyDropsInvalidFlagCombo) {
  Rig rig(OsProfile::linux_profile());
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0;
    h.flags = 0;  // null flags
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("junk")));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.server.rsts_sent(), 0u);
  EXPECT_GE(rig.server.dropped_by_os(), 1u);
}

// Property sweep: transfer sizes including boundary cases around MSS.
class TcpTransfer : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpTransfer, DeliversExactly) {
  Rig rig;
  Rng rng(GetParam() + 1);
  Bytes blob = rng.bytes(GetParam());
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received, blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransfer,
                         ::testing::Values(0, 1, 1399, 1400, 1401, 2800, 4096,
                                           65536, 131072));

// --- Robustness regressions (issue 4) --------------------------------------

// A scripted raw peer: the Host under test talks to a recorder, so we can
// hand-craft the peer's sequence numbers (the Host's own ISS is fixed).
struct RawPeerRig {
  EventLoop loop;
  Network net{loop};
  struct Recorder : HostIface {
    std::vector<Bytes> received;
    void receive(Bytes datagram) override {
      received.push_back(std::move(datagram));
    }
  } peer;
  Host server;

  RawPeerRig()
      : server(net.server_port(), ip_addr("10.9.9.9"),
               OsProfile::linux_profile()) {
    net.attach_client(&peer);
    net.attach_server(&server);
  }

  void inject(std::uint32_t seq, std::uint32_t ack, std::uint8_t flags,
              BytesView payload = {}) {
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    TcpHeader tcp;
    tcp.src_port = 5555;
    tcp.dst_port = 80;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = flags;
    net.send_from_client(make_tcp_datagram(ip, tcp, payload));
    // Bounded run: a scripted peer never ACKs the server's SYN-ACK promptly,
    // and the retransmit timer rearms forever — run_until_idle would spin.
    loop.run_for(milliseconds(50));
  }

  // Completes a handshake with the given client ISN; returns the server's
  // ISS (parsed off its SYN-ACK on the wire).
  std::uint32_t handshake(std::uint32_t isn) {
    inject(isn, 0, TcpFlags::kSyn);
    std::uint32_t server_iss = 0;
    bool found = false;
    for (const Bytes& d : peer.received) {
      auto pkt = parse_packet(d);
      if (pkt.ok() && pkt.value().tcp &&
          (pkt.value().tcp->flags & TcpFlags::kSyn) &&
          (pkt.value().tcp->flags & TcpFlags::kAck)) {
        server_iss = pkt.value().tcp->seq;
        found = true;
      }
    }
    EXPECT_TRUE(found) << "no SYN-ACK on the wire";
    inject(isn + 1, server_iss + 1, TcpFlags::kAck);
    return server_iss;
  }
};

// Regression for the out-of-order map's raw-uint32 ordering: a flow whose
// ISN sits just below 2^32 sends its stream across the wrap, out of order.
// Post-wrap sequence numbers are numerically *smaller* than pre-wrap ones,
// so any raw comparison misorders the buffered segments; the offset-from-ISN
// comparator must still deliver the application bytes exactly in order.
TEST(TcpEndpointRobustness, OutOfOrderDeliveryAcrossSequenceWrap) {
  RawPeerRig rig;
  std::string got;
  stack::TcpConnection* accepted = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    accepted = &c;
    c.on_data([&](BytesView data) { got += to_string(data); });
  });

  const std::uint32_t isn = 0xFFFFFFF6;  // first data byte at 0xFFFFFFF7
  std::uint32_t server_iss = rig.handshake(isn);
  ASSERT_NE(accepted, nullptr);

  const std::string data = "ABCDEFGHIJKLMNOPQRST";  // 20 bytes, wraps after 9
  auto seg = [&](std::size_t lo, std::size_t hi) {
    rig.inject(isn + 1 + static_cast<std::uint32_t>(lo), server_iss + 1,
               TcpFlags::kAck | TcpFlags::kPsh,
               BytesView(to_bytes(std::string_view(data).substr(lo, hi - lo))));
  };
  // Arrival order: both post-gap segments first (one past the wrap, one
  // before it), then the opener. The buffered pair straddles the wrap.
  seg(9, 20);  // seq 0x00000000 — numerically smallest, logically last
  seg(5, 9);   // seq 0xFFFFFFFC — pre-wrap tail
  EXPECT_EQ(got, "");  // nothing deliverable yet
  EXPECT_EQ(accepted->out_of_order_bytes(), 15u);
  seg(0, 5);   // seq 0xFFFFFFF7 closes the gap
  EXPECT_EQ(got, data);
  EXPECT_EQ(accepted->out_of_order_bytes(), 0u);
}

// The out-of-order buffer is bounded: a crafted flood past a gap that never
// closes must cap at kMaxOutOfOrderBytes instead of pinning memory forever.
TEST(TcpEndpointRobustness, OutOfOrderBufferIsBounded) {
  RawPeerRig rig;
  stack::TcpConnection* accepted = nullptr;
  std::size_t delivered = 0;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    accepted = &c;
    c.on_data([&](BytesView data) { delivered += data.size(); });
  });
  std::uint32_t server_iss = rig.handshake(700000);
  ASSERT_NE(accepted, nullptr);

  // 300 overlapping 1 KB segments at consecutive sequence numbers, all past
  // the 1-byte gap at rcv_nxt and all inside the receive window, so each one
  // is individually bufferable — 300 KB offered against a 256 KB cap.
  Bytes chunk(1024, 0x5A);
  const std::size_t kSegments = 300;
  for (std::size_t i = 0; i < kSegments; ++i) {
    rig.inject(700001 + 1 + static_cast<std::uint32_t>(i), server_iss + 1,
               TcpFlags::kAck, chunk);
    ASSERT_LE(accepted->out_of_order_bytes(),
              TcpConnection::kMaxOutOfOrderBytes);
  }
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(accepted->out_of_order_bytes(), TcpConnection::kMaxOutOfOrderBytes);
}

}  // namespace
}  // namespace liberate::stack
