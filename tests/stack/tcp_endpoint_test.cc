#include "stack/tcp_endpoint.h"

#include <gtest/gtest.h>

#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::stack {
namespace {

using namespace netsim;

// A two-host testbed over a configurable path.
struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;

  explicit Rig(OsProfile server_os = OsProfile::linux_profile())
      : client(net.client_port(), ip_addr("10.0.0.1"),
               OsProfile::linux_profile()),
        server(net.server_port(), ip_addr("10.9.9.9"), std::move(server_os)) {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

TEST(TcpEndpoint, HandshakeEstablishesBothSides) {
  Rig rig;
  TcpConnection* accepted = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) { accepted = &c; });
  bool client_established = false;
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { client_established = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(client_established);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(conn.state(), TcpConnection::State::kEstablished);
  EXPECT_EQ(accepted->state(), TcpConnection::State::kEstablished);
}

TEST(TcpEndpoint, SynToClosedPortGetsRst) {
  Rig rig;
  bool reset = false;
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 81);
  conn.on_reset([&] { reset = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(reset);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(conn.was_reset());
}

TEST(TcpEndpoint, TransfersDataBothWays) {
  Rig rig;
  std::string server_got, client_got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView data) {
      server_got += to_string(data);
      if (server_got == "ping") pc->send(std::string_view("pong"));
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_data([&](BytesView data) { client_got += to_string(data); });
  conn.on_established([&] { conn.send(std::string_view("ping")); });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "ping");
  EXPECT_EQ(client_got, "pong");
}

TEST(TcpEndpoint, LargeTransferSegmentsAndDeliversInOrder) {
  Rig rig;
  Rng rng(42);
  Bytes blob = rng.bytes(300 * 1024);  // 300 KB: many MSS-sized segments
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received.size(), blob.size());
  EXPECT_EQ(received, blob);
}

TEST(TcpEndpoint, RetransmitsThroughLossyQueue) {
  Rig rig;
  // Tight bandwidth + tiny queue: forces drops and hence retransmissions.
  rig.net.emplace<BandwidthElement>(200'000.0, 4500);
  Rng rng(7);
  Bytes blob = rng.bytes(100 * 1024);
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received, blob);
  EXPECT_GT(conn.retransmissions(), 0u);
}

TEST(TcpEndpoint, GracefulCloseBothSides) {
  Rig rig;
  bool server_closed = false, client_closed = false;
  TcpConnection* srv = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    srv = &c;
    c.on_closed([&] { server_closed = true; });
    c.on_data([&, pc = &c](BytesView) { pc->close(); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_closed([&] { client_closed = true; });
  conn.on_established([&] {
    conn.send(std::string_view("bye"));
    conn.close();
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  ASSERT_NE(srv, nullptr);
  EXPECT_EQ(srv->state(), TcpConnection::State::kClosed);
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_FALSE(conn.was_reset());
}

TEST(TcpEndpoint, AbortSendsRstToPeer) {
  Rig rig;
  bool server_reset = false;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_reset([&] { server_reset = true; });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.abort(); });
  rig.loop.run_until_idle();
  EXPECT_TRUE(server_reset);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(TcpEndpoint, OutOfWindowSegmentIgnored) {
  Rig rig;
  std::string server_got;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) { server_got += to_string(data); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    // Craft a raw in-connection segment with a wildly wrong sequence number
    // carrying "EVIL", then send real data normally.
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0xdead0000;  // far outside the window
    h.ack = 0;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("EVIL")));
    conn.send(std::string_view("good"));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "good");
}

TEST(TcpEndpoint, DuplicateSegmentsDeliveredOnce) {
  Rig rig;
  std::string server_got;
  TcpConnection* cl = nullptr;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) { server_got += to_string(data); });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  cl = &conn;
  conn.on_established([&] {
    cl->send(std::string_view("once"));
    // Duplicate the exact bytes at the raw level (simulates duplicated
    // delivery, e.g. a retransmission racing the original).
    TcpHeader h;
    h.src_port = cl->tuple().src_port;
    h.dst_port = 80;
    h.seq = 100001;  // first data byte of the client's ISS=100000 flow
    h.ack = 0;
    h.flags = TcpFlags::kAck | TcpFlags::kPsh;
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("once")));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(server_got, "once");
}

TEST(TcpEndpoint, WindowsServerRstsOnInvalidFlagCombo) {
  Rig rig(OsProfile::windows_profile());
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  bool reset = false;
  conn.on_reset([&] { reset = true; });
  conn.on_established([&] {
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0;
    h.flags = TcpFlags::kSyn | TcpFlags::kFin;  // nonsense
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("junk")));
  });
  rig.loop.run_until_idle();
  // The Windows host answered with a RST; note 6 in Table 3 — this can kill
  // the evaded connection. Our client stack accepts it (in window via seq 0
  // handling? no: RSTs must be in-window) — the observable effect here is
  // just that the server sent one.
  EXPECT_GE(rig.server.rsts_sent(), 1u);
  (void)reset;
}

TEST(TcpEndpoint, LinuxServerSilentlyDropsInvalidFlagCombo) {
  Rig rig(OsProfile::linux_profile());
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    TcpHeader h;
    h.src_port = conn.tuple().src_port;
    h.dst_port = 80;
    h.seq = 0;
    h.flags = 0;  // null flags
    Ipv4Header ip;
    ip.src = ip_addr("10.0.0.1");
    ip.dst = ip_addr("10.9.9.9");
    rig.client.send_raw(make_tcp_datagram(ip, h, to_bytes("junk")));
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.server.rsts_sent(), 0u);
  EXPECT_GE(rig.server.dropped_by_os(), 1u);
}

// Property sweep: transfer sizes including boundary cases around MSS.
class TcpTransfer : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TcpTransfer, DeliversExactly) {
  Rig rig;
  Rng rng(GetParam() + 1);
  Bytes blob = rng.bytes(GetParam());
  Bytes received;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView data) {
      received.insert(received.end(), data.begin(), data.end());
    });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(BytesView(blob)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(received, blob);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TcpTransfer,
                         ::testing::Values(0, 1, 1399, 1400, 1401, 2800, 4096,
                                           65536, 131072));

}  // namespace
}  // namespace liberate::stack
