// Stress/edge coverage for the TCP endpoint: simultaneous bidirectional
// bulk, many concurrent connections, interleaved close patterns.
#include <gtest/gtest.h>

#include "netsim/lossy.h"
#include "netsim/network.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::stack {
namespace {

using namespace netsim;

struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;

  Rig()
      : client(net.client_port(), ip_addr("10.0.0.1"),
               OsProfile::linux_profile()),
        server(net.server_port(), ip_addr("10.9.9.9"),
               OsProfile::linux_profile()) {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

TEST(TcpStress, SimultaneousBidirectionalBulk) {
  Rig rig;
  Rng rng(21);
  Bytes up = rng.bytes(96 * 1024);
  Bytes down = rng.bytes(96 * 1024);
  Bytes got_up, got_down;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) {
      got_up.insert(got_up.end(), d.begin(), d.end());
    });
    c.send(BytesView(down));  // server pushes immediately, full duplex
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_data([&](BytesView d) {
    got_down.insert(got_down.end(), d.begin(), d.end());
  });
  conn.on_established([&] { conn.send(BytesView(up)); });
  rig.loop.run_until_idle();
  EXPECT_EQ(got_up, up);
  EXPECT_EQ(got_down, down);
}

TEST(TcpStress, TenConcurrentConnectionsStayIsolated) {
  Rig rig;
  std::map<std::uint16_t, std::string> received;  // by server-side src port
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    std::uint16_t peer = c.tuple().dst_port;
    c.on_data([&received, peer](BytesView d) {
      received[peer] += to_string(d);
    });
  });
  std::vector<TcpConnection*> conns;
  for (int i = 0; i < 10; ++i) {
    auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
    conns.push_back(&conn);
    std::string msg = "hello from connection " + std::to_string(i);
    conn.on_established([&conn, msg] { conn.send(std::string_view(msg)); });
  }
  rig.loop.run_until_idle();
  ASSERT_EQ(received.size(), 10u);
  int idx = 0;
  for (auto* c : conns) {
    std::string expected = "hello from connection " + std::to_string(idx++);
    EXPECT_EQ(received[c->tuple().src_port], expected);
  }
}

TEST(TcpStress, DataThenImmediateCloseDeliversEverything) {
  Rig rig;
  Rng rng(31);
  Bytes blob = rng.bytes(200 * 1024);  // multiple windows worth
  Bytes got;
  bool closed = false;
  rig.server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&](BytesView d) { got.insert(got.end(), d.begin(), d.end()); });
    c.on_closed([&] { closed = true; });
  });
  auto& conn = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] {
    conn.send(BytesView(blob));
    conn.close();  // FIN must queue behind all buffered data
  });
  rig.loop.run_until_idle();
  EXPECT_EQ(got, blob);
  // Peer saw our FIN only after every byte; its own close completes too.
  EXPECT_EQ(conn.state(), TcpConnection::State::kFinWait);
  (void)closed;  // server stays in CLOSE_WAIT until it closes; not required
}

TEST(TcpStress, CloseUnderLossStillCompletes) {
  EventLoop loop;
  Network net{loop};
  net.emplace<LossyElement>(0.1, 77);
  Host client(net.client_port(), ip_addr("10.0.0.1"),
              OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);

  bool client_closed = false;
  bool server_closed = false;
  std::string got;
  server.tcp_listen(80, [&](TcpConnection& c) {
    c.on_data([&, pc = &c](BytesView d) {
      got += to_string(d);
      pc->close();
    });
    c.on_closed([&] { server_closed = true; });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_closed([&] { client_closed = true; });
  conn.on_established([&] {
    conn.send(std::string_view("final words"));
    conn.close();
  });
  loop.run_until_idle();
  EXPECT_EQ(got, "final words");
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
}

TEST(TcpStress, ListenerRemovalRefusesNewConnections) {
  Rig rig;
  rig.server.tcp_listen(80, [](TcpConnection&) {});
  bool first_ok = false;
  auto& c1 = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  c1.on_established([&] { first_ok = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(first_ok);

  rig.server.tcp_unlisten(80);
  bool second_reset = false;
  auto& c2 = rig.client.tcp_connect(ip_addr("10.9.9.9"), 80);
  c2.on_reset([&] { second_reset = true; });
  rig.loop.run_until_idle();
  EXPECT_TRUE(second_reset);
}

}  // namespace
}  // namespace liberate::stack
