// Host-level tests: UDP sockets, raw tap, fragment handling, ICMP callback.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "stack/host.h"

namespace liberate::stack {
namespace {

using namespace netsim;

struct Rig {
  EventLoop loop;
  Network net{loop};
  Host client;
  Host server;

  explicit Rig(OsProfile server_os = OsProfile::linux_profile())
      : client(net.client_port(), ip_addr("10.0.0.1"),
               OsProfile::linux_profile()),
        server(net.server_port(), ip_addr("10.9.9.9"), std::move(server_os)) {
    net.attach_client(&client);
    net.attach_server(&server);
  }
};

TEST(Host, UdpEchoRoundTrip) {
  Rig rig;
  auto& srv = rig.server.udp_bind(3478);
  srv.on_receive([&](const UdpSocket::Incoming& in) {
    srv.send_to(in.src_ip, in.src_port, BytesView(in.payload));
  });
  auto& cli = rig.client.udp_bind(5555);
  std::string got;
  cli.on_receive(
      [&](const UdpSocket::Incoming& in) { got = to_string(BytesView(in.payload)); });
  cli.send_to(ip_addr("10.9.9.9"), 3478, BytesView(to_bytes("echo me")));
  rig.loop.run_until_idle();
  EXPECT_EQ(got, "echo me");
  EXPECT_EQ(srv.datagrams_received(), 1u);
}

TEST(Host, UdpToUnboundPortIgnored) {
  Rig rig;
  auto& cli = rig.client.udp_bind(5555);
  cli.send_to(ip_addr("10.9.9.9"), 9999, BytesView(to_bytes("void")));
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.server.raw_received().size(), 1u);  // reached the wire
  EXPECT_EQ(rig.client.raw_received().size(), 0u);  // no response
}

TEST(Host, RawTapSeesPacketsTheOsDrops) {
  Rig rig;
  rig.server.udp_bind(53);
  // Craft a UDP packet with a bad checksum: the OS drops it, the tap sees it.
  UdpHeader u;
  u.src_port = 1;
  u.dst_port = 53;
  u.checksum_override = 0xbad1;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  rig.client.send_raw(make_udp_datagram(ip, u, to_bytes("junk")));
  rig.loop.run_until_idle();
  EXPECT_EQ(rig.server.raw_received().size(), 1u);
  EXPECT_EQ(rig.server.dropped_by_os(), 1u);
  EXPECT_EQ(rig.server.udp_bind(53).datagrams_received(), 0u);
}

TEST(Host, LinuxDeliversTruncatedShortUdp) {
  Rig rig(OsProfile::linux_profile());
  auto& srv = rig.server.udp_bind(53);
  UdpSocket::Incoming got{};
  srv.on_receive([&](const UdpSocket::Incoming& in) { got = in; });

  UdpHeader u;
  u.src_port = 1;
  u.dst_port = 53;
  u.length_override = 8 + 2;  // declares only 2 payload bytes
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  rig.client.send_raw(make_udp_datagram(ip, u, to_bytes("abcdef")));
  rig.loop.run_until_idle();
  EXPECT_TRUE(got.truncated);
  EXPECT_EQ(to_string(BytesView(got.payload)), "ab");
}

TEST(Host, MacosDropsShortUdp) {
  Rig rig(OsProfile::macos_profile());
  auto& srv = rig.server.udp_bind(53);
  UdpHeader u;
  u.src_port = 1;
  u.dst_port = 53;
  u.length_override = 10;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  rig.client.send_raw(make_udp_datagram(ip, u, to_bytes("abcdef")));
  rig.loop.run_until_idle();
  EXPECT_EQ(srv.datagrams_received(), 0u);
  EXPECT_EQ(rig.server.dropped_by_os(), 1u);
}

TEST(Host, FragmentedUdpReassemblesBeforeDelivery) {
  Rig rig;
  auto& srv = rig.server.udp_bind(4000);
  Bytes got;
  srv.on_receive([&](const UdpSocket::Incoming& in) { got = in.payload; });

  Bytes payload(600, 0x5a);
  UdpHeader u;
  u.src_port = 2;
  u.dst_port = 4000;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  ip.identification = 77;
  Bytes whole = make_udp_datagram(ip, u, payload);
  for (auto& f : fragment_datagram(whole, 3)) {
    rig.client.send_raw(std::move(f));
  }
  rig.loop.run_until_idle();
  EXPECT_EQ(got, payload);
}

TEST(Host, IcmpCallbackFires) {
  Rig rig;
  // Put 2 routers in the path, then send a TTL=1 packet.
  // (Re-create the rig with routers: elements must exist before sending.)
  EventLoop loop;
  Network net{loop};
  Host client(net.client_port(), ip_addr("10.0.0.1"),
              OsProfile::linux_profile());
  Host server(net.server_port(), ip_addr("10.9.9.9"),
              OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  net.emplace<RouterHop>(ip_addr("10.1.0.1"));
  net.emplace<RouterHop>(ip_addr("10.1.0.2"));

  std::uint32_t icmp_from = 0;
  IcmpType type{};
  client.on_icmp([&](const PacketView& pkt, const IcmpMessage& msg) {
    icmp_from = pkt.ip.src;
    type = msg.type;
  });

  TcpHeader t;
  t.src_port = 1;
  t.dst_port = 80;
  t.flags = TcpFlags::kSyn;
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  ip.ttl = 1;
  client.send_raw(make_tcp_datagram(ip, t, {}));
  loop.run_until_idle();
  EXPECT_EQ(icmp_from, ip_addr("10.1.0.1"));
  EXPECT_EQ(type, IcmpType::kTimeExceeded);
}

}  // namespace
}  // namespace liberate::stack
