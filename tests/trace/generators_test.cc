#include "trace/generators.h"

#include <gtest/gtest.h>

#include "dpi/http_parser.h"
#include "dpi/stun_parser.h"
#include "dpi/tls_parser.h"

namespace liberate::trace {
namespace {

TEST(Generators, HttpTraceParsesAsHttp) {
  auto t = amazon_video_trace(64 * 1024);
  ASSERT_GE(t.messages.size(), 2u);
  EXPECT_EQ(t.messages[0].sender, Sender::kClient);
  auto req = dpi::parse_http_request(BytesView(t.messages[0].payload));
  ASSERT_TRUE(req.has_value());
  EXPECT_EQ(req->host().value(), "d25xi40x97liuc.cloudfront.net");

  auto resp = dpi::parse_http_response(BytesView(t.messages[1].payload));
  ASSERT_TRUE(resp.has_value());
  EXPECT_EQ(resp->status, 200);
  EXPECT_EQ(resp->content_type().value(), "video/mp4");
}

TEST(Generators, HttpBodySizeHonored) {
  std::size_t want = 100 * 1024;
  auto t = amazon_video_trace(want);
  std::size_t body = 0;
  for (std::size_t i = 2; i < t.messages.size(); ++i) {
    body += t.messages[i].payload.size();
  }
  EXPECT_EQ(body, want);
}

TEST(Generators, TlsTraceCarriesSni) {
  auto t = youtube_tls_trace(32 * 1024);
  ASSERT_GE(t.messages.size(), 2u);
  EXPECT_EQ(t.server_port, 443);
  auto sni = dpi::extract_sni(BytesView(t.messages[0].payload));
  ASSERT_TRUE(sni.has_value());
  EXPECT_NE(sni->find(".googlevideo.com"), std::string::npos);
}

TEST(Generators, SkypeFirstPacketCarriesServiceQualityAttr) {
  auto t = make_skype_trace(SkypeTraceOptions{});
  EXPECT_EQ(t.transport, Transport::kUdp);
  ASSERT_GE(t.messages.size(), 3u);
  EXPECT_EQ(t.messages[0].sender, Sender::kClient);
  auto stun = dpi::parse_stun(BytesView(t.messages[0].payload));
  ASSERT_TRUE(stun.has_value());
  EXPECT_TRUE(stun->has_attribute(dpi::kStunAttrMsServiceQuality));
  // Later voice packets are NOT STUN.
  EXPECT_FALSE(dpi::parse_stun(BytesView(t.messages[2].payload)).has_value());
}

TEST(Generators, BlockedSiteTracesCarryKeywords) {
  auto econ = economist_trace();
  std::string req = to_string(BytesView(econ.messages[0].payload));
  EXPECT_EQ(req.rfind("GET ", 0), 0u);
  EXPECT_NE(req.find("economist.com"), std::string::npos);

  auto fb = facebook_trace();
  std::string req2 = to_string(BytesView(fb.messages[0].payload));
  EXPECT_NE(req2.find("facebook.com"), std::string::npos);
}

TEST(Generators, PlainTraceMatchesNoKnownKeyword) {
  auto t = plain_web_trace();
  std::string req = to_string(BytesView(t.messages[0].payload));
  for (const char* kw : {"economist", "facebook", "primevideo", "spotify",
                         "googlevideo", "cloudfront", "twitter"}) {
    EXPECT_EQ(req.find(kw), std::string::npos) << kw;
  }
}

TEST(Generators, GenericUdpNotStun) {
  auto t = make_generic_udp_trace();
  for (const auto& m : t.messages) {
    EXPECT_FALSE(dpi::parse_stun(BytesView(m.payload)).has_value());
  }
}

}  // namespace
}  // namespace liberate::trace
