#include "trace/pcap.h"

#include <gtest/gtest.h>

#include "netsim/packet.h"
#include "stack/host.h"
#include "util/rng.h"

namespace liberate::trace {
namespace {

using namespace netsim;

PcapRecord record_at(TimePoint t, std::size_t payload) {
  Rng rng(t + 1);
  Ipv4Header ip;
  ip.src = ip_addr("10.0.0.1");
  ip.dst = ip_addr("10.9.9.9");
  TcpHeader tcp;
  tcp.flags = TcpFlags::kAck;
  return PcapRecord{t, make_tcp_datagram(ip, tcp, rng.bytes(payload))};
}

TEST(Pcap, RoundTripsRecords) {
  std::vector<PcapRecord> records = {record_at(seconds(1) + 250, 40),
                                     record_at(seconds(2), 0),
                                     record_at(seconds(3) + 999999, 1400)};
  Bytes file = write_pcap(records);
  auto back = read_pcap(file);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(back.value()[i].at, records[i].at) << i;
    EXPECT_EQ(back.value()[i].datagram, records[i].datagram) << i;
  }
}

TEST(Pcap, GlobalHeaderFields) {
  Bytes file = write_pcap({});
  ASSERT_EQ(file.size(), 24u);
  // magic 0xa1b2c3d4 little-endian
  EXPECT_EQ(file[0], 0xd4);
  EXPECT_EQ(file[1], 0xc3);
  EXPECT_EQ(file[2], 0xb2);
  EXPECT_EQ(file[3], 0xa1);
  // linktype 101 (RAW) at offset 20
  EXPECT_EQ(file[20], 101);
}

TEST(Pcap, RejectsGarbage) {
  EXPECT_FALSE(read_pcap(BytesView(to_bytes("not a pcap"))).ok());
  Bytes file = write_pcap({record_at(0, 100)});
  file.resize(file.size() - 10);  // truncate mid-record
  EXPECT_FALSE(read_pcap(file).ok());
}

TEST(Pcap, TapExportCapturesLiveTraffic) {
  EventLoop loop;
  Network net{loop};
  auto& tap = net.emplace<TapElement>("wire");
  stack::Host client(net.client_port(), ip_addr("10.0.0.1"),
                     stack::OsProfile::linux_profile());
  stack::Host server(net.server_port(), ip_addr("10.9.9.9"),
                     stack::OsProfile::linux_profile());
  net.attach_client(&client);
  net.attach_server(&server);
  server.tcp_listen(80, [](stack::TcpConnection& c) {
    c.on_data([&c](BytesView) { c.send(std::string_view("pong")); });
  });
  auto& conn = client.tcp_connect(ip_addr("10.9.9.9"), 80);
  conn.on_established([&] { conn.send(std::string_view("ping")); });
  loop.run_until_idle();

  Bytes file = tap_to_pcap(tap);
  auto records = read_pcap(file);
  ASSERT_TRUE(records.ok());
  // Handshake + data + ACKs: at least 5 packets, all parseable IPv4.
  EXPECT_GE(records.value().size(), 5u);
  bool saw_ping = false;
  for (const auto& r : records.value()) {
    auto p = parse_packet(r.datagram);
    ASSERT_TRUE(p.ok());
    if (to_string(p.value().app_payload()) == "ping") saw_ping = true;
  }
  EXPECT_TRUE(saw_ping);
}

}  // namespace
}  // namespace liberate::trace
