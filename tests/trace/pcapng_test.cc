// pcapng writer/reader: the annotated-capture format must round-trip
// byte-exactly (headers, timestamps, per-packet comments) so Wireshark and
// our own reader agree on what was captured.
#include "trace/pcapng.h"

#include <gtest/gtest.h>

namespace liberate::trace {
namespace {

std::vector<PcapngRecord> sample_records() {
  std::vector<PcapngRecord> recs;
  recs.push_back({1000, Bytes{0x45, 0x00, 0x00, 0x14, 0xAA}, "first packet"});
  // Timestamp above 32 bits exercises the high/low split.
  recs.push_back({(std::uint64_t{7} << 32) | 42,
                  Bytes{0x45, 0x00, 0x00, 0x18, 0x01, 0x02, 0x03},
                  "split of pkt 77bb.. by tcp-segmentation"});
  recs.push_back({2000, Bytes{0x45, 0x01}, ""});  // no comment
  return recs;
}

TEST(Pcapng, RoundTripPreservesEverything) {
  std::vector<PcapngRecord> in = sample_records();
  Bytes wire = write_pcapng(in);

  auto out = read_pcapng(wire);
  ASSERT_TRUE(out.ok()) << out.error().message;
  ASSERT_EQ(out.value().size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.value()[i].at, in[i].at) << "record " << i;
    EXPECT_EQ(out.value()[i].datagram, in[i].datagram) << "record " << i;
    EXPECT_EQ(out.value()[i].comment, in[i].comment) << "record " << i;
  }

  // Re-serializing the parse must reproduce the stream byte-exactly.
  EXPECT_EQ(write_pcapng(out.value()), wire);
}

TEST(Pcapng, EmptyCaptureIsJustHeaders) {
  Bytes wire = write_pcapng({});
  auto out = read_pcapng(wire);
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_TRUE(out.value().empty());
}

TEST(Pcapng, HeaderStructure) {
  Bytes wire = write_pcapng(sample_records());
  // Section Header Block type, then total length, then byte-order magic.
  ASSERT_GE(wire.size(), 12u);
  EXPECT_EQ(wire[0], 0x0a);  // 0x0a0d0d0a little-endian on the wire
  EXPECT_EQ(wire[1], 0x0d);
  EXPECT_EQ(wire[2], 0x0d);
  EXPECT_EQ(wire[3], 0x0a);
  EXPECT_EQ(wire[8], 0x4d);  // 0x1a2b3c4d little-endian
  EXPECT_EQ(wire[9], 0x3c);
  EXPECT_EQ(wire[10], 0x2b);
  EXPECT_EQ(wire[11], 0x1a);
  // Every block length is 32-bit aligned; total stream consumed exactly.
  std::size_t off = 0;
  int blocks = 0;
  while (off + 12 <= wire.size()) {
    std::uint32_t total = static_cast<std::uint32_t>(wire[off + 4]) |
                          (static_cast<std::uint32_t>(wire[off + 5]) << 8) |
                          (static_cast<std::uint32_t>(wire[off + 6]) << 16) |
                          (static_cast<std::uint32_t>(wire[off + 7]) << 24);
    EXPECT_EQ(total % 4, 0u);
    off += total;
    ++blocks;
  }
  EXPECT_EQ(off, wire.size());
  EXPECT_EQ(blocks, 2 + 3);  // SHB + IDB + one EPB per record
}

TEST(Pcapng, RejectsCorruptStreams) {
  EXPECT_FALSE(read_pcapng(Bytes{}).ok());
  EXPECT_FALSE(read_pcapng(Bytes{0x45, 0x00, 0x00}).ok());

  Bytes wire = write_pcapng(sample_records());
  Bytes bad_magic = wire;
  bad_magic[8] ^= 0xFF;
  EXPECT_FALSE(read_pcapng(bad_magic).ok());

  Bytes bad_len = wire;
  bad_len[4] ^= 0x01;  // SHB total length no longer matches trailer
  EXPECT_FALSE(read_pcapng(bad_len).ok());

  Bytes truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(read_pcapng(truncated).ok());
}

TEST(Pcapng, SkipsUnknownBlockTypes) {
  Bytes wire = write_pcapng(sample_records());
  // Append a minimal unknown block (type 0x0BAD, empty body): the reader
  // must skip it per the spec, not error.
  auto le32 = [](Bytes& out, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  le32(wire, 0x0BAD);
  le32(wire, 12);
  le32(wire, 12);
  auto out = read_pcapng(wire);
  ASSERT_TRUE(out.ok()) << out.error().message;
  EXPECT_EQ(out.value().size(), sample_records().size());
}

}  // namespace
}  // namespace liberate::trace
