#include "trace/trace.h"

#include <gtest/gtest.h>

#include "trace/generators.h"

namespace liberate::trace {
namespace {

TEST(Trace, BitInversionIsInvolutive) {
  auto t = economist_trace();
  auto inv = t.bit_inverted();
  ASSERT_EQ(inv.messages.size(), t.messages.size());
  for (std::size_t i = 0; i < t.messages.size(); ++i) {
    ASSERT_EQ(inv.messages[i].payload.size(), t.messages[i].payload.size());
    for (std::size_t j = 0; j < t.messages[i].payload.size(); ++j) {
      EXPECT_EQ(inv.messages[i].payload[j],
                static_cast<std::uint8_t>(~t.messages[i].payload[j]));
    }
  }
  auto back = inv.bit_inverted();
  for (std::size_t i = 0; i < t.messages.size(); ++i) {
    EXPECT_EQ(back.messages[i].payload, t.messages[i].payload);
  }
}

TEST(Trace, InvertedContainsNoKeyword) {
  auto inv = economist_trace().bit_inverted();
  std::string first = to_string(BytesView(inv.messages[0].payload));
  EXPECT_EQ(first.find("economist.com"), std::string::npos);
  EXPECT_EQ(first.find("GET"), std::string::npos);
}

TEST(Trace, SerializeDeserializeRoundTrip) {
  auto t = amazon_video_trace(32 * 1024);
  Bytes wire = serialize_trace(t);
  auto back = deserialize_trace(wire);
  EXPECT_EQ(back.app_name, t.app_name);
  EXPECT_EQ(back.transport, t.transport);
  EXPECT_EQ(back.server_port, t.server_port);
  ASSERT_EQ(back.messages.size(), t.messages.size());
  for (std::size_t i = 0; i < t.messages.size(); ++i) {
    EXPECT_EQ(back.messages[i].payload, t.messages[i].payload);
    EXPECT_EQ(back.messages[i].sender, t.messages[i].sender);
    EXPECT_EQ(back.messages[i].gap_us, t.messages[i].gap_us);
  }
}

TEST(Trace, DeserializeRejectsGarbage) {
  EXPECT_TRUE(deserialize_trace(BytesView(to_bytes("NOPE"))).app_name.empty());
  Bytes truncated = serialize_trace(economist_trace());
  truncated.resize(truncated.size() / 2);
  // Must not crash; partial result acceptable but name check guards use.
  (void)deserialize_trace(truncated);
}

TEST(Trace, ByteCounts) {
  auto t = economist_trace();
  EXPECT_GT(t.total_bytes(), t.client_bytes());
  EXPECT_EQ(t.client_messages(), 1u);
}

}  // namespace
}  // namespace liberate::trace
