// arena_test.cc — chunked bump allocator: slice stability across growth,
// recycling, and the two use-after-reset guards (generation stamps
// structurally, ASan poisoning when the sanitizer is present).
#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace liberate {
namespace {

Bytes pattern(std::size_t n, std::uint8_t seed) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>(seed + i * 13);
  }
  return b;
}

TEST(Arena, CopyRoundTrips) {
  Arena a;
  Bytes src = pattern(1500, 7);
  BytesView v = a.copy(BytesView(src));
  ASSERT_EQ(v.size(), src.size());
  EXPECT_TRUE(std::equal(v.begin(), v.end(), src.begin()));
  EXPECT_NE(v.data(), src.data());  // it really is a copy
}

TEST(Arena, EmptyCopyIsEmptyAndConsumesNothing) {
  Arena a;
  BytesView v = a.copy(BytesView{});
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(a.bytes_in_use(), 0u);
}

// The property std::vector cannot give: views handed out earlier survive
// later growth. A full round's worth of packet captures is written and every
// slice is verified after the arena has grown by many chunks.
TEST(Arena, SlicesStableAcrossGrowth) {
  Arena a(/*chunk_bytes=*/256);  // tiny chunks force frequent growth
  std::vector<Bytes> sources;
  std::vector<BytesView> views;
  for (int i = 0; i < 200; ++i) {
    sources.push_back(pattern(1 + (i * 37) % 400, static_cast<std::uint8_t>(i)));
    views.push_back(a.copy(BytesView(sources.back())));
  }
  EXPECT_GT(a.chunk_count(), 10u);
  for (std::size_t i = 0; i < views.size(); ++i) {
    ASSERT_EQ(views[i].size(), sources[i].size()) << "slice " << i;
    EXPECT_TRUE(std::equal(views[i].begin(), views[i].end(),
                           sources[i].begin()))
        << "slice " << i;
  }
}

TEST(Arena, OversizeAllocationGetsDedicatedChunk) {
  Arena a(/*chunk_bytes=*/128);
  Bytes small = pattern(64, 1);
  Bytes huge = pattern(64 * 1024, 2);
  BytesView vs = a.copy(BytesView(small));
  BytesView vh = a.copy(BytesView(huge));
  BytesView vs2 = a.copy(BytesView(small));
  EXPECT_TRUE(std::equal(vs.begin(), vs.end(), small.begin()));
  EXPECT_TRUE(std::equal(vh.begin(), vh.end(), huge.begin()));
  EXPECT_TRUE(std::equal(vs2.begin(), vs2.end(), small.begin()));
}

// Batch recycling: reset() must hand back the same chunks, so sustained
// round churn reaches a steady state with zero new reservations.
TEST(Arena, ResetRecyclesWithoutNewReservations) {
  Arena a(/*chunk_bytes=*/1024);
  auto fill = [&a] {
    Bytes src = pattern(300, 9);
    for (int i = 0; i < 20; ++i) a.copy(BytesView(src));
  };
  fill();
  a.reset();
  const std::size_t reserved_after_first_round = a.bytes_reserved();
  const std::size_t chunks_after_first_round = a.chunk_count();
  for (int round = 0; round < 50; ++round) {
    fill();
    a.reset();
  }
  EXPECT_EQ(a.bytes_reserved(), reserved_after_first_round);
  EXPECT_EQ(a.chunk_count(), chunks_after_first_round);
  EXPECT_EQ(a.bytes_in_use(), 0u);
}

TEST(Arena, GenerationGuardInvalidatesSlicesOnReset) {
  Arena a;
  Bytes src = pattern(100, 3);
  Arena::Slice s = a.copy_slice(BytesView(src));
  EXPECT_TRUE(s.valid(a));
  EXPECT_EQ(s.get(a).size(), src.size());
  a.reset();
  EXPECT_FALSE(s.valid(a));
  EXPECT_TRUE(s.get(a).empty());  // stale slice degrades to empty, not UB
  // A fresh slice from the recycled arena is valid again.
  Arena::Slice s2 = a.copy_slice(BytesView(src));
  EXPECT_TRUE(s2.valid(a));
  EXPECT_FALSE(s.valid(a));  // old one stays dead
}

#ifdef LIBERATE_ARENA_ASAN
// Under ASan the recycled memory is poisoned, so a use-after-reset is a hard
// sanitizer error. Probe the poison state directly instead of dying.
TEST(Arena, AsanPoisonsRecycledMemory) {
  Arena a;
  Bytes src = pattern(64, 5);
  BytesView v = a.copy(BytesView(src));
  const void* p = v.data();
  EXPECT_EQ(__asan_address_is_poisoned(p), 0);
  a.reset();
  EXPECT_EQ(__asan_address_is_poisoned(p), 1);
  // Re-allocation unpoisons exactly the handed-out region again.
  BytesView v2 = a.copy(BytesView(src));
  EXPECT_EQ(__asan_address_is_poisoned(v2.data()), 0);
}
#endif

// Eviction/reuse churn: interleave resets with growing and shrinking bursts,
// verifying contents each round — the pattern TapElement and the replay
// server's raw capture put the arena through across a fleet run.
TEST(Arena, ChurnKeepsRoundLocalSlicesCoherent) {
  Arena a(/*chunk_bytes=*/512);
  std::uint64_t checks = 0;
  for (int round = 0; round < 100; ++round) {
    const int packets = 1 + (round * 7) % 60;  // bursty round sizes
    std::vector<Bytes> sources;
    std::vector<BytesView> views;
    for (int i = 0; i < packets; ++i) {
      sources.push_back(
          pattern(40 + (round * 31 + i * 17) % 1460,
                  static_cast<std::uint8_t>(round * 3 + i)));
      views.push_back(a.copy(BytesView(sources.back())));
    }
    for (int i = 0; i < packets; ++i) {
      ASSERT_TRUE(std::equal(views[static_cast<std::size_t>(i)].begin(),
                             views[static_cast<std::size_t>(i)].end(),
                             sources[static_cast<std::size_t>(i)].begin()))
          << "round " << round << " packet " << i;
      ++checks;
    }
    if (round % 10 == 9) {
      a.reset_and_shrink();
      EXPECT_EQ(a.chunk_count(), 1u);
    } else {
      a.reset();
    }
  }
  EXPECT_GT(checks, 2000u);
}

TEST(Arena, HighWaterTracksPeakNotCurrent) {
  Arena a;
  a.copy(BytesView(pattern(1000, 1)));
  a.copy(BytesView(pattern(2000, 2)));
  const std::size_t peak = a.high_water();
  EXPECT_GE(peak, 3000u);
  a.reset();
  EXPECT_EQ(a.bytes_in_use(), 0u);
  EXPECT_EQ(a.high_water(), peak);
}

}  // namespace
}  // namespace liberate
