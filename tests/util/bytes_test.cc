#include "util/bytes.h"

#include <gtest/gtest.h>

namespace liberate {
namespace {

TEST(ByteWriter, WritesBigEndianIntegers) {
  ByteWriter w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u24(0x040506);
  w.u32(0x0708090a);
  Bytes b = std::move(w).take();
  ASSERT_EQ(b.size(), 10u);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_EQ(b[i], i + 1) << "byte " << i;
  }
}

TEST(ByteWriter, RawAndFill) {
  ByteWriter w;
  w.raw(std::string_view("ab"));
  w.fill(0xcc, 3);
  Bytes b = std::move(w).take();
  EXPECT_EQ(b, (Bytes{'a', 'b', 0xcc, 0xcc, 0xcc}));
}

TEST(ByteWriter, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u16(0xbeef);
  w.patch_u16(0, 0xdead);
  EXPECT_EQ(w.bytes(), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(ByteReader, ReadsBackWhatWriterWrote) {
  ByteWriter w;
  w.u8(0xff);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u24(0xabcdef);
  Bytes b = std::move(w).take();
  ByteReader r(b);
  EXPECT_EQ(r.u8().value(), 0xff);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u24().value(), 0xabcdefu);
  EXPECT_TRUE(r.empty());
}

TEST(ByteReader, ReadPastEndFailsWithoutCrashing) {
  Bytes b{0x01};
  ByteReader r(b);
  EXPECT_FALSE(r.u16().ok());
  // Position unchanged after a failed read.
  EXPECT_EQ(r.u8().value(), 0x01);
  EXPECT_FALSE(r.u8().ok());
}

TEST(ByteReader, RawAndSkip) {
  Bytes b{1, 2, 3, 4, 5};
  ByteReader r(b);
  ASSERT_TRUE(r.skip(2).ok());
  auto span = r.raw(2);
  ASSERT_TRUE(span.ok());
  EXPECT_EQ(span.value()[0], 3);
  EXPECT_EQ(span.value()[1], 4);
  EXPECT_EQ(r.remaining(), 1u);
  EXPECT_FALSE(r.skip(2).ok());
}

TEST(BytesConversion, RoundTripsStrings) {
  std::string s = "GET / HTTP/1.1\r\n";
  EXPECT_EQ(to_string(to_bytes(s)), s);
}

TEST(Result, ValueAndError) {
  Result<int> ok(42);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  Result<int> bad = Error("nope");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(Status, SuccessAndFailure) {
  Status s;
  EXPECT_TRUE(s.ok());
  Status f = Error("broken");
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.error().message, "broken");
}

}  // namespace
}  // namespace liberate
