// FlowTable: open-addressing correctness under churn (insert/erase/lookup
// at high load factors), tombstone-free backward-shift deletion, LRU
// ordering through relocations and rehashes, deterministic iteration order
// for the snapshot-delta consumers, and ASan poisoning of erased slots.
#include "util/flow_table.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#ifdef LIBERATE_FLOW_TABLE_ASAN
extern "C" int __asan_address_is_poisoned(void const volatile* addr);
#endif

namespace liberate {
namespace {

struct Key {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  bool operator==(const Key& o) const { return a == o.a && b == o.b; }
};

/// Deliberately weak hash (ignores b, clusters low bits) so probe runs and
/// backward-shift actually get exercised at small capacities.
struct WeakHash {
  std::size_t operator()(const Key& k) const {
    return static_cast<std::size_t>(k.a & 0xFF);
  }
};

struct Value {
  std::uint64_t payload = 0;
  std::uint32_t marks = 0;
};

using Table = FlowTable<Key, Value, WeakHash>;

Key key(std::uint64_t n) { return Key{n, n * 1000003}; }

/// Deterministic xorshift so the stress mix is reproducible.
std::uint64_t next_rand(std::uint64_t& s) {
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  return s;
}

TEST(FlowTable, InsertFindEraseRoundTrip) {
  Table t;
  EXPECT_TRUE(t.empty());
  auto [v, inserted] = t.touch(key(1));
  ASSERT_TRUE(inserted);
  EXPECT_EQ(v->payload, 0u);  // value-initialized
  v->payload = 42;

  auto [v2, inserted2] = t.touch(key(1));
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(v2->payload, 42u);
  EXPECT_EQ(t.size(), 1u);

  ASSERT_NE(t.find(key(1)), nullptr);
  EXPECT_EQ(t.find(key(2)), nullptr);
  EXPECT_TRUE(t.erase(key(1)));
  EXPECT_FALSE(t.erase(key(1)));
  EXPECT_EQ(t.find(key(1)), nullptr);
  EXPECT_TRUE(t.empty());
}

TEST(FlowTable, BackwardShiftKeepsProbeRunsReachable) {
  // All keys share home slot (WeakHash ignores everything above bit 8 when
  // a is fixed mod 256): a full probe run. Deleting from the middle must
  // backward-shift, never tombstone — every survivor stays findable.
  Table t;
  std::vector<Key> keys;
  for (std::uint64_t i = 0; i < 12; ++i) {
    keys.push_back(Key{256 * i + 7, i});  // same home (a & 0xFF == 7)
    t.touch(keys.back()).first->payload = i;
  }
  // Erase odd positions, then verify every even key still resolves.
  for (std::size_t i = 1; i < keys.size(); i += 2) {
    ASSERT_TRUE(t.erase(keys[i]));
  }
  for (std::size_t i = 0; i < keys.size(); i += 2) {
    auto* v = t.find(keys[i]);
    ASSERT_NE(v, nullptr) << "key " << i << " lost after backward-shift";
    EXPECT_EQ(v->payload, i);
  }
  EXPECT_EQ(t.size(), 6u);
}

TEST(FlowTable, LruEvictionOrderSurvivesRelocation) {
  Table t;
  for (std::uint64_t i = 0; i < 8; ++i) t.touch(key(i));
  // Touch 0 and 3 -> they become MRU; 1 is now coldest.
  t.touch(key(0));
  t.touch(key(3));
  Key evicted;
  ASSERT_TRUE(t.evict_lru(&evicted));
  EXPECT_EQ(evicted.a, 1u);
  ASSERT_TRUE(t.evict_lru(&evicted));
  EXPECT_EQ(evicted.a, 2u);
  // Erase in the middle (forces backward-shift link fixups), then the LRU
  // chain must still be intact and ordered.
  ASSERT_TRUE(t.erase(key(4)));
  std::vector<std::uint64_t> order;
  t.for_each_lru([&](const Key& k, Value&) { order.push_back(k.a); });
  EXPECT_EQ(order, (std::vector<std::uint64_t>{3, 0, 7, 6, 5}));
}

TEST(FlowTable, ChurnStressAtHighLoadFactorMatchesReference) {
  // Satellite requirement: insert/erase/lookup churn at load factors up to
  // 0.9 — differential-tested against std::map on a fixed seed.
  Table t(64);
  t.set_max_load_factor(0.9);
  std::map<std::uint64_t, std::uint64_t> ref;
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  for (int step = 0; step < 60000; ++step) {
    const std::uint64_t r = next_rand(rng);
    const std::uint64_t id = r % 2048;  // dense id space -> heavy collisions
    switch ((r >> 32) % 3) {
      case 0: {  // insert / update
        auto [v, inserted] = t.touch(key(id));
        v->payload = r;
        ref[id] = r;
        (void)inserted;
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(t.erase(key(id)), ref.erase(id) == 1);
        break;
      }
      default: {  // lookup
        auto* v = t.find(key(id));
        auto it = ref.find(id);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr);
        } else {
          ASSERT_NE(v, nullptr);
          EXPECT_EQ(v->payload, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    ASSERT_LE(t.load_factor(), 0.9 + 1e-9);
  }
  // Full sweep at the end: identical membership.
  for (const auto& [id, payload] : ref) {
    auto* v = t.find(key(id));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->payload, payload);
  }
}

TEST(FlowTable, ReserveAvoidsRehashAndHoldsLoadFactor) {
  Table t;
  t.set_max_load_factor(0.9);
  t.reserve(900);
  const std::size_t cap = t.capacity();
  for (std::uint64_t i = 0; i < 900; ++i) t.touch(key(i));
  EXPECT_EQ(t.capacity(), cap) << "reserve() should pre-size past the churn";
  EXPECT_GT(t.load_factor(), 0.8);
  EXPECT_LE(t.load_factor(), 0.9);
  for (std::uint64_t i = 0; i < 900; ++i) {
    ASSERT_NE(t.find(key(i)), nullptr);
  }
}

TEST(FlowTable, IterationOrderIsDeterministicAcrossInstances) {
  // The snapshot-delta path walks for_each_lru and relies on the order
  // being a pure function of the operation history — two tables fed the
  // same ops must iterate identically (no pointer/seed dependence).
  auto run = [] {
    Table t(16);
    std::uint64_t rng = 1234567;
    for (int step = 0; step < 5000; ++step) {
      const std::uint64_t r = next_rand(rng);
      const std::uint64_t id = r % 512;
      if ((r >> 32) % 4 == 0) {
        t.erase(key(id));
      } else {
        t.touch(key(id)).first->payload = r;
      }
    }
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order;
    t.for_each_lru(
        [&](const Key& k, Value& v) { order.emplace_back(k.a, v.payload); });
    return order;
  };
  const auto a = run();
  const auto b = run();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(FlowTable, EvictLruDrainsEverythingInRecencyOrder) {
  Table t;
  for (std::uint64_t i = 0; i < 100; ++i) t.touch(key(i));
  std::vector<std::uint64_t> drained;
  Key k;
  while (t.evict_lru(&k)) drained.push_back(k.a);
  ASSERT_EQ(drained.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(drained[i], i);
  EXPECT_TRUE(t.empty());
  EXPECT_FALSE(t.evict_lru());
}

TEST(FlowTable, MoveTransfersEntries) {
  Table t;
  for (std::uint64_t i = 0; i < 32; ++i) t.touch(key(i)).first->payload = i;
  Table moved(std::move(t));
  EXPECT_EQ(moved.size(), 32u);
  for (std::uint64_t i = 0; i < 32; ++i) {
    auto* v = moved.find(key(i));
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->payload, i);
  }
}

#ifdef LIBERATE_FLOW_TABLE_ASAN
// Satellite requirement: erased slots are poisoned, so a pointer held
// across an erase is a hard sanitizer error. Probe the poison state
// directly (the arena_test idiom) instead of dying.
TEST(FlowTable, ErasedSlotIsPoisonedUnderAsan) {
  Table t;
  t.touch(key(1));
  const std::size_t slot = t.slot_of_for_test(key(1));
  ASSERT_NE(slot, Table::kNpos);
  const void* addr = t.key_address_for_test(slot);
  EXPECT_EQ(__asan_address_is_poisoned(addr), 0);
  ASSERT_TRUE(t.erase(key(1)));
  EXPECT_EQ(__asan_address_is_poisoned(addr), 1);
  // Re-inserting unpoisons the slot again.
  t.touch(key(1));
  const std::size_t slot2 = t.slot_of_for_test(key(1));
  EXPECT_EQ(__asan_address_is_poisoned(t.key_address_for_test(slot2)), 0);
}

TEST(FlowTable, NeverInsertedSlotsArePoisonedAfterRehash) {
  Table t(16);
  for (std::uint64_t i = 0; i < 40; ++i) t.touch(key(i));  // forces growth
  std::size_t poisoned = 0;
  std::size_t live = 0;
  for (std::size_t s = 0; s < t.capacity(); ++s) {
    if (__asan_address_is_poisoned(t.key_address_for_test(s))) {
      ++poisoned;
    } else {
      ++live;
    }
  }
  EXPECT_EQ(live, t.size());
  EXPECT_EQ(poisoned, t.capacity() - t.size());
}
#else
TEST(FlowTable, PoisoningCompiledOutWithoutAsan) {
  EXPECT_FALSE(Table::kPoisonsErasedSlots);
}
#endif

}  // namespace
}  // namespace liberate
