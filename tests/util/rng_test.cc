#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace liberate {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeIsInclusive) {
  Rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);  // all of 3,4,5 hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BytesLengthAndVariety) {
  Rng r(11);
  Bytes b = r.bytes(256);
  ASSERT_EQ(b.size(), 256u);
  std::set<std::uint8_t> distinct(b.begin(), b.end());
  EXPECT_GT(distinct.size(), 100u);
}

}  // namespace
}  // namespace liberate
