#include "util/strings.h"

#include <gtest/gtest.h>

namespace liberate {
namespace {

TEST(Strings, IEquals) {
  EXPECT_TRUE(iequals("Host", "host"));
  EXPECT_TRUE(iequals("", ""));
  EXPECT_FALSE(iequals("Host", "Hos"));
  EXPECT_FALSE(iequals("Host", "Hosu"));
}

TEST(Strings, IFind) {
  EXPECT_EQ(ifind("GET / HTTP/1.1\r\nHost: EXAMPLE.com", "host:"), 16u);
  EXPECT_EQ(ifind("abc", "d"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
  EXPECT_EQ(ifind("ab", "abc"), std::string_view::npos);
}

TEST(Strings, Split) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x \r\n"), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(Strings, ToLower) { EXPECT_EQ(to_lower("HoSt"), "host"); }

TEST(Strings, HexDump) {
  Bytes b{0x47, 0x45, 0x54};
  EXPECT_EQ(hex_dump(b), "47 45 54");
  EXPECT_EQ(hex_dump(b, 2), "47 45 ...");
}

TEST(Strings, Printable) {
  Bytes b{'G', 'E', 'T', 0x00, 0x7f};
  EXPECT_EQ(printable(b), "GET..");
}

TEST(Strings, Format) {
  EXPECT_EQ(format("%d-%s", 7, "x"), "7-x");
}

}  // namespace
}  // namespace liberate
