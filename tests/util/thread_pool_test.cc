#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "util/lru_cache.h"

namespace liberate {
namespace {

TEST(ThreadPool, RunsSubmittedTasksAndReturnsResults) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  auto f1 = pool.submit([]() { return 40 + 2; });
  auto f2 = pool.submit([]() { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, SaturationManyMoreTasksThanWorkers) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<int> ran{0};
  std::vector<std::future<int>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.submit([i, &ran]() {
      ran.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ThreadPool, WorkerIndexIsStableAndInRange) {
  ThreadPool pool(3);
  EXPECT_EQ(ThreadPool::current_worker_index(), -1);  // not a pool thread
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(
        pool.submit([]() { return ThreadPool::current_worker_index(); }));
  }
  for (auto& f : futures) {
    int idx = f.get();
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, 3);
  }
}

TEST(ThreadPool, WorkerIndicesAreDenseAndStablePerThread) {
  // The obs layer shards metrics by worker index, which is only sound if
  // the indices are dense (0..N-1, no gaps) and stable (a given worker
  // thread always reports the same index).
  constexpr int kWorkers = 4;
  ThreadPool pool(kWorkers);
  // Hold all workers at a barrier so each of the four tasks runs on a
  // distinct thread, then have every worker report (thread id, index).
  std::atomic<int> arrived{0};
  std::promise<void> release;
  std::shared_future<void> go(release.get_future());
  std::vector<std::future<std::pair<std::thread::id, int>>> first;
  for (int i = 0; i < kWorkers; ++i) {
    first.push_back(pool.submit([&arrived, go]() {
      arrived.fetch_add(1);
      go.wait();
      return std::make_pair(std::this_thread::get_id(),
                            ThreadPool::worker_index());
    }));
  }
  while (arrived.load() < kWorkers) std::this_thread::yield();
  release.set_value();

  std::map<std::thread::id, int> index_of;
  std::set<int> indices;
  for (auto& f : first) {
    auto [tid, idx] = f.get();
    index_of[tid] = idx;
    indices.insert(idx);
  }
  // Dense: exactly the set {0, 1, ..., N-1}.
  ASSERT_EQ(indices.size(), static_cast<std::size_t>(kWorkers));
  EXPECT_EQ(*indices.begin(), 0);
  EXPECT_EQ(*indices.rbegin(), kWorkers - 1);

  // Stable: later tasks on the same thread see the same index.
  std::vector<std::future<std::pair<std::thread::id, int>>> later;
  for (int i = 0; i < 256; ++i) {
    later.push_back(pool.submit([]() {
      return std::make_pair(std::this_thread::get_id(),
                            ThreadPool::worker_index());
    }));
  }
  for (auto& f : later) {
    auto [tid, idx] = f.get();
    ASSERT_TRUE(index_of.count(tid));
    EXPECT_EQ(index_of[tid], idx);
  }
}

TEST(ThreadPool, QueueDepthReflectsPendingTasks) {
  ThreadPool pool(1);
  std::promise<void> release;
  auto blocker = pool.submit([f = release.get_future().share()]() mutable {
    f.wait();
  });
  // Give the single worker a moment to pick up the blocker, then queue more.
  while (pool.queue_depth() > 0) std::this_thread::yield();
  std::vector<std::future<void>> queued;
  for (int i = 0; i < 10; ++i) queued.push_back(pool.submit([]() {}));
  EXPECT_EQ(pool.queue_depth(), 10u);
  EXPECT_EQ(pool.queue_depth(), pool.pending());
  release.set_value();
  for (auto& f : queued) f.get();
  EXPECT_EQ(pool.queue_depth(), 0u);
}

TEST(ThreadPool, ExceptionFromWorkerPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit(
      []() -> int { throw std::runtime_error("boom in worker"); });
  auto good = pool.submit([]() { return 7; });
  EXPECT_THROW(
      {
        try {
          bad.get();
        } catch (const std::runtime_error& e) {
          EXPECT_STREQ(e.what(), "boom in worker");
          throw;
        }
      },
      std::runtime_error);
  // The worker that threw keeps serving tasks.
  EXPECT_EQ(good.get(), 7);
  auto after = pool.submit([]() { return 8; });
  EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPool, DrainShutdownRunsEveryPendingTask) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 500; ++i) {
      // Futures intentionally dropped; the drain still runs the tasks.
      pool.submit([&ran]() { ran.fetch_add(1); });
    }
  }  // destructor = shutdown(kDrain)
  EXPECT_EQ(ran.load(), 500);
}

TEST(ThreadPool, DiscardShutdownAbandonsPendingWork) {
  ThreadPool pool(1);
  std::promise<void> started;
  std::promise<void> release;
  auto blocker = pool.submit([&]() {
    started.set_value();
    release.get_future().wait();
  });
  started.get_future().wait();  // the single worker is now busy
  std::atomic<int> ran{0};
  std::vector<std::future<int>> pending;
  for (int i = 0; i < 50; ++i) {
    pending.push_back(pool.submit([&ran]() {
      ran.fetch_add(1);
      return 1;
    }));
  }
  EXPECT_EQ(pool.pending(), 50u);
  // Unblock the worker only after shutdown has discarded the queue; shutdown
  // clears it on entry, then blocks joining the busy worker.
  std::thread releaser([&release]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    release.set_value();
  });
  pool.shutdown(ThreadPool::Shutdown::kDiscardPending);
  releaser.join();
  blocker.get();  // the in-flight task completed normally
  // Discarded tasks never ran and their futures report broken_promise.
  EXPECT_EQ(ran.load(), 0);
  int broken = 0;
  for (auto& f : pending) {
    try {
      f.get();
    } catch (const std::future_error& e) {
      if (e.code() == std::future_errc::broken_promise) broken += 1;
    }
  }
  EXPECT_EQ(broken + ran.load(), 50);
  EXPECT_THROW(pool.submit([]() { return 0; }), std::runtime_error);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.submit([]() {}).get();
  pool.shutdown();
  pool.shutdown(ThreadPool::Shutdown::kDiscardPending);  // no-op, no crash
}

// ---------------------------------------------------------------------------
// LruCache: the memo cache must stay bounded under million-probe workloads.
// ---------------------------------------------------------------------------

TEST(LruCache, EvictsLeastRecentlyUsedAtCapacity) {
  LruCache<int, std::string> cache(3);
  cache.put(1, "one");
  cache.put(2, "two");
  cache.put(3, "three");
  ASSERT_TRUE(cache.get(1).has_value());  // 1 is now most recent
  cache.put(4, "four");                   // evicts 2, the LRU entry
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1).value_or(""), "one");
  EXPECT_EQ(cache.get(3).value_or(""), "three");
  EXPECT_EQ(cache.get(4).value_or(""), "four");
  EXPECT_EQ(cache.size(), 3u);
}

TEST(LruCache, SizeNeverExceedsCapacityUnderChurn) {
  LruCache<int, int> cache(64);
  for (int i = 0; i < 100000; ++i) {
    cache.put(i, i);
    ASSERT_LE(cache.size(), 64u);
  }
  // Only the most recent 64 keys survive.
  EXPECT_FALSE(cache.get(0).has_value());
  EXPECT_TRUE(cache.get(99999).has_value());
  EXPECT_TRUE(cache.get(100000 - 64).has_value());
  EXPECT_FALSE(cache.get(100000 - 65).has_value());
}

TEST(LruCache, PutOverwritesAndRefreshes) {
  LruCache<int, int> cache(2);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(1, 11);  // overwrite refreshes recency
  cache.put(3, 30);  // evicts 2
  EXPECT_EQ(cache.get(1).value_or(-1), 11);
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(3).value_or(-1), 30);
}

TEST(LruCache, ZeroCapacityStoresNothing) {
  LruCache<int, int> cache(0);
  cache.put(1, 10);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

}  // namespace
}  // namespace liberate
